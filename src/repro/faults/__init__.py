"""Deterministic fault injection + fault-isolated execution (the chaos layer).

Two halves, both built for reproducibility:

* :mod:`repro.faults.plan` -- :class:`FaultPlan`, a seeded, picklable
  description of *which* units of work fail and *how*: corrupt or
  truncated trace files, IO errors on the first N opens, counter wraps,
  device reboots and blackout windows mid-trace, malformed dump lines,
  and worker crashes on chosen batch slices.  Pair assignment is a pure
  function of ``(seed, metric, device)``, so every process -- sequential
  run, each pool worker, the test re-checking coverage -- agrees on the
  fault set without coordination.
* :mod:`repro.faults.inject` -- wrappers that apply a plan:
  :class:`FaultInjectingTraceSource` (any :class:`TraceSource`, faults
  injected at ``load``/``trace_batches`` time, with a picklable worker
  spec so multi-worker surveys inject identically), :func:`faulty_export`
  (damage trace files on disk) and :func:`corrupt_dump_lines` (mangle a
  telemetry dump).
* :mod:`repro.faults.execution` -- the fault-isolation half:
  :class:`RetryPolicy` (bounded retry, deterministic backoff),
  :class:`BatchExecutionError` (picklable, batch-spec-naming wrapper for
  worker-side failures) and :func:`run_batch_tasks`, the process-pool
  driver both surveys use, which retries retryable batches and rebuilds
  a broken pool so a crashed worker costs one batch retry, not the run.
"""

from .execution import (RETRYABLE_EXCEPTIONS, BatchExecutionError, RetryPolicy,
                        run_batch_tasks)
from .inject import (FaultInjectingSourceSpec, FaultInjectingTraceSource,
                     corrupt_dump_lines, faulty_export)
from .plan import (DATA_FAULT_KINDS, FAULT_KINDS, RAISING_FAULT_KINDS, FaultPlan,
                   stable_digest)

__all__ = [
    "FAULT_KINDS",
    "RAISING_FAULT_KINDS",
    "DATA_FAULT_KINDS",
    "FaultPlan",
    "stable_digest",
    "FaultInjectingSourceSpec",
    "FaultInjectingTraceSource",
    "faulty_export",
    "corrupt_dump_lines",
    "RetryPolicy",
    "BatchExecutionError",
    "RETRYABLE_EXCEPTIONS",
    "run_batch_tasks",
]
