"""Fault-isolated batch execution: bounded retry + broken-pool recovery.

Both fleet surveys fan work out as picklable batch specs; this module is
the shared driver that keeps one bad batch (or one dead worker) from
costing the run:

* :class:`BatchExecutionError` -- the picklable wrapper worker entry
  points raise instead of letting a bare traceback surface from the
  pool.  It names the batch spec (source, metric, offset, limit),
  carries the original exception type for failure records, and a
  ``retryable`` verdict (IO errors are transient; content errors are
  not).
* :class:`RetryPolicy` -- bounded attempts with a *deterministic*
  exponential backoff (``delay(attempt)`` is a pure function, no jitter),
  so a chaos run with a seeded fault plan replays identically.
* :func:`run_batch_tasks` -- submits every task to a process pool and
  yields ``(index, result-or-error)`` in task order.  Retryable failures
  are resubmitted up to the policy's budget; a ``BrokenProcessPool``
  (worker crashed mid-batch) rebuilds the pool, charges one retry to the
  batch that was being waited on and resubmits everything not yet
  finished -- completed results are never re-executed, so records are
  not duplicated.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

__all__ = ["RETRYABLE_EXCEPTIONS", "BatchExecutionError", "RetryPolicy",
           "run_batch_tasks"]

#: Exception types treated as transient (worth retrying): IO-shaped
#: failures.  Content failures (``ValueError``: corrupt trace, bad slice
#: address) are deterministic and go straight to quarantine/raise.
RETRYABLE_EXCEPTIONS: tuple[type[BaseException], ...] = (OSError,)


class BatchExecutionError(RuntimeError):
    """A batch of survey work failed, with its spec named in the message.

    Crosses the process boundary losslessly (``__reduce__``), so the
    parent keeps the original exception type name and the retryable
    verdict even though the original exception object stays worker-side.
    """

    def __init__(self, message: str, error_type: str, retryable: bool) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.retryable = retryable

    def __reduce__(self) -> tuple:
        return (BatchExecutionError, (str(self), self.error_type, self.retryable))

    @classmethod
    def wrap(cls, error: Exception, context: str) -> "BatchExecutionError":
        """Wrap a worker-side exception with its batch-spec context."""
        return cls(f"{context}: {type(error).__name__}: {error}",
                   error_type=type(error).__name__,
                   retryable=isinstance(error, RETRYABLE_EXCEPTIONS))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``max_attempts`` counts *total* tries (1 = no retry); the delay before
    attempt ``n + 1`` is ``backoff_base * backoff_factor ** (n - 1)``
    seconds -- a pure function of the attempt number, so runs replay
    identically (no jitter, no clock reads).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to back off after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


def _needs_resubmit(future: Future) -> bool:
    """True when a future's work was lost with the pool (or never ran)."""
    if not future.done():
        return True
    if future.cancelled():
        return True
    error = future.exception()
    return isinstance(error, BrokenProcessPool)


def run_batch_tasks(worker_fn: Callable[[Any], Any], tasks: Sequence[Any],
                    workers: int, retry: RetryPolicy | None = None,
                    sleep: Callable[[float], None] = time.sleep,
                    ) -> Iterator[tuple[int, Any]]:
    """Run every task on a process pool; yield ``(index, outcome)`` in order.

    ``outcome`` is the worker's return value, or the final
    :class:`BatchExecutionError` once the task is out of retry budget (a
    non-retryable error spends no budget and surfaces immediately).  Two
    failure routes are retried:

    * a worker raising a retryable :class:`BatchExecutionError` -- the
      task is resubmitted after ``retry.delay(attempt)``;
    * the pool breaking (a worker process died) -- the pool is rebuilt,
      the batch being waited on is charged one attempt, and every
      unfinished task is resubmitted on the new pool.  Results already
      completed are kept, never re-executed.

    Any other exception type propagates unchanged (it is a bug, not a
    batch failure).  ``sleep`` is injectable so tests and benchmarks can
    skip the real backoff waits.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not tasks:
        return
    retry = retry if retry is not None else RetryPolicy()
    # Never spawn more processes than there are tasks: a short batch list
    # (e.g. a sharded ingest of a tiny dump) should not pay the fork and
    # teardown cost of idle workers.
    pool_size = min(workers, len(tasks))
    pool = ProcessPoolExecutor(max_workers=pool_size)
    try:
        futures: dict[int, Future] = {index: pool.submit(worker_fn, task)
                                      for index, task in enumerate(tasks)}
        attempts = {index: 1 for index in range(len(tasks))}
        index = 0
        while index < len(tasks):
            try:
                outcome = futures[index].result()
            except BrokenProcessPool:
                # A worker died mid-batch.  Rebuild the pool and resubmit
                # every task whose work was lost; the batch being waited
                # on is the prime suspect and is charged the retry.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=pool_size)
                exhausted = attempts[index] >= retry.max_attempts
                if not exhausted:
                    sleep(retry.delay(attempts[index]))
                    attempts[index] += 1
                for position in range(index + 1 if exhausted else index, len(tasks)):
                    if _needs_resubmit(futures[position]):
                        futures[position] = pool.submit(worker_fn, tasks[position])
                if exhausted:
                    yield index, BatchExecutionError(
                        f"batch {index} crashed its worker process "
                        f"{attempts[index]} times (BrokenProcessPool)",
                        error_type="BrokenProcessPool", retryable=True)
                    index += 1
                continue
            except BatchExecutionError as error:
                if error.retryable and attempts[index] < retry.max_attempts:
                    sleep(retry.delay(attempts[index]))
                    attempts[index] += 1
                    futures[index] = pool.submit(worker_fn, tasks[index])
                    continue
                yield index, error
                index += 1
                continue
            yield index, outcome
            index += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
