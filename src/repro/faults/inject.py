"""Applying a :class:`FaultPlan`: wrappers that actually break things.

:class:`FaultInjectingTraceSource` wraps any
:class:`~repro.telemetry.source.TraceSource` and injects the plan's
per-pair faults at ``load`` time (raising kinds raise; data kinds distort
the returned trace) and its worker crashes at ``trace_batches`` time.  Its
worker spec wraps the inner source's spec, so a multi-worker survey
injects the same faults in every worker process.

:func:`faulty_export` produces the on-disk variant: a measured-fleet
directory whose affected pairs' trace files are truncated or overwritten
with garbage -- the recorded-telemetry corruption the ROADMAP's failure
menu asks for.  :func:`corrupt_dump_lines` mangles a raw telemetry dump
(gNMI JSON-lines or SNMP CSV) so the streaming importer meets malformed
lines mid-stream.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Literal, Sequence

from ..signals.distortions import apply_data_fault
from ..signals.timeseries import TimeSeries
from ..telemetry.source import BaseTraceSource, TraceBatch, TraceSource, WorkerSpec
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.measured import MeasuredFleetDataset

__all__ = ["FaultInjectingSourceSpec", "FaultInjectingTraceSource",
           "faulty_export", "corrupt_dump_lines"]


@dataclass(frozen=True)
class FaultInjectingSourceSpec:
    """Picklable worker address of a fault-injecting source.

    Wraps the inner source's spec plus the plan, so pool workers re-open
    the *same* chaos: pair assignment is digest-driven and the once-only
    fault state lives in the plan's ``state_dir``.
    """

    inner: WorkerSpec
    plan: FaultPlan

    def open(self) -> "FaultInjectingTraceSource":
        return FaultInjectingTraceSource(self.inner.open(), self.plan)


class FaultInjectingTraceSource(BaseTraceSource):
    """A :class:`TraceSource` decorator that injects a plan's faults.

    Pair tables, metric order and trace shapes are the inner source's;
    only affected pairs behave differently:

    * ``corrupt-trace`` / ``truncated-trace`` raise ``ValueError`` from
      ``load`` -- the same exception (and phrasing) a
      :class:`~repro.telemetry.measured.MeasuredFleetDataset` raises for
      a genuinely damaged file, so downstream handling cannot tell
      injected faults from real ones.
    * ``io-error`` raises ``OSError`` for the plan's first
      ``io_error_opens`` opens, then serves the trace -- the transient
      fault the retry path is measured against.
    * ``counter-wrap`` / ``device-reboot`` / ``blackout`` return a
      distorted trace (level reset from a seeded position; a seeded
      window pinned to the boot level; a seeded gap backfilled with the
      value last seen before it).
    * ``plan.crash_slices`` kill the *worker process* the first time it
      serves that (metric, offset) slice -- only ever inside a pool
      worker, never the parent.
    """

    def __init__(self, inner: TraceSource, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    # ------------------------- delegation -----------------------------
    def pairs(self) -> Sequence:
        return self.inner.pairs()

    def pairs_for_metric(self, metric_name: str) -> Sequence:
        return self.inner.pairs_for_metric(metric_name)

    def metric_names(self) -> list[str]:
        return self.inner.metric_names()

    @property
    def trace_duration(self) -> float:
        return self.inner.trace_duration

    def worker_spec(self) -> FaultInjectingSourceSpec:
        return FaultInjectingSourceSpec(self.inner.worker_spec(), self.plan)

    # ------------------------- fault injection ------------------------
    def load(self, pair: Any) -> TimeSeries:
        metric_name, device_id = pair.key
        kind = self.plan.kind_for(metric_name, device_id)
        if kind is None:
            return self.inner.load(pair)
        if kind == "io-error":
            if self.plan.consume_io_error(metric_name, device_id):
                raise OSError(f"injected transient IO error opening the trace of "
                              f"{metric_name}@{device_id}")
            return self.inner.load(pair)
        if kind in ("corrupt-trace", "truncated-trace"):
            adjective = "corrupt" if kind == "corrupt-trace" else "truncated"
            raise ValueError(f"corrupt or truncated trace file "
                             f"{metric_name}@{device_id} (injected {adjective} trace)")
        return self._distort(self.inner.load(pair), kind, metric_name, device_id)

    def _distort(self, trace: TimeSeries, kind: str, metric_name: str,
                 device_id: str) -> TimeSeries:
        """Apply one data-degrading fault kind to a loaded trace.

        Placement is drawn from the plan's per-pair RNG; the distortion
        itself is the shared pure function in
        :mod:`repro.signals.distortions`, so a fault-injected pair and a
        :mod:`repro.scenarios` workload pair degrade identically.
        """
        values = apply_data_fault(kind, trace.values,
                                  self.plan.rng_for(metric_name, device_id),
                                  window_fraction=self.plan.blackout_fraction)
        return TimeSeries(values, trace.interval, start_time=trace.start_time,
                          name=trace.name)

    def trace_batches(self, metric_name: str | None = None,
                      limit: int | None = None,
                      chunk_size: int = 1024,
                      offset: int = 0) -> Iterator[TraceBatch]:
        if (metric_name is not None
                and (metric_name, offset) in self.plan.crash_slices
                and multiprocessing.parent_process() is not None
                and self.plan.consume_crash(metric_name, offset)):
            # Simulate a worker falling over mid-batch: hard exit, no
            # cleanup, exactly once per slice -- the parent sees a
            # BrokenProcessPool and must resubmit.
            os._exit(13)
        return super().trace_batches(metric_name, limit=limit,
                                     chunk_size=chunk_size, offset=offset)


# ----------------------------------------------------------------------
# On-disk fault injection
# ----------------------------------------------------------------------
def faulty_export(source: TraceSource, directory: Path | str, plan: FaultPlan,
                  fmt: Literal["npz", "csv"] = "npz") -> "MeasuredFleetDataset":
    """Export ``source`` to a measured-fleet directory, then damage it.

    Every pair the plan assigns ``corrupt-trace`` gets its trace file
    overwritten with garbage bytes; every ``truncated-trace`` pair's file
    is cut to half its length.  Other kinds do not exist on disk and are
    skipped.  The manifest stays intact, so the returned
    :class:`MeasuredFleetDataset` opens fine and fails (loudly, naming
    the file) only when a damaged pair is actually loaded -- exactly how
    real bit rot presents.
    """
    from ..telemetry.measured import MeasuredFleetDataset, export_traces
    directory = Path(directory)
    export_traces(source, directory, fmt=fmt)
    dataset = MeasuredFleetDataset(directory)
    for pair in dataset.pairs():
        kind = plan.kind_for(pair.metric_name, pair.device.device_id)
        if kind not in ("corrupt-trace", "truncated-trace"):
            continue
        path = directory / pair.file
        if kind == "corrupt-trace":
            path.write_bytes(b"\x00garbage injected by FaultPlan\xff" * 8)
        else:
            payload = path.read_bytes()
            path.write_bytes(payload[:max(len(payload) // 2, 1)])
    return dataset


def corrupt_dump_lines(src: Path | str, dst: Path | str, plan: FaultPlan) -> list[int]:
    """Copy a telemetry dump, mangling every Nth data line; return their numbers.

    Works on both raw-export shapes (gNMI JSON-lines and SNMP wide CSV):
    an affected line is replaced by a marker prefix plus the first half of
    the original, which neither ``json.loads`` nor the CSV row parser can
    digest.  The first line is never touched (for CSV it is the header the
    whole file hangs off).  Returns the 1-based line numbers mangled, in
    order -- the ground truth quarantine accounting is checked against.
    """
    src, dst = Path(src), Path(dst)
    mangled: list[int] = []
    with src.open() as reader, dst.open("w") as writer:
        for line_number, line in enumerate(reader, start=1):
            if line_number > 1 and plan.corrupts_line(line_number):
                body = line.rstrip("\n")
                writer.write(f"!corrupted! {body[:max(len(body) // 2, 1)]}\n")
                mangled.append(line_number)
            else:
                writer.write(line)
    return mangled
