"""Seeded fault plans: a picklable, coordination-free description of chaos.

A :class:`FaultPlan` decides, for every (metric, device) pair, whether it
is faulty and which fault it suffers.  The assignment is a pure function
of ``(plan.seed, metric, device)`` via a :mod:`hashlib` digest -- *not*
the builtin ``hash()``, which is randomised per process -- so a plan
pickled to a survey worker injects exactly the faults the parent (and the
test asserting coverage) expects, with no shared state.

The only mutable state a plan touches is its optional ``state_dir``:
faults whose whole point is *recovering* on retry (``io-error``: fail the
first N opens, then succeed; worker crashes: die exactly once per batch
slice) persist tiny marker files there so the retry semantics hold across
process boundaries and pool rebuilds.  Plans using only stateless kinds
need no directory at all.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["FAULT_KINDS", "RAISING_FAULT_KINDS", "DATA_FAULT_KINDS", "FaultPlan",
           "stable_digest"]


def stable_digest(seed: int, *parts: str) -> int:
    """Stable 64-bit digest of ``(seed, *parts)``.

    The process-independent RNG root shared by every layer that needs a
    per-(metric, device) decision to come out identical in the parent and
    in pool workers: :class:`FaultPlan` assignments and the seeded
    placements of :mod:`repro.scenarios` transforms.  Built on
    :mod:`hashlib`, never the builtin ``hash()`` (randomised per process).
    """
    payload = ":".join((str(seed), *parts)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

#: Fault kinds that make the affected pair *fail to load* (quarantine
#: candidates): an unreadable/corrupt trace file, a file cut short, and a
#: transient IO error on the first ``io_error_opens`` opens.
RAISING_FAULT_KINDS: tuple[str, ...] = ("corrupt-trace", "truncated-trace", "io-error")

#: Fault kinds that *degrade the data* but keep the pipeline running: a
#: counter wrap (level reset mid-trace), a device reboot (window pinned to
#: the boot level) and a blackout window backfilled late with the last
#: value seen before the gap.
DATA_FAULT_KINDS: tuple[str, ...] = ("counter-wrap", "device-reboot", "blackout")

#: Every per-pair fault kind a plan may draw from.
FAULT_KINDS: tuple[str, ...] = RAISING_FAULT_KINDS + DATA_FAULT_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault assignment for one chaos run.

    Attributes
    ----------
    seed:
        Master seed; the whole fault assignment derives from it.
    fraction:
        Fraction of pairs to afflict (paper-scale acceptance: ~0.05).
        Affected pairs are spread uniformly over ``kinds``.
    kinds:
        Fault kinds to draw from (subset of :data:`FAULT_KINDS`).
    io_error_opens:
        For ``io-error`` pairs: how many opens fail (with ``OSError``)
        before the pair loads cleanly.  ``1`` with a retrying executor
        models a transient NFS hiccup that recovery absorbs; a value at
        or above the retry budget turns it into a quarantined failure.
    blackout_fraction:
        For ``blackout``/``device-reboot`` pairs: fraction of the trace
        covered by the injected window.
    malformed_line_every:
        For :func:`~repro.faults.inject.corrupt_dump_lines`: mangle every
        Nth data line of the dump.
    crash_slices:
        ``(metric_name, offset)`` batch-slice addresses whose *worker
        process* dies (``os._exit``) the first time it serves them --
        the ``BrokenProcessPool`` drill.  Crashes fire only inside pool
        workers, never in the parent, and exactly once per slice
        (tracked via ``state_dir``).
    state_dir:
        Directory for the once-only markers behind ``io-error`` and
        ``crash_slices``; required when either is in play.
    """

    seed: int = 0
    fraction: float = 0.05
    kinds: tuple[str, ...] = ("corrupt-trace",)
    io_error_opens: int = 1
    blackout_fraction: float = 0.2
    malformed_line_every: int = 101
    crash_slices: tuple[tuple[str, int], ...] = ()
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        unknown = [kind for kind in self.kinds if kind not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown}; "
                             f"choose from {list(FAULT_KINDS)}")
        if self.io_error_opens < 1:
            raise ValueError("io_error_opens must be >= 1")
        if not 0.0 < self.blackout_fraction < 1.0:
            raise ValueError("blackout_fraction must be in (0, 1)")
        if self.malformed_line_every < 2:
            raise ValueError("malformed_line_every must be >= 2")
        if self.state_dir is None and ("io-error" in self.kinds or self.crash_slices):
            raise ValueError(
                "fault plans with 'io-error' pairs or crash_slices need a state_dir "
                "(their once-only semantics persist across processes via marker files)")

    # ------------------------------------------------------------------
    # Pure per-pair assignment
    # ------------------------------------------------------------------
    def _digest(self, *parts: str) -> int:
        """Stable 64-bit digest of ``(seed, *parts)`` -- the plan's only RNG root."""
        return stable_digest(self.seed, *parts)

    def kind_for(self, metric_name: str, device_id: str) -> str | None:
        """The fault this pair suffers, or ``None`` for a healthy pair."""
        if not self.kinds or self.fraction == 0.0:
            return None
        position = self._digest("pair", metric_name, device_id) / 2.0 ** 64
        if position >= self.fraction:
            return None
        index = int(position / self.fraction * len(self.kinds))
        return self.kinds[min(index, len(self.kinds) - 1)]

    def affects(self, metric_name: str, device_id: str) -> bool:
        """True when this pair is on the fault list."""
        return self.kind_for(metric_name, device_id) is not None

    def rng_for(self, metric_name: str, device_id: str) -> np.random.Generator:
        """Seeded generator for this pair's fault placement (window positions)."""
        return np.random.default_rng(self._digest("rng", metric_name, device_id))

    def corrupts_line(self, line_number: int) -> bool:
        """True when 1-based data line ``line_number`` of a dump gets mangled."""
        return line_number % self.malformed_line_every == 0

    # ------------------------------------------------------------------
    # Once-only state (shared across processes via marker files)
    # ------------------------------------------------------------------
    def _state_path(self, label: str) -> Path:
        if self.state_dir is None:
            raise ValueError(f"fault {label!r} needs a plan with state_dir set")
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        name = hashlib.sha256(f"{self.seed}:{label}".encode()).hexdigest()[:24]
        return directory / name

    def consume_io_error(self, metric_name: str, device_id: str) -> bool:
        """True while this pair's open should fail; counts opens persistently.

        The first ``io_error_opens`` calls (across *all* processes sharing
        the ``state_dir``) return True; later calls return False, which is
        what lets a bounded retry recover the pair deterministically.
        """
        path = self._state_path(f"io:{metric_name}:{device_id}")
        count = int(path.read_text()) if path.exists() else 0
        if count >= self.io_error_opens:
            return False
        path.write_text(str(count + 1))
        return True

    def consume_crash(self, metric_name: str, offset: int) -> bool:
        """True exactly once per crash slice, across every process."""
        path = self._state_path(f"crash:{metric_name}:{offset}")
        try:
            path.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True
