"""Command-line interface: run the surveys, the adaptive demo, and quick estimates.

Installed as ``repro-monitor`` (see pyproject) and runnable as
``python -m repro.cli``.  Six subcommands cover the common workflows:

* ``survey``   -- run the Section 3.2 fleet survey and print Figures 1/4/5
  style summaries (optionally exporting CSVs).  ``--workers`` fans trace
  production + estimation out to a process pool and ``--spill-dir``
  streams the per-pair records to npz chunks on disk, so 100k+-pair
  fleets run with memory bounded by ``--chunk-size``.  ``--store DIR``
  keeps a content-addressed record store across runs: a rerun with
  identical traces and parameters serves every slice from the store
  (zero estimator calls) and only changed slices are recomputed.
  ``--from-dir``
  surveys a *measured* fleet (a directory of recorded per-pair trace
  files + manifest, as written by ``export-fleet``) instead of
  generating synthetic telemetry -- same backends, workers and sinks.
* ``policies`` -- the cost-vs-quality experiment behind the paper's
  title, at fleet scale: deploy monitoring on a leaf-spine fabric (or
  read a measured fleet with ``--from-dir``), evaluate today's
  fixed-rate polling against the Nyquist-static and adaptive dual-rate
  policies on every (metric, device) pair, price each with the
  hop-weighted network cost model, and print the relative-cost/quality
  table.  Same ``--workers`` / ``--chunk-size`` / ``--spill-dir``
  scaling as ``survey``.
* ``export-fleet`` -- round-trip a synthetic fleet to a measured-trace
  directory (one npz/csv file per (metric, device) pair plus
  ``manifest.json``); ``survey --from-dir`` on the result reproduces the
  in-memory survey byte-identically.
* ``ingest`` -- stream a raw monitoring export (gNMI-style JSON lines or
  SNMP-poller wide CSV, format sniffed) into such a measured-fleet
  directory with bounded memory (``--memory-budget`` caps the in-memory
  accumulator; partial series spill to scratch files), so production
  archives become surveyable with ``survey --from-dir``.
* ``export-dump`` -- fabricate a raw monitoring export from a synthetic
  fleet (the inverse of ``ingest``), for demos, tests and benchmarks.
* ``windowed`` -- run the Figure 7 moving-window sweep over every pair of
  a fleet (the continuous re-estimation loop) and report how much each
  pair's Nyquist rate drifts.
* ``adaptive`` -- run the Section 4 adaptive controller on a synthetic
  temperature trace and report the cost saving and reconstruction error.
* ``estimate`` -- estimate the Nyquist rate of a trace stored in a CSV
  file (columns: timestamp, value).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from .analysis.policy_survey import run_policy_survey
from .analysis.reporting import ascii_bar_chart, box_stats, format_table, write_csv
from .analysis.survey import SpillingRecordSink, run_survey, run_windowed_survey
from .faults import BatchExecutionError
from .core.adaptive import AdaptiveSamplingController, ControllerConfig
from .core.nyquist import NyquistEstimator, estimate_nyquist_rate
from .core.reconstruction import nyquist_round_trip
from .network.cost import TelemetryCostAccountant
from .network.monitoring import DeploymentSpec
from .network.topology import TopologySpec
from .pipeline.policies import PolicySuite
from .records import RecordStore
from .signals.timeseries import IrregularTimeSeries
from .telemetry.dataset import DatasetConfig, FleetDataset
from .telemetry.ingest import (DEFAULT_MEMORY_BUDGET_SAMPLES, EXPORT_FORMATS,
                               GNMI_FORMAT, export_gnmi_dump,
                               export_snmp_dump, ingest_dump, open_export)
from .telemetry.measured import MeasuredFleetDataset, export_traces
from .telemetry.metrics import METRIC_CATALOG
from .telemetry.models import generate_trace
from .telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters

__all__ = ["main", "build_parser"]


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-monitor`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Nyquist-rate analysis and adaptive sampling for datacenter monitoring.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    survey = subparsers.add_parser("survey", help="run the fleet survey (Figures 1/4/5)")
    survey.add_argument("--pairs", type=int, default=280,
                        help="number of (metric, device) pairs to survey (default 280; "
                             "the paper's full survey is 1613)")
    survey.add_argument("--seed", type=int, default=7, help="dataset seed")
    survey.add_argument("--energy-fraction", type=float, default=0.99,
                        help="energy cut-off for the Nyquist estimator")
    survey.add_argument("--backend", choices=["batched", "scalar"], default="batched",
                        help="spectral engine: 'batched' vectorises whole trace groups "
                             "(default), 'scalar' runs the per-trace reference path")
    survey.add_argument("--limit-per-metric", type=_non_negative_int, default=None,
                        help="cap the number of (metric, device) pairs analysed per metric")
    survey.add_argument("--csv-dir", type=Path, default=None,
                        help="directory to write figure CSVs into")
    survey.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for trace generation + estimation "
                             "(>= 2 fans the survey out to a process pool)")
    survey.add_argument("--fft-workers", type=_positive_int, default=None,
                        help="pocketfft threads inside each batched rfft")
    survey.add_argument("--chunk-size", type=_positive_int, default=1024,
                        help="traces held in memory at once (bounds survey memory)")
    survey.add_argument("--spill-dir", type=Path, default=None,
                        help="stream per-pair records to npz chunks in this directory "
                             "instead of holding them in memory (out-of-core surveys)")
    survey.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="content-addressed record store for incremental "
                             "reruns: slices already computed from identical "
                             "traces and parameters are served from DIR as "
                             "memory-mapped blocks, misses are written back")
    survey.add_argument("--no-store", action="store_true",
                        help="ignore --store and recompute everything")
    survey.add_argument("--from-dir", type=Path, default=None, metavar="FLEET_DIR",
                        help="survey a measured fleet: a directory of recorded per-pair "
                             "trace files + manifest.json (see 'export-fleet'); "
                             "--pairs/--seed are ignored, the manifest defines the pairs")
    survey.add_argument("--on-error", choices=["raise", "quarantine"], default="raise",
                        help="'raise' (default) aborts on the first bad pair; "
                             "'quarantine' isolates failures per pair, completes the "
                             "healthy fleet and reports the quarantined pairs "
                             "(spilled under SPILL_DIR/failures with --spill-dir)")

    policies = subparsers.add_parser(
        "policies",
        help="fleet-scale cost vs quality of sampling policies (the paper's title)",
        description="Deploy monitoring on a demo leaf-spine fabric (or read a "
                    "measured fleet with --from-dir), evaluate the fixed-rate "
                    "baseline, the Nyquist-static policy and the adaptive "
                    "dual-rate controller on every (metric, device) pair, and "
                    "price each with the hop-weighted network cost model.")
    policies.add_argument("--spines", type=_positive_int, default=2,
                          help="spine switches in the demo fabric")
    policies.add_argument("--leaves", type=_positive_int, default=4,
                          help="leaf (ToR) switches in the demo fabric")
    policies.add_argument("--servers-per-leaf", type=_non_negative_int, default=2,
                          help="servers attached to each leaf")
    policies.add_argument("--duration-hours", type=float, default=12.0,
                          help="reference trace length in hours")
    policies.add_argument("--seed", type=int, default=11, help="deployment seed")
    policies.add_argument("--oversample", type=float, default=None,
                          help="reference traces are sampled this much faster than "
                               "production polls (default 4 for the demo fabric, "
                               "1 for --from-dir fleets recorded at production rate)")
    policies.add_argument("--adaptive-window-hours", type=float, default=4.0,
                          help="adaptation window of the dual-rate controller")
    policies.add_argument("--calibration-fraction", type=float, default=0.25,
                          help="fraction of each trace the static policy calibrates on")
    policies.add_argument("--limit-per-metric", type=_non_negative_int, default=None,
                          help="cap the number of measurement points per metric")
    policies.add_argument("--metrics", nargs="*", default=None,
                          help="restrict the evaluation to these metrics")
    policies.add_argument("--workers", type=_positive_int, default=1,
                          help="worker processes for policy evaluation "
                               "(>= 2 fans the survey out to a process pool)")
    policies.add_argument("--chunk-size", type=_positive_int, default=256,
                          help="traces held in memory at once (bounds survey memory)")
    policies.add_argument("--spill-dir", type=Path, default=None,
                          help="stream per-point records to npz chunks in this "
                               "directory instead of holding them in memory")
    policies.add_argument("--store", type=Path, default=None, metavar="DIR",
                          help="content-addressed record store for incremental "
                               "reruns (same semantics as survey --store)")
    policies.add_argument("--no-store", action="store_true",
                          help="ignore --store and recompute everything")
    policies.add_argument("--csv-dir", type=Path, default=None,
                          help="directory to write the cost/quality table CSV into")
    policies.add_argument("--from-dir", type=Path, default=None, metavar="FLEET_DIR",
                          help="evaluate a measured fleet (see 'export-fleet') instead "
                               "of the demo fabric; costs use the default hop count "
                               "since recorded fleets carry no topology")
    policies.add_argument("--on-error", choices=["raise", "quarantine"],
                          default="raise",
                          help="'raise' (default) aborts on the first bad pair; "
                               "'quarantine' isolates failures per pair, completes "
                               "the healthy fleet and reports the quarantined pairs "
                               "(spilled under SPILL_DIR/failures with --spill-dir)")

    export = subparsers.add_parser(
        "export-fleet",
        help="export a synthetic fleet to a measured-trace directory",
        description="Write one trace file per (metric, device) pair plus a "
                    "manifest.json, so the fleet can be re-surveyed from disk with "
                    "'survey --from-dir' (byte-identical records, any --workers).")
    export.add_argument("directory", type=Path,
                        help="destination directory (must not already hold a fleet)")
    export.add_argument("--pairs", type=int, default=280,
                        help="number of (metric, device) pairs to export (default 280)")
    export.add_argument("--seed", type=int, default=7, help="dataset seed")
    export.add_argument("--trace-format", choices=["npz", "csv"], default="npz",
                        help="per-pair trace file format (default npz; csv files are "
                             "timestamp,value rows readable by 'estimate')")

    ingest = subparsers.add_parser(
        "ingest",
        help="stream a raw monitoring export (gNMI/SNMP dump) into a fleet directory",
        description="Convert a raw monitoring export -- gNMI-style JSON lines "
                    "(one timestamp/device/path/value update per line, pairs "
                    "interleaved) or an SNMP-poller wide CSV (one row per poll, "
                    "one column per OID/metric) -- into a measured-fleet "
                    "directory that 'survey --from-dir' and 'policies "
                    "--from-dir' read unchanged.  Streams with bounded memory: "
                    "partial per-pair series spill to scratch files once "
                    "--memory-budget is hit, and irregular timestamps are "
                    "re-sampled onto each pair's dominant polling interval.")
    ingest.add_argument("dump", type=Path, help="raw export file to ingest")
    ingest.add_argument("directory", type=Path,
                        help="destination fleet directory (must not already hold one)")
    ingest.add_argument("--format", choices=[*EXPORT_FORMATS, "auto"], default="auto",
                        help="wire format of the dump (default: sniff from the "
                             "first line)")
    ingest.add_argument("--memory-budget", type=_positive_int,
                        default=DEFAULT_MEMORY_BUDGET_SAMPLES, metavar="SAMPLES",
                        help="peak (timestamp, value) samples buffered in memory "
                             "across all pairs, 16 bytes each (default "
                             f"{DEFAULT_MEMORY_BUDGET_SAMPLES}); larger series "
                             "spill to per-pair scratch files")
    ingest.add_argument("--min-samples", type=_positive_int, default=2,
                        help="skip pairs with fewer distinct-timestamp samples "
                             "than this (recorded in the manifest; default 2)")
    ingest.add_argument("--trace-format", choices=["npz", "csv"], default="npz",
                        help="per-pair trace file format of the ingested fleet")
    ingest.add_argument("--on-error", choices=["raise", "quarantine"], default="raise",
                        help="'raise' (default) aborts on the first malformed line; "
                             "'quarantine' skips malformed lines, ingests every "
                             "healthy update and records the skipped line numbers "
                             "in the manifest")
    ingest.add_argument("--workers", type=_positive_int, default=1,
                        help="parse the dump in N parallel worker processes, "
                             "routing updates to N shards by a stable hash of "
                             "their (metric, device) key; the output directory "
                             "is byte-identical to --workers 1 (default: 1, "
                             "serial). Each shard gets --memory-budget / N")

    store_cmd = subparsers.add_parser(
        "store",
        help="record-store maintenance (verify published blocks)",
        description="Maintenance commands for a content-addressed record "
                    "store created with 'survey --store' or 'policies "
                    "--store'.")
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="re-hash every published block against its recorded digest",
        description="Re-read every published .rcb block in the store and "
                    "compare its sha256 against the digest recorded at "
                    "publication time, reporting any bit-rot, truncation or "
                    "missing files.  Exits non-zero when problems are found.")
    store_verify.add_argument("directory", type=Path, help="record-store directory")

    export_dump = subparsers.add_parser(
        "export-dump",
        help="fabricate a raw monitoring export from a synthetic fleet",
        description="Write a synthetic fleet as a raw monitoring export -- the "
                    "kind of file 'ingest' consumes -- for demos, tests and "
                    "benchmarks.  gNMI dumps interleave all pairs' updates in "
                    "global time order; SNMP dumps tabulate one row per "
                    "(poll, device).")
    export_dump.add_argument("path", type=Path, help="destination dump file")
    export_dump.add_argument("--format", choices=list(EXPORT_FORMATS),
                             default=GNMI_FORMAT,
                             help=f"wire format to emit (default {GNMI_FORMAT})")
    export_dump.add_argument("--pairs", type=int, default=56,
                             help="number of (metric, device) pairs to export")
    export_dump.add_argument("--seed", type=int, default=7, help="dataset seed")
    export_dump.add_argument("--duration-hours", type=float, default=24.0,
                             help="trace length in hours (default 24, the paper's "
                                  "one day per pair)")

    windowed = subparsers.add_parser(
        "windowed", help="fleet-wide moving-window Nyquist sweep (Figure 7 at scale)")
    windowed.add_argument("--pairs", type=int, default=56,
                          help="number of (metric, device) pairs to sweep")
    windowed.add_argument("--seed", type=int, default=7, help="dataset seed")
    windowed.add_argument("--window-hours", type=float, default=6.0,
                          help="moving window length in hours (paper: 6)")
    windowed.add_argument("--step-minutes", type=float, default=5.0,
                          help="moving window step in minutes (paper: 5)")
    windowed.add_argument("--limit-per-metric", type=_non_negative_int, default=None,
                          help="cap the number of pairs swept per metric")

    adaptive = subparsers.add_parser("adaptive",
                                     help="run the adaptive controller on a temperature trace")
    adaptive.add_argument("--metric", default="Temperature", choices=sorted(METRIC_CATALOG))
    adaptive.add_argument("--days", type=float, default=3.0, help="trace length in days")
    adaptive.add_argument("--window-hours", type=float, default=6.0,
                          help="adaptation window in hours")
    adaptive.add_argument("--seed", type=int, default=42)

    estimate = subparsers.add_parser("estimate",
                                     help="estimate the Nyquist rate of a CSV trace")
    estimate.add_argument("path", type=Path, help="CSV file with timestamp,value columns")
    estimate.add_argument("--energy-fraction", type=float, default=0.99)

    return parser


# ----------------------------------------------------------------------
def _print_quarantined(count: int, failures: list, limit: int = 10) -> None:
    """Print a survey's quarantine section (nothing when the run was clean)."""
    if not count:
        return
    print(f"\nQuarantined {count} pair(s) (--on-error quarantine):")
    for failure in failures[:limit]:
        print(f"  {failure.metric_name} @ {failure.device_id} "
              f"[{failure.stage}] {failure.error_type}: {failure.message}")
    if count > limit:
        print(f"  ... and {count - limit} more")


def _command_survey(args: argparse.Namespace) -> int:
    if args.from_dir is not None:
        try:
            dataset = MeasuredFleetDataset(args.from_dir)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"Surveying measured fleet from {args.from_dir} "
              f"({len(dataset)} recorded pairs)\n")
    else:
        dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))
    estimator = NyquistEstimator(energy_fraction=args.energy_fraction)
    sink = SpillingRecordSink(args.spill_dir) if args.spill_dir is not None else None
    failure_sink = (SpillingRecordSink(args.spill_dir / "failures")
                    if args.spill_dir is not None and args.on_error == "quarantine"
                    else None)
    try:
        store = (RecordStore(args.store)
                 if args.store is not None and not args.no_store else None)
        result = run_survey(dataset, estimator=estimator, backend=args.backend,
                            limit_per_metric=args.limit_per_metric,
                            workers=args.workers, fft_workers=args.fft_workers,
                            chunk_size=args.chunk_size, sink=sink,
                            on_error=args.on_error, failure_sink=failure_sink,
                            store=store)
    except (ValueError, BatchExecutionError) as error:
        # E.g. a corrupt/truncated trace file in a measured fleet (possibly
        # wrapped with its batch spec by a pooled run), or a used spill
        # directory -- report cleanly instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"Surveyed {len(result)} metric-device pairs "
          f"({len(result.metrics())} metrics)\n")
    print("Figure 1 -- fraction of devices sampled above the Nyquist rate:")
    print(ascii_bar_chart(result.oversampled_fraction_by_metric(), maximum=1.0))
    print()

    print("Figure 5 -- Nyquist rate per metric (Hz):")
    rows = []
    for metric in result.metrics():
        stats = box_stats(result.nyquist_rates(metric))
        row = {"metric": metric}
        row.update(stats.as_dict())
        rows.append(row)
    print(format_table(rows, ["metric", "min", "p25", "median", "p75", "max", "count"]))
    print()

    print("Headline statistics (cf. Section 3.2):")
    headline_rows = [{"statistic": key, "value": value}
                     for key, value in result.headline().items()]
    print(format_table(headline_rows))
    _print_quarantined(result.quarantined_count, result.quarantined)
    _print_store_summary(store, args.store, result)

    if args.csv_dir is not None:
        write_csv(args.csv_dir / "figure1_oversampled_fraction.csv",
                  [{"metric": metric, "fraction": fraction}
                   for metric, fraction in result.oversampled_fraction_by_metric().items()])
        write_csv(args.csv_dir / "figure5_nyquist_rates.csv", rows)
        ratio_rows = [{"metric": record.metric_name, "device": record.device_id,
                       "reduction_ratio": record.reduction_ratio}
                      for record in result.records if record.reliable]
        write_csv(args.csv_dir / "figure4_reduction_ratios.csv", ratio_rows)
        print(f"\nCSV series written under {args.csv_dir}")
    if args.spill_dir is not None:
        print(f"\nRecord chunks spilled to {args.spill_dir} "
              f"({len(result.sink.files)} {result.sink.fmt} files)")
    return 0


def _print_store_summary(store, directory, result) -> None:
    """Print one run's record-store hit/miss line (nothing without a store)."""
    if store is None:
        return
    total = result.cache_hits + result.cache_misses
    percent = 100.0 * result.cache_hits / total if total else 0.0
    print(f"\nRecord store {directory}: {result.cache_hits} pair(s) served from "
          f"cache, {result.cache_misses} recomputed ({percent:.0f}% hits)")


def _command_policies(args: argparse.Namespace) -> int:
    try:
        if args.from_dir is not None:
            source = MeasuredFleetDataset(args.from_dir)
            oversample = args.oversample if args.oversample is not None else 1.0
            if oversample < 1:
                raise ValueError("--oversample must be >= 1")
            accountant = TelemetryCostAccountant()
            print(f"Evaluating policies on measured fleet from {args.from_dir} "
                  f"({len(source)} recorded pairs)\n")
        else:
            oversample = args.oversample if args.oversample is not None else 4.0
            spec = DeploymentSpec(
                topology=TopologySpec(num_spines=args.spines, num_leaves=args.leaves,
                                      servers_per_leaf=args.servers_per_leaf),
                trace_duration=args.duration_hours * 3600.0,
                seed=args.seed,
                oversample_factor=oversample)
            source = spec.open()
            accountant = source.accountant()
            print("Deployed monitoring on a "
                  f"{len(source.deployment.topology)}-node leaf-spine fabric "
                  f"({len(source)} measurement points, collector at {source.collector})\n")
        if args.metrics is not None:
            unknown = sorted(set(args.metrics) - set(source.metric_names()))
            if not args.metrics or unknown:
                raise ValueError(
                    f"{'--metrics needs at least one name' if not args.metrics else f'unknown metrics {unknown}'}; "
                    f"this fleet serves {source.metric_names()}")
        suite = PolicySuite(production_oversample=oversample,
                            calibration_fraction=args.calibration_fraction,
                            adaptive_window=args.adaptive_window_hours * 3600.0)
        sink = SpillingRecordSink(args.spill_dir) if args.spill_dir is not None else None
        failure_sink = (SpillingRecordSink(args.spill_dir / "failures")
                        if args.spill_dir is not None and args.on_error == "quarantine"
                        else None)
        store = (RecordStore(args.store)
                 if args.store is not None and not args.no_store else None)
        result = run_policy_survey(source, suite, accountant=accountant,
                                   metrics=args.metrics,
                                   limit_per_metric=args.limit_per_metric,
                                   chunk_size=args.chunk_size, workers=args.workers,
                                   sink=sink, on_error=args.on_error,
                                   failure_sink=failure_sink, store=store)
    except (ValueError, BatchExecutionError) as error:
        # Bad spec/suite parameters, unknown metrics, a corrupt measured
        # fleet (possibly wrapped with its batch spec by a pooled run) or a
        # used spill directory -- report cleanly, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1

    points = len(result) // max(len(result.policies()), 1)
    print(f"Evaluated {len(result.policies())} policies on {points} "
          f"(metric, device) pairs ({len(result.metrics())} metrics)\n")
    rows = result.rows()
    print("Cost vs quality per policy (cf. the paper's title):")
    print(format_table(rows))
    print()
    try:
        relative = result.relative_costs("fixed")
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print("Total monitoring cost relative to the fixed-rate baseline:")
    for policy, fraction in relative.items():
        print(f"  {policy:22s} {fraction:.2f}x")
    _print_quarantined(result.quarantined_count, result.quarantined)
    _print_store_summary(store, args.store, result)
    if args.csv_dir is not None:
        for row, fraction in zip(rows, relative.values()):
            row["cost_vs_fixed"] = fraction
        write_csv(args.csv_dir / "policy_cost_quality.csv", rows)
        print(f"\nCSV written under {args.csv_dir}")
    if args.spill_dir is not None:
        print(f"\nRecord chunks spilled to {args.spill_dir} "
              f"({len(result.sink.files)} {result.sink.fmt} files)")
    return 0


def _command_export_fleet(args: argparse.Namespace) -> int:
    dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))
    try:
        manifest_path = export_traces(dataset, args.directory, fmt=args.trace_format)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"Exported {len(dataset)} metric-device pairs "
          f"({len(dataset.metric_names())} metrics) to {args.directory}")
    print(f"  manifest: {manifest_path}")
    print(f"  traces:   {len(dataset)} {args.trace_format} files under "
          f"{args.directory / 'traces'}")
    print(f"\nSurvey the recording with:  repro-monitor survey --from-dir {args.directory}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    import json

    fmt = None if args.format == "auto" else args.format
    try:
        dump = open_export(args.dump, fmt)
        print(f"Ingesting {dump.format} export {dump.path} "
              f"(memory budget {args.memory_budget} samples, "
              f"~{args.memory_budget * 16 / 2 ** 20:.1f} MiB)...")
        dataset = ingest_dump(dump, args.directory,
                              memory_budget_samples=args.memory_budget,
                              min_samples=args.min_samples,
                              trace_format=args.trace_format,
                              on_error=args.on_error,
                              workers=args.workers)
    except (ValueError, BatchExecutionError) as error:
        # Malformed updates (reported with file + line), a used destination
        # directory, an empty dump, or a sharded run whose worker pool
        # failed -- report cleanly, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    manifest = json.loads((args.directory / "manifest.json").read_text())
    summary = manifest["ingest"]
    stats = dataset.ingest_stats
    assert stats is not None  # always attached by ingest_dump
    print(f"Ingested {len(dataset)} (metric, device) pairs "
          f"({len(dataset.metric_names())} metrics) from "
          f"{summary['updates']} updates into {args.directory}")
    if stats.workers > 1:
        print(f"  sharded ingest: {stats.workers} workers over {stats.ranges} "
              f"byte range(s), {len(stats.shards)} shards "
              f"(per-shard budget {stats.shards[0].memory_budget_samples} samples)")
    print(f"  peak in-memory accumulator: {stats.peak_buffered_samples} samples "
          f"(budget {stats.memory_budget_samples}); "
          f"{stats.spilled_samples} samples spilled to scratch in "
          f"{stats.spill_writes} writes")
    if summary["pairs_skipped"]:
        print(f"  skipped {len(summary['pairs_skipped'])} pairs below "
              f"--min-samples {args.min_samples}:")
        for entry in summary["pairs_skipped"]:
            print(f"    {entry['metric']} @ {entry['device']}: {entry['skipped']}")
    if summary.get("quarantined_lines"):
        lines = summary["quarantined_lines"]
        shown = ", ".join(str(line) for line in lines[:10])
        more = f", ... and {len(lines) - 10} more" if len(lines) > 10 else ""
        print(f"  quarantined {len(lines)} malformed line(s) "
              f"(--on-error quarantine): {shown}{more}")
    resampled = sum(1 for entry in manifest["pairs"] if entry["ingest"]["resampled"])
    if resampled:
        print(f"  {resampled} pairs had irregular timestamps and were re-sampled "
              "onto their dominant interval")
    print("\nSurvey the ingested fleet with:  repro-monitor survey --from-dir "
          f"{args.directory}")
    return 0


def _command_export_dump(args: argparse.Namespace) -> int:
    try:
        config = DatasetConfig(pair_count=args.pairs, seed=args.seed,
                               trace_duration=args.duration_hours * 3600.0)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    dataset = FleetDataset(config)
    exporter = export_gnmi_dump if args.format == GNMI_FORMAT else export_snmp_dump
    exporter(dataset, args.path)
    print(f"Exported {len(dataset)} metric-device pairs "
          f"({len(dataset.metric_names())} metrics) as a {args.format} dump:")
    print(f"  {args.path}: {args.path.stat().st_size / 2 ** 20:.1f} MiB")
    print(f"\nIngest it with:  repro-monitor ingest {args.path} FLEET_DIR")
    return 0


def _command_windowed(args: argparse.Namespace) -> int:
    dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))
    summaries = run_windowed_survey(dataset,
                                    window_seconds=args.window_hours * 3600.0,
                                    step_seconds=args.step_minutes * 60.0,
                                    limit_per_metric=args.limit_per_metric)
    print(f"Windowed sweep over {len(summaries)} metric-device pairs "
          f"({args.window_hours:g} h window, {args.step_minutes:g} min step)\n")
    rows = [{"metric": s.metric_name, "device": s.device_id, "windows": s.windows,
             "reliable": s.reliable_windows, "min_hz": s.min_rate, "max_hz": s.max_rate,
             "dynamic_range": s.dynamic_range, "drifting": s.drifting}
            for s in summaries]
    print(format_table(rows))
    swept = [s for s in summaries if s.windows > 0]
    drifting = sum(s.drifting for s in swept)
    if swept:
        print(f"\n{drifting} of {len(swept)} swept pairs drift by more than 2x "
              "(cf. Figure 7: a fixed rate cannot serve them)")
    return 0


def _command_adaptive(args: argparse.Namespace) -> int:
    spec = METRIC_CATALOG[args.metric]
    device = DeviceProfile(device_id="demo-device", role=DeviceRole.TOR_SWITCH, seed=args.seed)
    duration = args.days * 86400.0
    params = draw_metric_parameters(spec, device, duration, broadband_fraction=0.0,
                                    rng=np.random.default_rng(args.seed))
    reference = generate_trace(spec, params, duration, interval=spec.poll_interval / 4.0,
                               rng=np.random.default_rng(args.seed))

    controller = AdaptiveSamplingController(ControllerConfig(
        initial_rate=spec.poll_rate / 8.0, max_rate=reference.sampling_rate))
    run = controller.run(reference, window_duration=args.window_hours * 3600.0)

    baseline_samples = int(duration / spec.poll_interval)
    print(f"Metric: {spec.name} ({spec.units}); trace of {args.days:g} days")
    print(f"Existing system samples every {spec.poll_interval:g}s -> {baseline_samples} samples")
    print(f"Adaptive controller collected {run.total_samples_collected} samples "
          f"({run.cost_reduction:.1f}x fewer than the reference trace)")
    rows = [{"window_start_h": decision.window_start / 3600.0,
             "mode": decision.mode.value,
             "rate_hz": decision.sampling_rate,
             "nyquist_estimate_hz": decision.nyquist_estimate,
             "aliased": decision.aliased}
            for decision in run.decisions]
    print()
    print("Per-window decisions (cf. Figure 7):")
    print(format_table(rows))

    round_trip = nyquist_round_trip(reference)
    print()
    print(f"One-shot Nyquist round trip: rate {round_trip.estimate.nyquist_rate:.3e} Hz, "
          f"keeping {len(round_trip.downsampled)} of {len(reference)} samples, "
          f"NRMSE {round_trip.error.nrmse:.4f}")
    return 0


def _command_estimate(args: argparse.Namespace) -> int:
    timestamps = []
    values = []
    try:
        handle = args.path.open()
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    with handle:
        reader = csv.reader(handle)
        for line_number, row in enumerate(reader, start=1):
            if not row or row[0].strip().lower() in ("timestamp", "time", "t"):
                continue
            if len(row) < 2:
                print(f"error: {args.path}, line {line_number}: expected two columns "
                      f"(timestamp,value), got {len(row)}", file=sys.stderr)
                return 1
            try:
                timestamps.append(float(row[0]))
                values.append(float(row[1]))
            except ValueError:
                print(f"error: {args.path}, line {line_number}: could not parse "
                      f"{row[:2]!r} as numeric timestamp,value", file=sys.stderr)
                return 1
    if len(values) < 2:
        print("need at least two samples", file=sys.stderr)
        return 1
    series = IrregularTimeSeries(np.array(timestamps), np.array(values), name=str(args.path))
    estimate = estimate_nyquist_rate(series, energy_fraction=args.energy_fraction)
    print(f"samples:          {len(values)}")
    print(f"current rate:     {estimate.current_rate:.6g} Hz")
    if estimate.reliable:
        print(f"nyquist rate:     {estimate.nyquist_rate:.6g} Hz")
        print(f"reduction ratio:  {estimate.reduction_ratio:.3g}x")
    else:
        print(f"nyquist rate:     unreliable ({estimate.reason})")
    return 0


def _command_store(args: argparse.Namespace) -> int:
    # Only 'verify' exists today; argparse enforces store_command.
    try:
        store = RecordStore(args.directory)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    verification = store.verify()
    print(f"Record store {args.directory}: {verification.entries} entr"
          f"{'y' if verification.entries == 1 else 'ies'}, "
          f"{verification.blocks} block file(s) re-hashed")
    for note in verification.unverified:
        print(f"  unverified: {note}")
    if verification.problems:
        print(f"BIT ROT: {len(verification.problems)} problem(s) found:",
              file=sys.stderr)
        for problem in verification.problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("All published blocks match their recorded digests.")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "survey": _command_survey,
        "policies": _command_policies,
        "export-fleet": _command_export_fleet,
        "ingest": _command_ingest,
        "export-dump": _command_export_dump,
        "windowed": _command_windowed,
        "adaptive": _command_adaptive,
        "estimate": _command_estimate,
        "store": _command_store,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
