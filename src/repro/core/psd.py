"""Power-spectral-density estimation.

Section 3.2 of the paper computes, for each trace, "the FFT and ... the
total energy in the signal -- the sum of the PSD across all FFT bins".
:func:`periodogram` implements that single-FFT estimate; :func:`welch_psd`
provides the standard averaged variant for very noisy traces (both return
:class:`repro.signals.Spectrum`, which the Nyquist estimator consumes).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..signals.spectrum import Spectrum
from ..signals.timeseries import TimeSeries

__all__ = ["periodogram", "welch_psd", "power_spectrum", "WindowName", "window_coefficients"]

WindowName = Literal["rectangular", "hann", "hamming", "blackman"]

_WINDOW_BUILDERS = {
    "rectangular": lambda n: np.ones(n),
    "hann": np.hanning,
    "hamming": np.hamming,
    "blackman": np.blackman,
}


def window_coefficients(name: WindowName, length: int) -> np.ndarray:
    """Return the taper coefficients for the named window function."""
    if length < 1:
        raise ValueError("length must be >= 1")
    try:
        builder = _WINDOW_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown window {name!r}; choose from {sorted(_WINDOW_BUILDERS)}") from None
    if length == 1:
        return np.ones(1)
    return np.asarray(builder(length), dtype=np.float64)


def periodogram(series: TimeSeries, window: WindowName = "rectangular",
                detrend: bool = False) -> Spectrum:
    """Single-FFT power spectral density of ``series``.

    Parameters
    ----------
    series:
        The regularly sampled trace to analyse.
    window:
        Taper applied before the FFT.  The paper's method uses the plain
        FFT (rectangular window), which is the default.
    detrend:
        If True, remove the mean before the FFT.  This moves what would be
        DC leakage out of the low-frequency bins; the Nyquist estimator
        instead handles the mean by ignoring the DC bin, so the default is
        False.

    Returns
    -------
    Spectrum
        One-sided PSD with ``len(series) // 2 + 1`` bins.
    """
    if len(series) < 2:
        raise ValueError("need at least two samples to compute a periodogram")
    values = series.values - series.mean() if detrend else series.values
    taper = window_coefficients(window, len(series))
    tapered = values * taper
    spectrum = np.fft.rfft(tapered)
    # Normalise so the sum of bin powers equals the mean squared value of
    # the signal (exactly so for the rectangular window, in expectation for
    # tapered windows); only ratios matter downstream, but a physical
    # normalisation makes the numbers interpretable in tests.
    scale = len(series) * np.sum(taper ** 2)
    power = (np.abs(spectrum) ** 2) / scale
    # One-sided spectrum: double the interior bins to account for negative
    # frequencies (DC and, for even n, the Nyquist bin are unique).
    if len(series) % 2 == 0:
        power[1:-1] *= 2.0
    else:
        power[1:] *= 2.0
    freqs = np.fft.rfftfreq(len(series), d=series.interval)
    return Spectrum(freqs, power, series.sampling_rate)


def welch_psd(series: TimeSeries, segment_length: int | None = None,
              overlap: float = 0.5, window: WindowName = "hann",
              detrend: bool = True) -> Spectrum:
    """Welch-averaged PSD: split into overlapping segments, average periodograms.

    Averaging trades frequency resolution for variance reduction, which
    helps when a trace is dominated by measurement noise.  The paper's
    survey uses the raw periodogram; Welch is offered for robustness
    experiments.
    """
    n = len(series)
    if n < 2:
        raise ValueError("need at least two samples to compute a PSD")
    if segment_length is None:
        segment_length = max(min(n, 256), 2)
    if segment_length < 2:
        raise ValueError("segment_length must be >= 2")
    segment_length = min(segment_length, n)
    if not 0 <= overlap < 1:
        raise ValueError("overlap must be in [0, 1)")
    step = max(int(round(segment_length * (1.0 - overlap))), 1)

    taper = window_coefficients(window, segment_length)
    scale = segment_length * np.sum(taper ** 2)
    freqs = np.fft.rfftfreq(segment_length, d=series.interval)
    accumulated = np.zeros(freqs.shape)
    segments = 0
    for start in range(0, n - segment_length + 1, step):
        chunk = series.values[start:start + segment_length]
        if detrend:
            chunk = chunk - np.mean(chunk)
        spectrum = np.fft.rfft(chunk * taper)
        power = (np.abs(spectrum) ** 2) / scale
        if segment_length % 2 == 0:
            power[1:-1] *= 2.0
        else:
            power[1:] *= 2.0
        accumulated += power
        segments += 1
    if segments == 0:
        raise ValueError("series shorter than one segment")
    return Spectrum(freqs, accumulated / segments, series.sampling_rate)


def power_spectrum(series: TimeSeries, method: Literal["periodogram", "welch"] = "periodogram",
                   **kwargs) -> Spectrum:
    """Dispatch helper: compute a PSD with the requested method."""
    if method == "periodogram":
        return periodogram(series, **kwargs)
    if method == "welch":
        return welch_psd(series, **kwargs)
    raise ValueError(f"unknown PSD method {method!r}")
