"""Power-spectral-density estimation.

Section 3.2 of the paper computes, for each trace, "the FFT and ... the
total energy in the signal -- the sum of the PSD across all FFT bins".
:func:`periodogram` implements that single-FFT estimate; :func:`welch_psd`
provides the standard averaged variant for very noisy traces (both return
:class:`repro.signals.Spectrum`, which the Nyquist estimator consumes).

The survey runs the same estimate over thousands of traces at once, so
both estimators also exist in batched form: :func:`batch_periodogram` and
:func:`batch_welch_psd` take a ``(rows, n)`` matrix of equal-length traces
and compute every row's PSD with a single ``np.fft.rfft(axis=-1)`` call,
returning a :class:`repro.signals.SpectrumBatch`.  The scalar and batched
paths share the same normalisation helper, so a batch row is numerically
the same PSD the scalar estimator would produce for that trace.
"""

from __future__ import annotations

from typing import Any, Literal

import numpy as np

from ..signals.spectrum import Spectrum, SpectrumBatch
from ..signals.timeseries import TimeSeries

__all__ = [
    "periodogram",
    "welch_psd",
    "power_spectrum",
    "batch_periodogram",
    "batch_welch_psd",
    "WindowName",
    "window_coefficients",
    "taper_energy",
]

WindowName = Literal["rectangular", "hann", "hamming", "blackman"]

_WINDOW_BUILDERS = {
    "rectangular": lambda n: np.ones(n),
    "hann": np.hanning,
    "hamming": np.hamming,
    "blackman": np.blackman,
}


def window_coefficients(name: WindowName, length: int) -> np.ndarray:
    """Return the taper coefficients for the named window function."""
    if length < 1:
        raise ValueError("length must be >= 1")
    try:
        builder = _WINDOW_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown window {name!r}; choose from {sorted(_WINDOW_BUILDERS)}") from None
    if length == 1:
        return np.ones(1)
    return np.asarray(builder(length), dtype=np.float64)


def taper_energy(taper: np.ndarray) -> float:
    """Sum of squared taper coefficients, rejecting degenerate tapers.

    A tapered window can be identically (or numerically) zero at very
    short lengths -- ``hanning(2) == [0, 0]`` is the canonical case -- in
    which case the PSD normalisation divides by zero and every bin comes
    out NaN.  Rather than emit a RuntimeWarning and a NaN spectrum, fail
    with an actionable error.
    """
    energy = float(np.sum(taper ** 2))
    if energy <= taper.size * np.finfo(np.float64).eps ** 2:
        raise ValueError(
            f"degenerate tapered window of length {taper.size}: the taper has "
            "(near-)zero energy (e.g. hann of length 2), so the PSD is undefined; "
            "use a longer segment or window='rectangular'")
    return energy


def _one_sided_psd(values: np.ndarray, taper: np.ndarray) -> np.ndarray:
    """One-sided PSD along the last axis of ``values``.

    Normalised so the sum of bin powers equals the mean squared value of
    the signal (exactly so for the rectangular window, in expectation for
    tapered windows); only ratios matter downstream, but a physical
    normalisation makes the numbers interpretable in tests.  Interior bins
    are doubled to account for negative frequencies (DC and, for even n,
    the Nyquist bin are unique).
    """
    n = values.shape[-1]
    scale = n * taper_energy(taper)
    spectrum = np.fft.rfft(values * taper, axis=-1)
    power = (np.abs(spectrum) ** 2) / scale
    if n % 2 == 0:
        power[..., 1:-1] *= 2.0
    else:
        power[..., 1:] *= 2.0
    return power


def periodogram(series: TimeSeries, window: WindowName = "rectangular",
                detrend: bool = False) -> Spectrum:
    """Single-FFT power spectral density of ``series``.

    Parameters
    ----------
    series:
        The regularly sampled trace to analyse.
    window:
        Taper applied before the FFT.  The paper's method uses the plain
        FFT (rectangular window), which is the default.
    detrend:
        If True, remove the mean before the FFT.  This moves what would be
        DC leakage out of the low-frequency bins; the Nyquist estimator
        instead handles the mean by ignoring the DC bin, so the default is
        False.

    Returns
    -------
    Spectrum
        One-sided PSD with ``len(series) // 2 + 1`` bins.
    """
    if len(series) < 2:
        raise ValueError("need at least two samples to compute a periodogram")
    values = series.values - series.mean() if detrend else series.values
    taper = window_coefficients(window, len(series))
    power = _one_sided_psd(values, taper)
    freqs = np.fft.rfftfreq(len(series), d=series.interval)
    return Spectrum(freqs, power, series.sampling_rate)


def batch_periodogram(values: np.ndarray, interval: float,
                      window: WindowName = "rectangular",
                      detrend: bool = False) -> SpectrumBatch:
    """Single-FFT PSDs of a whole batch of equal-length traces.

    Parameters
    ----------
    values:
        ``(rows, n)`` matrix; each row is one trace of ``n`` samples.
    interval:
        The common sampling interval of every row, in seconds.
    window / detrend:
        As for :func:`periodogram`.

    Returns
    -------
    SpectrumBatch
        ``rows`` one-sided PSDs of ``n // 2 + 1`` bins each, computed with
        one ``rfft(axis=-1)`` call for the whole batch.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"values must be a 2-D (rows, samples) matrix, got shape {matrix.shape}")
    if interval <= 0:
        raise ValueError("interval must be positive")
    n = matrix.shape[-1]
    if n < 2:
        raise ValueError("need at least two samples per trace to compute a periodogram")
    if detrend:
        matrix = matrix - np.mean(matrix, axis=-1, keepdims=True)
    taper = window_coefficients(window, n)
    power = _one_sided_psd(matrix, taper)
    freqs = np.fft.rfftfreq(n, d=interval)
    return SpectrumBatch(freqs, power, 1.0 / interval)


def _welch_starts(n: int, segment_length: int, step: int) -> list[int]:
    """Segment start offsets covering all ``n`` samples.

    The stride-based starts alone drop up to ``segment_length - 1``
    trailing samples whenever ``n - segment_length`` is not a multiple of
    ``step``; a final end-anchored segment guarantees the tail of the
    trace is analysed too.
    """
    starts = list(range(0, n - segment_length + 1, step))
    if starts and starts[-1] + segment_length < n:
        starts.append(n - segment_length)
    return starts


def _welch_parameters(n: int, segment_length: int | None, overlap: float) -> tuple[int, int]:
    """Validate and resolve the (segment_length, step) pair for Welch."""
    if segment_length is None:
        segment_length = max(min(n, 256), 2)
    if segment_length < 2:
        raise ValueError("segment_length must be >= 2")
    segment_length = min(segment_length, n)
    if not 0 <= overlap < 1:
        raise ValueError("overlap must be in [0, 1)")
    step = max(int(round(segment_length * (1.0 - overlap))), 1)
    return segment_length, step


def welch_psd(series: TimeSeries, segment_length: int | None = None,
              overlap: float = 0.5, window: WindowName = "hann",
              detrend: bool = True) -> Spectrum:
    """Welch-averaged PSD: split into overlapping segments, average periodograms.

    Averaging trades frequency resolution for variance reduction, which
    helps when a trace is dominated by measurement noise.  The paper's
    survey uses the raw periodogram; Welch is offered for robustness
    experiments.  When the stride does not land exactly on the end of the
    trace, a final end-anchored segment is added so no trailing samples
    are silently dropped.
    """
    n = len(series)
    if n < 2:
        raise ValueError("need at least two samples to compute a PSD")
    segment_length, step = _welch_parameters(n, segment_length, overlap)

    taper = window_coefficients(window, segment_length)
    freqs = np.fft.rfftfreq(segment_length, d=series.interval)
    accumulated = np.zeros(freqs.shape)
    # segment_length is clamped to n, so there is always at least one start.
    starts = _welch_starts(n, segment_length, step)
    for start in starts:
        chunk = series.values[start:start + segment_length]
        if detrend:
            chunk = chunk - np.mean(chunk)
        accumulated += _one_sided_psd(chunk, taper)
    return Spectrum(freqs, accumulated / len(starts), series.sampling_rate)


def batch_welch_psd(values: np.ndarray, interval: float,
                    segment_length: int | None = None,
                    overlap: float = 0.5, window: WindowName = "hann",
                    detrend: bool = True) -> SpectrumBatch:
    """Welch-averaged PSDs of a whole batch of equal-length traces.

    Segments of every row are gathered into one ``(rows, segments, n)``
    array and transformed with a single ``rfft(axis=-1)`` call, then
    averaged over the segment axis.  Segmentation (including the
    end-anchored final segment) matches :func:`welch_psd` exactly.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"values must be a 2-D (rows, samples) matrix, got shape {matrix.shape}")
    if interval <= 0:
        raise ValueError("interval must be positive")
    n = matrix.shape[-1]
    if n < 2:
        raise ValueError("need at least two samples per trace to compute a PSD")
    segment_length, step = _welch_parameters(n, segment_length, overlap)

    starts = np.asarray(_welch_starts(n, segment_length, step), dtype=np.intp)
    # Gather all segments of all rows: (rows, segments, segment_length).
    segments = matrix[:, starts[:, None] + np.arange(segment_length)]
    if detrend:
        segments = segments - np.mean(segments, axis=-1, keepdims=True)
    taper = window_coefficients(window, segment_length)
    power = np.mean(_one_sided_psd(segments, taper), axis=1)
    freqs = np.fft.rfftfreq(segment_length, d=interval)
    return SpectrumBatch(freqs, power, 1.0 / interval)


def power_spectrum(series: TimeSeries, method: Literal["periodogram", "welch"] = "periodogram",
                   **kwargs: Any) -> Spectrum:
    """Dispatch helper: compute a PSD with the requested method."""
    if method == "periodogram":
        return periodogram(series, **kwargs)
    if method == "welch":
        return welch_psd(series, **kwargs)
    raise ValueError(f"unknown PSD method {method!r}")
