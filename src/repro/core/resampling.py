"""Re-sampling: cleaning irregular traces, down-sampling and up-sampling.

Three operations from the paper live here:

* **Pre-cleaning** (§3.2): "monitoring systems do not produce perfectly
  sampled signals ... we pre-clean the signal using nearest neighbor
  re-sampling" -- :func:`regularize`.
* **Down-sampling** to a lower (e.g. Nyquist) rate, either by naive
  decimation (what a poller that simply polls less often produces) or with
  an anti-aliasing low-pass filter -- :func:`downsample`.
* **Up-sampling / reconstruction support** via Fourier interpolation --
  :func:`fourier_resample` (the heavy lifting for Figure 6 lives in
  :mod:`repro.core.reconstruction`).
"""

from __future__ import annotations

import math

import numpy as np

from ..signals.filters import low_pass_fft
from ..signals.timeseries import IrregularTimeSeries, TimeSeries

__all__ = [
    "regularize",
    "nearest_neighbor_resample",
    "downsample",
    "resample_to_rate",
    "decimation_factor",
    "fourier_resample",
    "fourier_resample_matrix",
    "linear_resample",
]


def nearest_neighbor_resample(series: IrregularTimeSeries, interval: float,
                              start_time: float | None = None,
                              end_time: float | None = None) -> TimeSeries:
    """Re-sample an irregular trace onto a regular grid with nearest-neighbour values.

    For every grid point the value of the closest-in-time raw sample is
    used; this "adds values for missing samples based on nearby samples"
    exactly as §3.2 describes and never invents values outside the observed
    range (unlike linear interpolation on counters that reset).
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    clean = series.dedupe()
    if len(clean) == 0:
        raise ValueError("cannot resample an empty series")
    t0 = clean.start_time if start_time is None else start_time
    t1 = clean.end_time if end_time is None else end_time
    if t1 < t0:
        raise ValueError("end_time must be >= start_time")
    n = max(int(math.floor((t1 - t0) / interval)) + 1, 1)
    grid = t0 + np.arange(n) * interval
    # For each grid point find the closest raw timestamp.
    indices = np.searchsorted(clean.timestamps, grid)
    indices = np.clip(indices, 0, len(clean) - 1)
    left = np.clip(indices - 1, 0, len(clean) - 1)
    choose_left = (np.abs(grid - clean.timestamps[left])
                   <= np.abs(clean.timestamps[indices] - grid))
    nearest = np.where(choose_left, left, indices)
    values = clean.values[nearest]
    return TimeSeries(values, interval, start_time=t0, name=series.name)


def regularize(series: IrregularTimeSeries, interval: float | None = None) -> TimeSeries:
    """Pre-clean an irregular trace into a regular one (§3.2).

    If ``interval`` is not given, the median observed inter-sample gap is
    used as the nominal polling interval.
    """
    target = interval if interval is not None else series.median_interval()
    return nearest_neighbor_resample(series, target)


def downsample(series: TimeSeries, factor: int, anti_alias: bool = True) -> TimeSeries:
    """Reduce the sampling rate of ``series`` by an integer ``factor``.

    With ``anti_alias=True`` a brick-wall low-pass at the *new* Nyquist
    frequency is applied first, which is how an ideal re-sampler behaves.
    With ``anti_alias=False`` the series is simply decimated -- this is
    what a monitoring system does when it polls less often, and it is the
    operation whose safety the Nyquist analysis establishes.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1 or len(series) == 0:
        return series
    filtered = series
    if anti_alias:
        new_nyquist = series.sampling_rate / factor / 2.0
        filtered = low_pass_fft(series, new_nyquist)
    return filtered.decimate(factor)


def decimation_factor(current_rate: float, target_rate: float) -> int:
    """The integer decimation step :func:`resample_to_rate` uses.

    One shared definition keeps the scalar policy/resampling path and the
    batched (matrix) policy evaluation on exactly the same sample grids: a
    factor of 1 means "already at or below the target rate".
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if target_rate >= current_rate:
        return 1
    return max(int(math.ceil(current_rate / target_rate - 1e-12)), 1)


def resample_to_rate(series: TimeSeries, target_rate: float,
                     anti_alias: bool = True) -> TimeSeries:
    """Down-sample ``series`` to (approximately) ``target_rate`` samples/second.

    The achievable rates are the original rate divided by an integer, so
    the result's rate is the largest such rate that does not exceed
    ``target_rate`` (i.e. we never accidentally sample *faster* than asked,
    which would under-state the savings).  If ``target_rate`` is at or
    above the original rate the series is returned unchanged.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if target_rate >= series.sampling_rate or len(series) == 0:
        return series
    factor = decimation_factor(series.sampling_rate, target_rate)
    return downsample(series, factor, anti_alias=anti_alias)


def fourier_resample(series: TimeSeries, target_length: int) -> TimeSeries:
    """Resample to ``target_length`` samples via zero-padding/truncation in frequency.

    This is the textbook band-limited (sinc) interpolator: take the FFT,
    extend or truncate the spectrum to the new length, take the inverse
    FFT.  For a signal sampled above its Nyquist rate, up-sampling with
    this operator recovers the original waveform exactly (Figure 6's "L2
    distance ... is 0" claim).
    """
    n = len(series)
    if target_length < 1:
        raise ValueError("target_length must be >= 1")
    if n == 0:
        raise ValueError("cannot resample an empty series")
    if target_length == n:
        return series
    spectrum = np.fft.rfft(series.values)
    target_bins = target_length // 2 + 1
    new_spectrum = np.zeros(target_bins, dtype=np.complex128)
    copy = min(len(spectrum), target_bins)
    new_spectrum[:copy] = spectrum[:copy]
    # When up-sampling an even-length signal, the original Nyquist bin
    # holds the folded sum of +/- Nyquist components; splitting it in two
    # keeps the interpolation real-valued and energy-preserving.
    if target_length > n and n % 2 == 0 and copy == len(spectrum):
        new_spectrum[copy - 1] *= 0.5
    values = np.fft.irfft(new_spectrum, n=target_length) * (target_length / n)
    new_interval = series.duration / target_length
    return TimeSeries(values, new_interval, start_time=series.start_time, name=series.name)


def fourier_resample_matrix(values: np.ndarray, target_length: int) -> np.ndarray:
    """Row-wise :func:`fourier_resample` over a ``(rows, n)`` matrix.

    One ``rfft``/``irfft`` pair for the whole batch instead of one per
    trace; every row's result equals ``fourier_resample`` on that row
    (same transform lengths, same Nyquist-bin handling), which is what
    lets the batched policy evaluation reproduce the scalar path.
    """
    if values.ndim != 2:
        raise ValueError(f"values must be a (rows, n) matrix, got shape {values.shape}")
    n = values.shape[1]
    if target_length < 1:
        raise ValueError("target_length must be >= 1")
    if n == 0:
        raise ValueError("cannot resample empty rows")
    if target_length == n:
        return values
    spectrum = np.fft.rfft(values, axis=-1)
    target_bins = target_length // 2 + 1
    new_spectrum = np.zeros((values.shape[0], target_bins), dtype=np.complex128)
    copy = min(spectrum.shape[1], target_bins)
    new_spectrum[:, :copy] = spectrum[:, :copy]
    # Same even-length Nyquist-bin split as the scalar interpolator: the
    # folded +/- Nyquist components are halved so the up-sampled rows stay
    # real-valued and energy-preserving.
    if target_length > n and n % 2 == 0 and copy == spectrum.shape[1]:
        new_spectrum[:, copy - 1] *= 0.5
    return np.fft.irfft(new_spectrum, n=target_length, axis=-1) * (target_length / n)


def linear_resample(series: TimeSeries, target_rate: float) -> TimeSeries:
    """Resample onto a new regular grid by linear interpolation.

    Cheaper and more robust to edge effects than Fourier interpolation but
    not band-limited; used by the pipeline simulator when an application
    only needs approximate values between polls.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if len(series) == 0:
        raise ValueError("cannot resample an empty series")
    new_interval = 1.0 / target_rate
    n = max(int(round(series.duration / new_interval)), 1)
    new_times = series.start_time + np.arange(n) * new_interval
    old_times = series.times()
    values = np.interp(new_times, old_times, series.values)
    return TimeSeries(values, new_interval, start_time=series.start_time, name=series.name)
