"""Reconstruction-quality metrics.

The paper summarises reconstruction quality with the L2 distance between
the original and reconstructed traces (Figure 6).  Benchmarks and the
pipeline simulator additionally report normalised and per-sample error
metrics so results are comparable across metrics with very different
scales (temperatures in tens of degrees vs. drop counters near zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.timeseries import TimeSeries

__all__ = [
    "ReconstructionError",
    "l2_distance",
    "rmse",
    "nrmse",
    "max_abs_error",
    "mean_abs_error",
    "compare",
    "compare_batch",
]


def _aligned_values(original: TimeSeries, reconstructed: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
    """Return value arrays trimmed to a common length.

    Fourier resampling can produce a reconstruction one sample shorter or
    longer than the original when the decimation factor does not divide the
    trace length; comparing the overlapping prefix is the standard
    convention and never hides more than ``factor`` samples.
    """
    n = min(len(original), len(reconstructed))
    if n == 0:
        raise ValueError("cannot compare empty series")
    return original.values[:n], reconstructed.values[:n]


def l2_distance(original: TimeSeries, reconstructed: TimeSeries) -> float:
    """Euclidean distance between the two traces (the paper's Figure 6 metric)."""
    a, b = _aligned_values(original, reconstructed)
    return float(np.linalg.norm(a - b))


def rmse(original: TimeSeries, reconstructed: TimeSeries) -> float:
    """Root-mean-square error per sample."""
    a, b = _aligned_values(original, reconstructed)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def nrmse(original: TimeSeries, reconstructed: TimeSeries) -> float:
    """RMSE normalised by the original's peak-to-peak range.

    Returns 0 for a perfect reconstruction and ``nan`` when the original
    trace is constant (the range is zero, so normalisation is undefined --
    but then rmse itself is already interpretable).
    """
    a, b = _aligned_values(original, reconstructed)
    value_range = float(np.max(a) - np.min(a))
    error = float(np.sqrt(np.mean((a - b) ** 2)))
    if value_range == 0:
        return 0.0 if error == 0 else float("nan")
    return error / value_range


def max_abs_error(original: TimeSeries, reconstructed: TimeSeries) -> float:
    """Largest per-sample absolute deviation."""
    a, b = _aligned_values(original, reconstructed)
    return float(np.max(np.abs(a - b)))


def mean_abs_error(original: TimeSeries, reconstructed: TimeSeries) -> float:
    """Mean per-sample absolute deviation."""
    a, b = _aligned_values(original, reconstructed)
    return float(np.mean(np.abs(a - b)))


@dataclass(frozen=True)
class ReconstructionError:
    """Bundle of all reconstruction-quality metrics for one comparison."""

    l2: float
    rmse: float
    nrmse: float
    max_abs: float
    mean_abs: float
    samples_compared: int

    def is_exact(self, tolerance: float = 1e-9) -> bool:
        """True when the reconstruction matches the original to within ``tolerance``."""
        return self.max_abs <= tolerance

    def __str__(self) -> str:
        return (f"L2={self.l2:.4g} RMSE={self.rmse:.4g} NRMSE={self.nrmse:.4g} "
                f"max|e|={self.max_abs:.4g} over {self.samples_compared} samples")


def compare_batch(original: np.ndarray,
                  reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise ``(nrmse, max_abs)`` between two ``(rows, n)`` value matrices.

    The batched counterpart of :func:`compare` for the policy pipeline's
    hot loop: rows are trimmed to the common column count (the same
    overlapping-prefix convention as :func:`_aligned_values`) and the
    normalisation follows :func:`nrmse` exactly -- a constant row yields 0
    for a perfect reconstruction and ``nan`` otherwise.
    """
    if original.ndim != 2 or reconstructed.ndim != 2:
        raise ValueError("compare_batch expects (rows, n) matrices")
    if original.shape[0] != reconstructed.shape[0]:
        raise ValueError("row counts differ")
    n = min(original.shape[1], reconstructed.shape[1])
    if n == 0:
        raise ValueError("cannot compare empty series")
    a = original[:, :n]
    diff = a - reconstructed[:, :n]
    rmse_rows = np.sqrt(np.mean(diff ** 2, axis=1))
    value_range = np.max(a, axis=1) - np.min(a, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        nrmse_rows = np.where(
            value_range == 0,
            np.where(rmse_rows == 0, 0.0, np.nan),
            rmse_rows / np.where(value_range == 0, 1.0, value_range))
    max_abs_rows = np.max(np.abs(diff), axis=1)
    return nrmse_rows, max_abs_rows


def compare(original: TimeSeries, reconstructed: TimeSeries) -> ReconstructionError:
    """Compute every reconstruction metric at once."""
    a, b = _aligned_values(original, reconstructed)
    diff = a - b
    value_range = float(np.max(a) - np.min(a))
    rmse_value = float(np.sqrt(np.mean(diff ** 2)))
    if value_range == 0:
        nrmse_value = 0.0 if rmse_value == 0 else float("nan")
    else:
        nrmse_value = rmse_value / value_range
    return ReconstructionError(
        l2=float(np.linalg.norm(diff)),
        rmse=rmse_value,
        nrmse=nrmse_value,
        max_abs=float(np.max(np.abs(diff))),
        mean_abs=float(np.mean(np.abs(diff))),
        samples_compared=int(a.shape[0]),
    )
