"""Dynamic (adaptive) sampling controller (Section 4.2).

The strawman the paper proposes:

* Initially the Nyquist rate of the signal is unknown, so the controller is
  in **probe** mode: it samples at two rates (the dual-frequency trick of
  §4.1) and, while aliasing is detected, multiplicatively increases the
  rate.
* Once aliasing is no longer detected it estimates the Nyquist rate with
  the §3.2 method and settles in **steady** mode at that rate (plus a
  configurable headroom).
* If the signal quiets down, the controller adaptively decreases the rate;
  if aliasing re-appears it ramps back up, using a *memory* of previously
  observed maxima to re-ramp quickly ("we can even 'remember' previous
  maximum Nyquist rates to ramp up more quickly in the future").

The controller operates on successive time windows of the underlying
signal.  In the library the "underlying signal" is a high-rate reference
trace (either synthetic telemetry or an over-sampled production-style
trace); the controller only ever *reads* the samples it would actually
have collected at its chosen probe rates, so its cost accounting reflects a
real deployment.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from ..signals.timeseries import TimeSeries
from .aliasing import AliasingVerdict, DualRateAliasingDetector
from .nyquist import NyquistEstimate, NyquistEstimator
from .resampling import resample_to_rate

__all__ = [
    "ControllerMode",
    "ControllerConfig",
    "WindowDecision",
    "ModeTransition",
    "AdaptiveRun",
    "AdaptiveSamplingController",
    "adaptive_sample",
]


class ControllerMode(enum.Enum):
    """Operating mode of the adaptive controller."""

    PROBE = "probe"
    STEADY = "steady"


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs of the adaptive controller (paper-guided defaults).

    Attributes
    ----------
    initial_rate:
        Sampling rate (Hz) the controller starts probing at.
    min_rate / max_rate:
        Hard bounds on the rate the controller may choose.  ``max_rate``
        defaults to infinity and is clamped to the reference trace's rate
        at run time (you cannot sample faster than the signal exists).
    probe_multiplier:
        Multiplicative increase applied while aliasing persists (§4.2
        "multiplicatively increase the measurement rate").
    decrease_factor:
        Multiplicative decrease applied in steady mode when the estimated
        Nyquist rate falls well below the current rate.
    headroom:
        Safety margin (>= 1) applied to the estimated Nyquist rate when
        settling ("maintaining ample headroom may be helpful").
    memory_decay:
        Per-window decay applied to the remembered maximum Nyquist rate;
        1.0 means "never forget", 0 disables memory.
    dual_rate_ratio:
        f1/f2 ratio used by the aliasing detector.
    energy_fraction:
        Energy threshold handed to the Nyquist estimator.
    aliasing_check_interval:
        In steady mode, run the (costly) dual-frequency aliasing check only
        every this many windows; in between, only the primary stream is
        collected and aliasing suspicion comes from the estimator itself.
        §4.1 notes the dual stream "roughly doubles measurement cost", so
        checking periodically rather than continuously is how a deployment
        keeps the net saving.  Set to 1 to check every window.
    """

    initial_rate: float = 1.0 / 300.0
    min_rate: float = 1.0 / 86400.0
    max_rate: float = math.inf
    probe_multiplier: float = 2.0
    decrease_factor: float = 0.5
    headroom: float = 1.2
    memory_decay: float = 0.9
    dual_rate_ratio: float = 1.6
    aliasing_threshold: float = 0.1
    energy_fraction: float = 0.99
    aliasing_check_interval: int = 4

    def __post_init__(self) -> None:
        if self.initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")
        if self.max_rate <= self.min_rate:
            raise ValueError("max_rate must exceed min_rate")
        if self.probe_multiplier <= 1:
            raise ValueError("probe_multiplier must be > 1")
        if not 0 < self.decrease_factor < 1:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.headroom < 1:
            raise ValueError("headroom must be >= 1")
        if not 0 <= self.memory_decay <= 1:
            raise ValueError("memory_decay must be in [0, 1]")
        if self.aliasing_check_interval < 1:
            raise ValueError("aliasing_check_interval must be >= 1")


@dataclass(frozen=True)
class WindowDecision:
    """What the controller did for one time window."""

    window_start: float
    window_end: float
    mode: ControllerMode
    sampling_rate: float
    samples_collected: int
    aliased: bool
    aliasing_discrepancy: float
    nyquist_estimate: float
    next_rate: float

    @property
    def window_duration(self) -> float:
        return self.window_end - self.window_start


@dataclass(frozen=True)
class ModeTransition:
    """One probe/steady mode change of the adaptive controller.

    Emitted by :meth:`AdaptiveSamplingController.run` whenever processing
    a window leaves the controller in a different mode than it entered
    with.  The transition takes effect at the window's *end* (the next
    window is the first sampled under the new mode), so ``time`` is the
    earliest instant the behaviour change is observable.  These are the
    ground truth the scenario matrix measures re-probe latency against --
    directly, instead of inferring mode changes from nrmse drift.
    """

    time: float
    from_mode: ControllerMode
    to_mode: ControllerMode
    window_start: float
    window_end: float

    @property
    def kind(self) -> str:
        """``"re-probe"`` (steady -> probe) or ``"settle"`` (probe -> steady)."""
        return "re-probe" if self.to_mode is ControllerMode.PROBE else "settle"


@dataclass
class AdaptiveRun:
    """Full record of an adaptive-sampling run over a reference trace."""

    reference: TimeSeries
    decisions: list[WindowDecision] = field(default_factory=list)
    collected: list[TimeSeries] = field(default_factory=list)
    transitions: list[ModeTransition] = field(default_factory=list)

    @property
    def total_samples_collected(self) -> int:
        """Samples the adaptive system actually collected (its cost)."""
        return sum(decision.samples_collected for decision in self.decisions)

    @property
    def baseline_samples(self) -> int:
        """Samples the existing (full-rate) system collects over the same span."""
        return len(self.reference)

    @property
    def cost_reduction(self) -> float:
        """Factor by which the adaptive system reduces sample count."""
        collected = self.total_samples_collected
        if collected == 0:
            return float("inf")
        return self.baseline_samples / collected

    def inferred_rates(self) -> list[tuple[float, float]]:
        """(window_start, inferred Nyquist rate) pairs -- the Figure 7 series."""
        return [(decision.window_start, decision.nyquist_estimate)
                for decision in self.decisions]

    def sampling_rates(self) -> list[tuple[float, float]]:
        """(window_start, rate the controller sampled at) pairs."""
        return [(decision.window_start, decision.sampling_rate)
                for decision in self.decisions]

    def reprobe_transitions(self) -> list[ModeTransition]:
        """The steady -> probe transitions (aliasing re-detected mid-run)."""
        return [t for t in self.transitions if t.kind == "re-probe"]

    def collected_series(self) -> TimeSeries:
        """All collected samples concatenated into one (possibly uneven-rate) view.

        The concatenation keeps the coarsest common interval so downstream
        code can reconstruct; windows sampled at different rates are first
        aligned to the finest interval used anywhere in the run.
        """
        if not self.collected:
            return TimeSeries(np.empty(0), self.reference.interval,
                              self.reference.start_time, self.reference.name)
        finest = min(chunk.interval for chunk in self.collected if len(chunk))
        pieces: list[np.ndarray] = []
        for chunk in self.collected:
            if len(chunk) == 0:
                continue
            repeat = max(int(round(chunk.interval / finest)), 1)
            pieces.append(np.repeat(chunk.values, repeat))
        values = np.concatenate(pieces) if pieces else np.empty(0)
        return TimeSeries(values, finest, self.reference.start_time, self.reference.name)


class AdaptiveSamplingController:
    """State machine implementing the §4.2 adaptive sampling strawman."""

    def __init__(self, config: ControllerConfig | None = None,
                 estimator: NyquistEstimator | None = None,
                 detector: DualRateAliasingDetector | None = None) -> None:
        self.config = config or ControllerConfig()
        # The controller estimates over short windows, where a slow trend
        # that does not complete a cycle leaks energy across the spectrum
        # and inflates the estimate; detrending plus a Hann taper keeps the
        # windowed estimates honest (see NyquistEstimator docs).  The
        # strict "all bins needed" aliasing rule (1.0) is kept here: on
        # short windows the calibrated survey default (0.9) refuses too
        # eagerly and would boost the rate on every noisy window, and the
        # controller already carries its own aliasing safety net (the
        # dual-rate detector).
        self.estimator = estimator or NyquistEstimator(
            energy_fraction=self.config.energy_fraction,
            detrend=True, window="hann", aliased_band_fraction=1.0)
        self.detector = detector or DualRateAliasingDetector(
            rate_ratio=self.config.dual_rate_ratio,
            threshold=self.config.aliasing_threshold)
        self.mode = ControllerMode.PROBE
        self.current_rate = self.config.initial_rate
        self.remembered_max_rate = 0.0
        self._windows_since_check = 0
        self._floor_rate = self.config.min_rate

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return the controller to its initial state (keeps configuration)."""
        self.mode = ControllerMode.PROBE
        self.current_rate = self.config.initial_rate
        self.remembered_max_rate = 0.0
        self._windows_since_check = 0
        self._floor_rate = self.config.min_rate

    def minimum_viable_rate(self, window_duration: float) -> float:
        """Lowest rate at which one window still feeds the estimator and detector.

        Both the Nyquist estimator and the dual-frequency detector need a
        minimum number of samples to say anything; a controller that drops
        below ``min_samples / window_duration`` blinds its own safety net,
        so :meth:`run` never lets the rate fall below this floor.
        """
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        needed = max(self.estimator.min_samples, self.detector.min_samples, 4)
        return needed / window_duration

    def _clamp(self, rate: float, ceiling: float) -> float:
        floor = max(self.config.min_rate, self._floor_rate)
        return float(min(max(rate, floor), min(self.config.max_rate, ceiling)))

    def _remember(self, rate: float) -> None:
        self.remembered_max_rate = max(self.remembered_max_rate * self.config.memory_decay,
                                       rate)

    # ------------------------------------------------------------------
    def process_window(self, window: TimeSeries) -> WindowDecision:
        """Decide what to collect for one window of the underlying signal.

        ``window`` is the portion of the (high-rate) reference signal that
        exists during this window; the controller only "sees" the samples
        it chooses to collect from it.
        """
        if len(window) < 2:
            raise ValueError("window must contain at least two reference samples")
        ceiling = window.sampling_rate
        rate = self._clamp(self.current_rate, ceiling)

        # The dual-frequency check doubles measurement cost (§4.1), so in
        # steady mode it only runs every `aliasing_check_interval` windows;
        # probe mode always runs it because that is what probing is.
        run_check = (self.mode is ControllerMode.PROBE
                     or self._windows_since_check + 1 >= self.config.aliasing_check_interval)

        slow_rate, fast_rate = self.detector.probe_rates(rate)
        fast_rate = min(fast_rate, ceiling)
        slow_probe = resample_to_rate(window, slow_rate, anti_alias=False)

        if run_check:
            fast_probe = resample_to_rate(window, fast_rate, anti_alias=False)
            verdict = self.detector.check_samples(slow_probe, fast_probe)
            samples_collected = len(slow_probe) + len(fast_probe)
            estimation_input = fast_probe
            self._windows_since_check = 0
        else:
            verdict = AliasingVerdict(False, 0.0, self.detector.threshold,
                                      slow_rate, fast_rate, slow_rate / 2.0)
            samples_collected = len(slow_probe)
            estimation_input = slow_probe
            self._windows_since_check += 1

        estimate = self.estimator.estimate(estimation_input)
        nyquist_rate = estimate.nyquist_rate if estimate.reliable else float("nan")

        next_rate = self._next_rate(rate, verdict, estimate, ceiling)
        decision = WindowDecision(
            window_start=window.start_time,
            window_end=window.end_time,
            mode=self.mode,
            sampling_rate=rate,
            samples_collected=samples_collected,
            aliased=verdict.aliased,
            aliasing_discrepancy=verdict.discrepancy,
            nyquist_estimate=nyquist_rate,
            next_rate=next_rate,
        )
        self.current_rate = next_rate
        return decision

    def _probe_toward(self, proposed: float, rate: float, ceiling: float) -> float:
        """Enter probe mode toward ``proposed`` -- unless we are already pinned.

        When the clamped proposal cannot exceed the current rate the
        controller sits at its ceiling (``max_rate`` or the reference
        rate): there is no faster rate left to probe, so paying the
        dual-stream cost every window buys nothing.  Settle instead; the
        periodic steady-mode aliasing check keeps watching for change.
        Without this, a genuinely broadband metric keeps the controller
        in probe mode forever and its cost *exceeds* the fixed baseline
        it is supposed to undercut.
        """
        clamped = self._clamp(proposed, ceiling)
        if clamped <= rate:
            self.mode = ControllerMode.STEADY
            return clamped
        self.mode = ControllerMode.PROBE
        return clamped

    def _next_rate(self, rate: float, verdict: AliasingVerdict,
                   estimate: NyquistEstimate, ceiling: float) -> float:
        """Apply the §4.2 adaptation rules and return the next window's rate."""
        config = self.config
        if verdict.aliased or (estimate.reliable and estimate.nyquist_rate > rate):
            # Under-sampling detected: multiplicative increase, jump-started
            # by the remembered maximum if we have one.
            proposed = rate * config.probe_multiplier
            if self.remembered_max_rate > proposed:
                proposed = self.remembered_max_rate
            return self._probe_toward(proposed, rate, ceiling)

        if not estimate.reliable:
            if self.mode is ControllerMode.STEADY and estimate.reason == "trace too short":
                # We already settled once and this window simply holds too
                # few samples at the (low) steady rate to re-estimate; hold
                # the rate rather than needlessly ramping back up.
                return self._clamp(rate, ceiling)
            # Still probing and nothing observable yet (or the probe itself
            # looks aliased): keep increasing until the Nyquist rate becomes
            # observable.  The remembered maximum is only used when aliasing
            # is positively detected, not for mere lack of data.
            return self._probe_toward(rate * config.probe_multiplier, rate, ceiling)

        # Clean estimate available: settle at Nyquist rate plus headroom.
        self.mode = ControllerMode.STEADY
        target = estimate.nyquist_rate * config.headroom
        self._remember(target)
        if target < rate * config.decrease_factor:
            # The signal has quieted down a lot; decrease gradually rather
            # than jumping straight to the target so a transient lull does
            # not leave us wide open to aliasing.
            return self._clamp(rate * config.decrease_factor, ceiling)
        return self._clamp(target, ceiling)

    # ------------------------------------------------------------------
    def run(self, reference: TimeSeries, window_duration: float,
            step: float | None = None) -> AdaptiveRun:
        """Run the controller over ``reference`` in windows of ``window_duration`` seconds.

        ``step`` defaults to ``window_duration`` (non-overlapping windows),
        which is how the controller would run in production; Figure 7 uses
        an overlapping window (6 h window, 5 min step) purely for analysis,
        which :mod:`repro.core.windowed` provides.
        """
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        step = window_duration if step is None else step
        if step <= 0:
            raise ValueError("step must be positive")
        self._floor_rate = self.minimum_viable_rate(window_duration)
        run = AdaptiveRun(reference=reference)
        for window in reference.iter_windows(window_duration, step):
            if len(window) < 2:
                continue
            mode_before = self.mode
            decision = self.process_window(window)
            run.decisions.append(decision)
            if self.mode is not mode_before:
                run.transitions.append(ModeTransition(
                    time=decision.window_end, from_mode=mode_before,
                    to_mode=self.mode, window_start=decision.window_start,
                    window_end=decision.window_end))
            collected = resample_to_rate(window, decision.sampling_rate, anti_alias=False)
            run.collected.append(collected)
        return run


def adaptive_sample(reference: TimeSeries, window_duration: float,
                    config: ControllerConfig | None = None) -> AdaptiveRun:
    """Convenience wrapper: run a fresh controller over ``reference``."""
    controller = AdaptiveSamplingController(config=config)
    return controller.run(reference, window_duration)
