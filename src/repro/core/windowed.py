"""Moving-window Nyquist inference (Figure 7).

Figure 7 of the paper shows "the inferred Nyquist rates over time for the
signal depicted in Figure 6 ... a step of 5 minutes for the moving window
and a window size of 6 hours".  :func:`windowed_nyquist_rates` produces
exactly that series for any trace; :func:`rate_stability` summarises how
much the inferred rate moves, which is what motivates dynamic sampling in
the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.timeseries import TimeSeries
from .nyquist import NyquistEstimate, NyquistEstimator

__all__ = [
    "WindowedEstimate",
    "windowed_nyquist_rates",
    "rate_stability",
]

#: The paper's Figure 7 parameters.
FIGURE7_WINDOW_SECONDS: float = 6 * 3600.0
FIGURE7_STEP_SECONDS: float = 5 * 60.0


@dataclass(frozen=True)
class WindowedEstimate:
    """Nyquist estimate for one position of the moving window."""

    window_start: float
    window_end: float
    estimate: NyquistEstimate

    @property
    def nyquist_rate(self) -> float:
        """The inferred Nyquist rate (nan when unreliable)."""
        return self.estimate.nyquist_rate if self.estimate.reliable else float("nan")


def windowed_nyquist_rates(series: TimeSeries,
                           window_seconds: float = FIGURE7_WINDOW_SECONDS,
                           step_seconds: float = FIGURE7_STEP_SECONDS,
                           estimator: NyquistEstimator | None = None) -> list[WindowedEstimate]:
    """Estimate the Nyquist rate in every position of a sliding window.

    Parameters default to the paper's Figure 7 settings (6-hour window,
    5-minute step).  Windows containing fewer samples than the estimator's
    minimum are skipped (they would only produce unreliable estimates).
    """
    estimator = estimator or NyquistEstimator()
    results: list[WindowedEstimate] = []
    for window in series.iter_windows(window_seconds, step_seconds):
        if len(window) < estimator.min_samples:
            continue
        estimate = estimator.estimate(window)
        results.append(WindowedEstimate(window.start_time, window.end_time, estimate))
    return results


def rate_stability(estimates: list[WindowedEstimate]) -> dict[str, float]:
    """Summarise how much the inferred Nyquist rate varies over time.

    Returns min/max/mean/std of the reliable estimates plus the max/min
    ratio ("dynamic range"); a large dynamic range is the paper's argument
    for adapting the sampling rate instead of fixing it once.
    """
    rates = np.array([entry.nyquist_rate for entry in estimates
                      if not np.isnan(entry.nyquist_rate)])
    if rates.size == 0:
        return {"count": 0.0, "min": float("nan"), "max": float("nan"),
                "mean": float("nan"), "std": float("nan"), "dynamic_range": float("nan")}
    return {
        "count": float(rates.size),
        "min": float(np.min(rates)),
        "max": float(np.max(rates)),
        "mean": float(np.mean(rates)),
        "std": float(np.std(rates)),
        "dynamic_range": float(np.max(rates) / np.min(rates)) if np.min(rates) > 0 else float("inf"),
    }
