"""Moving-window Nyquist inference (Figure 7).

Figure 7 of the paper shows "the inferred Nyquist rates over time for the
signal depicted in Figure 6 ... a step of 5 minutes for the moving window
and a window size of 6 hours".  :func:`windowed_nyquist_rates` produces
exactly that series for any trace; :func:`rate_stability` summarises how
much the inferred rate moves, which is what motivates dynamic sampling in
the first place.

Two interchangeable backends drive the sweep:

* ``"batched"`` (the default) gathers every window position into one
  ``(num_windows, window_len)`` matrix with
  :func:`numpy.lib.stride_tricks.sliding_window_view` and feeds it to
  :meth:`NyquistEstimator.estimate_batch` -- one ``rfft`` for the whole
  sweep instead of one per window, which is what makes continuous
  fleet-wide re-estimation (the Figure 7 loop run on every pair, forever)
  tractable.  Window positions whose sample count differs (ragged edges
  from non-integer window/step-to-interval ratios) are grouped by length
  and batched per group, so every position the scalar path analyses is
  analysed here too.
* ``"scalar"`` estimates one window at a time via
  :meth:`NyquistEstimator.estimate`; it is kept as the reference
  implementation and the two backends produce equivalent series
  (enforced by ``tests/core/test_windowed.py`` and timed by
  ``benchmarks/bench_fig7_windowed_rates.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..signals.timeseries import TimeSeries
from .nyquist import NyquistEstimate, NyquistEstimator

__all__ = [
    "WindowedEstimate",
    "windowed_nyquist_rates",
    "rate_stability",
    "WindowedBackend",
]

WindowedBackend = Literal["batched", "scalar"]

#: The paper's Figure 7 parameters.
FIGURE7_WINDOW_SECONDS: float = 6 * 3600.0
FIGURE7_STEP_SECONDS: float = 5 * 60.0


@dataclass(frozen=True)
class WindowedEstimate:
    """Nyquist estimate for one position of the moving window."""

    window_start: float
    window_end: float
    estimate: NyquistEstimate

    @property
    def nyquist_rate(self) -> float:
        """The inferred Nyquist rate (nan when unreliable)."""
        return self.estimate.nyquist_rate if self.estimate.reliable else float("nan")


def _windowed_rates_batched(series: TimeSeries, window_seconds: float, step_seconds: float,
                            estimator: NyquistEstimator) -> list[WindowedEstimate]:
    """All window positions as length-grouped matrices, one estimate_batch each.

    Window positions come from :meth:`TimeSeries.iter_window_bounds` --
    the same source the scalar ``iter_windows`` loop consumes -- so both
    backends analyse byte-for-byte the same sample slices; positions
    shorter than the estimator's minimum are skipped, like the scalar
    loop does.
    """
    bounds = [(first, stop - first)
              for first, stop in series.iter_window_bounds(window_seconds, step_seconds)
              if stop - first >= estimator.min_samples]
    if not bounds:
        return []
    by_length: dict[int, list[tuple[int, int]]] = {}
    for slot, (first, length) in enumerate(bounds):
        by_length.setdefault(length, []).append((slot, first))

    interval = series.interval
    start_time = series.start_time
    results: list[WindowedEstimate | None] = [None] * len(bounds)
    for length, entries in by_length.items():
        starts = np.fromiter((first for _, first in entries), dtype=np.intp,
                             count=len(entries))
        # One strided view over the trace; fancy-indexing the window start
        # offsets materialises exactly the (num_windows, window_len)
        # matrix the batch engine wants, without a Python loop per window.
        matrix = sliding_window_view(series.values, length)[starts]
        estimates = estimator.estimate_batch(matrix, interval)
        for (slot, first), estimate in zip(entries, estimates):
            window_start = start_time + first * interval
            results[slot] = WindowedEstimate(window_start, window_start + length * interval,
                                             estimate)
    return results  # type: ignore[return-value]


def windowed_nyquist_rates(series: TimeSeries,
                           window_seconds: float = FIGURE7_WINDOW_SECONDS,
                           step_seconds: float = FIGURE7_STEP_SECONDS,
                           estimator: NyquistEstimator | None = None,
                           backend: WindowedBackend = "batched") -> list[WindowedEstimate]:
    """Estimate the Nyquist rate in every position of a sliding window.

    Parameters default to the paper's Figure 7 settings (6-hour window,
    5-minute step).  Windows containing fewer samples than the estimator's
    minimum are skipped (they would only produce unreliable estimates).

    ``backend="batched"`` (the default) runs the whole sweep through the
    batched spectral engine -- all equal-length window positions become one
    matrix and one ``rfft`` -- and is equivalent to the per-window
    ``"scalar"`` reference loop.
    """
    if backend not in ("batched", "scalar"):
        raise ValueError(f"unknown backend {backend!r}; choose 'batched' or 'scalar'")
    estimator = estimator or NyquistEstimator()
    if backend == "batched":
        return _windowed_rates_batched(series, window_seconds, step_seconds, estimator)
    results: list[WindowedEstimate] = []
    for window in series.iter_windows(window_seconds, step_seconds):
        if len(window) < estimator.min_samples:
            continue
        estimate = estimator.estimate(window)
        results.append(WindowedEstimate(window.start_time, window.end_time, estimate))
    return results


def rate_stability(estimates: list[WindowedEstimate]) -> dict[str, float]:
    """Summarise how much the inferred Nyquist rate varies over time.

    Returns min/max/mean/std of the reliable estimates plus the max/min
    ratio ("dynamic range"); a large dynamic range is the paper's argument
    for adapting the sampling rate instead of fixing it once.
    """
    rates = np.array([entry.nyquist_rate for entry in estimates
                      if not np.isnan(entry.nyquist_rate)])
    if rates.size == 0:
        return {"count": 0.0, "min": float("nan"), "max": float("nan"),
                "mean": float("nan"), "std": float("nan"), "dynamic_range": float("nan")}
    return {
        "count": float(rates.size),
        "min": float(np.min(rates)),
        "max": float(np.max(rates)),
        "mean": float(np.mean(rates)),
        "std": float(np.std(rates)),
        "dynamic_range": float(np.max(rates) / np.min(rates)) if np.min(rates) > 0 else float("inf"),
    }
