"""Multivariate signals (Section 6, "Multivariate signals").

Applications often consume several metrics jointly (e.g. link utilisation
*and* drop counts) and care about their correlation.  The paper observes
that "as long as we sample each individual signal at a rate higher than its
Nyquist rate, we can recover the original signal and preserve any
correlations", but warns that per-signal adaptation can interact badly.

This module provides the per-component analysis, a joint-rate selector
(the conservative "sample everything at the max component rate" policy and
the per-component policy), and a correlation-preservation check that
verifies the Section 6 claim empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..signals.timeseries import TimeSeries
from .nyquist import NyquistEstimate, NyquistEstimator
from .reconstruction import nyquist_round_trip

__all__ = [
    "MultivariateEstimate",
    "estimate_joint_nyquist",
    "joint_sampling_rate",
    "correlation_matrix",
    "correlation_preservation",
]


@dataclass(frozen=True)
class MultivariateEstimate:
    """Per-component Nyquist estimates for a bundle of co-monitored signals."""

    components: dict[str, NyquistEstimate]

    @property
    def max_nyquist_rate(self) -> float:
        """The joint (conservative) Nyquist rate: the max over components.

        Sampling the whole bundle at this rate preserves every component,
        and therefore every pairwise correlation.
        Returns ``nan`` if no component has a reliable estimate.
        """
        rates = [estimate.nyquist_rate for estimate in self.components.values()
                 if estimate.reliable]
        return max(rates) if rates else float("nan")

    @property
    def per_component_rates(self) -> dict[str, float]:
        """Each component's own Nyquist rate (nan when unreliable)."""
        return {name: (estimate.nyquist_rate if estimate.reliable else float("nan"))
                for name, estimate in self.components.items()}

    def savings_vs_uniform(self, current_rate: float) -> dict[str, float]:
        """Per-component reduction ratios achievable versus one shared current rate."""
        ratios = {}
        for name, estimate in self.components.items():
            if estimate.reliable and estimate.nyquist_rate > 0:
                ratios[name] = current_rate / estimate.nyquist_rate
            else:
                ratios[name] = float("nan")
        return ratios


def estimate_joint_nyquist(signals: Mapping[str, TimeSeries],
                           estimator: NyquistEstimator | None = None) -> MultivariateEstimate:
    """Estimate the Nyquist rate of every component of a multivariate signal."""
    if not signals:
        raise ValueError("signals mapping must not be empty")
    estimator = estimator or NyquistEstimator()
    return MultivariateEstimate({name: estimator.estimate(series)
                                 for name, series in signals.items()})


def joint_sampling_rate(signals: Mapping[str, TimeSeries],
                        policy: str = "max",
                        estimator: NyquistEstimator | None = None) -> float:
    """Pick one sampling rate for a bundle of signals.

    ``policy="max"`` (default) returns the maximum per-component Nyquist
    rate -- the conservative joint rate that preserves all components and
    their correlations.  ``policy="independent"`` returns the *mean* of the
    per-component rates, representing a system that samples each component
    at its own rate (the average is the bundle's per-signal cost).
    """
    estimate = estimate_joint_nyquist(signals, estimator=estimator)
    rates = [value for value in estimate.per_component_rates.values()
             if not np.isnan(value)]
    if not rates:
        return float("nan")
    if policy == "max":
        return float(max(rates))
    if policy == "independent":
        return float(np.mean(rates))
    raise ValueError(f"unknown policy {policy!r}")


def correlation_matrix(signals: Sequence[TimeSeries]) -> np.ndarray:
    """Pearson correlation matrix of equal-rate, equal-length signals."""
    if not signals:
        raise ValueError("need at least one signal")
    n = min(len(series) for series in signals)
    if n < 2:
        raise ValueError("signals must have at least two samples")
    matrix = np.vstack([series.values[:n] for series in signals])
    # np.corrcoef returns nan rows for constant signals; replace with 0
    # correlation (a constant signal is uncorrelated with everything) but
    # keep the unit diagonal.
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(matrix)
    corr = np.nan_to_num(corr, nan=0.0)
    np.fill_diagonal(corr, 1.0)
    return corr


def correlation_preservation(signals: Mapping[str, TimeSeries],
                             estimator: NyquistEstimator | None = None,
                             headroom: float = 1.2) -> dict[str, float]:
    """Empirically verify the Section 6 claim about preserved correlations.

    Every component is independently down-sampled to its own Nyquist rate
    (plus a small headroom -- sampling a tone at *exactly* twice its
    frequency is the theorem's degenerate boundary case) and reconstructed;
    the function returns the largest absolute deviation
    between the original and reconstructed pairwise correlations, along
    with the mean reconstruction NRMSE, so callers can confirm that
    per-component Nyquist sampling keeps the joint structure intact.
    """
    if len(signals) < 2:
        raise ValueError("need at least two signals to talk about correlations")
    estimator = estimator or NyquistEstimator()
    names = list(signals)
    originals = [signals[name] for name in names]
    reconstructions = []
    nrmse_values = []
    for series in originals:
        result = nyquist_round_trip(series, estimator=estimator, headroom=headroom)
        reconstructions.append(result.reconstructed)
        nrmse_values.append(result.error.nrmse)
    original_corr = correlation_matrix(originals)
    reconstructed_corr = correlation_matrix(reconstructions)
    deviation = float(np.max(np.abs(original_corr - reconstructed_corr)))
    return {
        "max_correlation_deviation": deviation,
        "mean_nrmse": float(np.nanmean(nrmse_values)),
        "components": float(len(names)),
    }
