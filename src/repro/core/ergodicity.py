"""Ergodicity analysis (Section 6, "Beyond Nyquist").

The paper asks: are datacenter metrics *ergodic* -- do the statistics of a
single device observed for a long time match the statistics of the whole
fleet observed at one instant?  Operators implicitly assume they are every
time they canary a change on a handful of machines.  This module provides:

* :func:`ensemble_statistics` / :func:`time_statistics` -- the two kinds of
  averages being compared;
* :func:`ergodicity_gap` -- how far apart they are, as a function of the
  observation period (the paper's "how long of an observation period is
  required?");
* :func:`minimum_canary_size` -- the smallest sample of devices whose
  ensemble statistics track the full fleet to a requested tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..signals.timeseries import TimeSeries

__all__ = [
    "ErgodicityReport",
    "ensemble_statistics",
    "time_statistics",
    "ergodicity_gap",
    "ergodicity_report",
    "minimum_canary_size",
]


def _stack(fleet: Sequence[TimeSeries]) -> np.ndarray:
    """Stack a fleet of equal-length traces into a (devices, samples) matrix."""
    if not fleet:
        raise ValueError("fleet must contain at least one trace")
    lengths = {len(series) for series in fleet}
    n = min(lengths)
    if n == 0:
        raise ValueError("fleet traces must be non-empty")
    return np.vstack([series.values[:n] for series in fleet])


def ensemble_statistics(fleet: Sequence[TimeSeries], at_index: int | None = None) -> dict[str, float]:
    """Statistics across the fleet at one instant (a vertical slice).

    ``at_index`` selects the sample index; by default the middle of the
    traces is used (avoiding warm-up and tail effects).
    """
    matrix = _stack(fleet)
    index = matrix.shape[1] // 2 if at_index is None else at_index
    if not 0 <= index < matrix.shape[1]:
        raise ValueError("at_index out of range")
    column = matrix[:, index]
    return {
        "mean": float(np.mean(column)),
        "std": float(np.std(column)),
        "p50": float(np.percentile(column, 50)),
        "p95": float(np.percentile(column, 95)),
    }


def time_statistics(series: TimeSeries, duration: float | None = None) -> dict[str, float]:
    """Statistics of a single device over (a prefix of) its observation period."""
    if len(series) == 0:
        raise ValueError("series is empty")
    if duration is not None:
        n = max(int(round(duration / series.interval)), 1)
        series = series.head(n)
    values = series.values
    return {
        "mean": float(np.mean(values)),
        "std": float(np.std(values)),
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
    }


def ergodicity_gap(fleet: Sequence[TimeSeries], device_index: int = 0,
                   duration: float | None = None) -> float:
    """Relative difference between one device's time-average and the fleet ensemble mean.

    Returns ``|time_mean - ensemble_mean| / max(|ensemble_mean|, eps)``.
    A gap near zero for modest durations is evidence the metric behaves
    ergodically; a persistent gap means canary results from that device do
    not generalise.
    """
    if not 0 <= device_index < len(fleet):
        raise ValueError("device_index out of range")
    ensemble = ensemble_statistics(fleet)
    time_stats = time_statistics(fleet[device_index], duration=duration)
    scale = max(abs(ensemble["mean"]), 1e-12)
    return abs(time_stats["mean"] - ensemble["mean"]) / scale


@dataclass(frozen=True)
class ErgodicityReport:
    """Gap-vs-observation-period curve for one device against its fleet."""

    device_index: int
    durations: tuple[float, ...]
    gaps: tuple[float, ...]

    def converged_duration(self, tolerance: float = 0.1) -> float | None:
        """Shortest observation period whose gap is within ``tolerance`` (None if never)."""
        for duration, gap in zip(self.durations, self.gaps):
            if gap <= tolerance:
                return duration
        return None


def ergodicity_report(fleet: Sequence[TimeSeries], device_index: int = 0,
                      fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)) -> ErgodicityReport:
    """Compute the ergodicity gap at several observation periods.

    ``fractions`` are fractions of the full trace duration; the report
    answers the paper's "how long of an observation period is required for
    the assumption to hold true?".
    """
    if not fleet:
        raise ValueError("fleet must contain at least one trace")
    total = fleet[device_index].duration
    durations = []
    gaps = []
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError("fractions must be in (0, 1]")
        duration = total * fraction
        durations.append(duration)
        gaps.append(ergodicity_gap(fleet, device_index=device_index, duration=duration))
    return ErgodicityReport(device_index, tuple(durations), tuple(gaps))


def minimum_canary_size(fleet: Sequence[TimeSeries], tolerance: float = 0.05,
                        rng: np.random.Generator | None = None,
                        trials: int = 20) -> int:
    """Smallest random canary (subset of devices) whose mean tracks the fleet mean.

    For each candidate size the fleet-instant mean of ``trials`` random
    subsets is compared with the full-fleet mean; the size is accepted when
    the *worst* relative deviation across trials is within ``tolerance``.
    Returns ``len(fleet)`` when no smaller canary suffices.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = rng or np.random.default_rng(0)
    matrix = _stack(fleet)
    column = matrix[:, matrix.shape[1] // 2]
    fleet_mean = float(np.mean(column))
    scale = max(abs(fleet_mean), 1e-12)
    for size in range(1, len(fleet)):
        worst = 0.0
        for _ in range(trials):
            subset = rng.choice(len(fleet), size=size, replace=False)
            deviation = abs(float(np.mean(column[subset])) - fleet_mean) / scale
            worst = max(worst, deviation)
        if worst <= tolerance:
            return size
    return len(fleet)
