"""Signal reconstruction after down-sampling (Section 4.3, Figure 6).

The paper's recipe: to recover the full-rate signal from Nyquist-rate
samples, "pass the signal through a low-pass filter (for example, by taking
an FFT of the sampled signal, setting all frequency components above f0 to
0 and then taking the IFFT)".  When the original readings were quantised,
re-applying the same quantiser to the reconstruction removes the (bounded)
interpolation residue, which is how Figure 6 reaches an L2 distance of 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.filters import low_pass_fft
from ..signals.timeseries import TimeSeries
from .errors import ReconstructionError, compare
from .nyquist import NyquistEstimate, NyquistEstimator
from .quantization import UniformQuantizer
from .resampling import (downsample, fourier_resample, fourier_resample_matrix,
                         resample_to_rate)

__all__ = [
    "reconstruct",
    "reconstruct_batch",
    "upsample_to_length",
    "RoundTripResult",
    "nyquist_round_trip",
]


def upsample_to_length(series: TimeSeries, target_length: int,
                       cutoff_hz: float | None = None,
                       quantizer: UniformQuantizer | None = None) -> TimeSeries:
    """Up-sample ``series`` to ``target_length`` samples with band-limited interpolation.

    Parameters
    ----------
    series:
        The down-sampled (e.g. Nyquist-rate) trace.
    target_length:
        Number of samples the reconstruction should have.
    cutoff_hz:
        Optional explicit low-pass cut-off applied after interpolation.
        When omitted, the interpolator's implicit cut-off (the input
        series' own Nyquist frequency) applies, which is what the paper
        describes.
    quantizer:
        When given, the reconstruction is re-quantised with the same
        quantiser the original measurements used ("we can add the same
        quantization in order to recover the signal more accurately").
    """
    reconstructed = fourier_resample(series, target_length)
    if cutoff_hz is not None:
        reconstructed = low_pass_fft(reconstructed, cutoff_hz)
    if quantizer is not None:
        reconstructed = quantizer.apply_series(reconstructed)
    return reconstructed


def reconstruct(downsampled: TimeSeries, original_rate: float,
                cutoff_hz: float | None = None,
                quantizer: UniformQuantizer | None = None) -> TimeSeries:
    """Reconstruct a trace at ``original_rate`` from its down-sampled version."""
    if original_rate <= 0:
        raise ValueError("original_rate must be positive")
    target_length = max(int(round(downsampled.duration * original_rate)), 1)
    reconstructed = upsample_to_length(downsampled, target_length, cutoff_hz=cutoff_hz,
                                       quantizer=quantizer)
    return TimeSeries(reconstructed.values, 1.0 / original_rate,
                      start_time=downsampled.start_time, name=downsampled.name)


def reconstruct_batch(values: np.ndarray, interval: float,
                      original_rate: float) -> np.ndarray:
    """Row-wise :func:`reconstruct` over a ``(rows, m)`` matrix of collected samples.

    Every row is a down-sampled trace at ``interval`` seconds per sample;
    the result holds each row's band-limited reconstruction at
    ``original_rate``, computed with one batched FFT pair.  The target
    length matches the scalar path exactly (``round(duration *
    original_rate)``), so a row of the result equals ``reconstruct`` on
    that row's :class:`~repro.signals.timeseries.TimeSeries`.
    """
    if original_rate <= 0:
        raise ValueError("original_rate must be positive")
    if values.ndim != 2:
        raise ValueError(f"values must be a (rows, m) matrix, got shape {values.shape}")
    duration = values.shape[1] * interval
    target_length = max(int(round(duration * original_rate)), 1)
    return fourier_resample_matrix(values, target_length)


@dataclass(frozen=True)
class RoundTripResult:
    """Everything produced by a down-sample-then-reconstruct experiment."""

    original: TimeSeries
    downsampled: TimeSeries
    reconstructed: TimeSeries
    estimate: NyquistEstimate
    error: ReconstructionError

    @property
    def reduction_factor(self) -> float:
        """How many fewer samples the down-sampled trace keeps."""
        if len(self.downsampled) == 0:
            return float("nan")
        return len(self.original) / len(self.downsampled)

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline numbers (for CSV export)."""
        return {
            "original_rate_hz": self.original.sampling_rate,
            "nyquist_rate_hz": self.estimate.nyquist_rate,
            "downsampled_rate_hz": self.downsampled.sampling_rate,
            "reduction_factor": self.reduction_factor,
            "l2": self.error.l2,
            "rmse": self.error.rmse,
            "nrmse": self.error.nrmse,
            "max_abs_error": self.error.max_abs,
        }


def nyquist_round_trip(series: TimeSeries,
                       estimator: NyquistEstimator | None = None,
                       headroom: float = 1.0,
                       quantizer: UniformQuantizer | None = None,
                       anti_alias: bool = True) -> RoundTripResult:
    """Down-sample a trace to its estimated Nyquist rate and reconstruct it.

    This is the Figure 6 experiment as a single call: estimate the Nyquist
    rate, keep only samples at (headroom x) that rate, reconstruct with the
    low-pass interpolator (optionally re-quantising), and report the error
    against the original.

    Parameters
    ----------
    headroom:
        Multiplier (>= 1) on the estimated Nyquist rate before
        down-sampling.  Operators keep headroom to be robust to rate drift;
        1.0 reproduces the paper's figure.
    anti_alias:
        Whether the down-sampling applies an anti-alias filter first
        (ideal re-sampler) or plainly decimates (what a slower poller
        produces).  Both are useful; the default matches the ideal
        re-sampler because the paper's a-posteriori use case re-samples
        already-collected data.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    estimator = estimator or NyquistEstimator()
    estimate = estimator.estimate(series)
    if not estimate.reliable:
        # When the rate cannot be estimated we keep the trace as-is: no
        # saving, but also no information loss.
        error = compare(series, series)
        return RoundTripResult(series, series, series, estimate, error)

    target_rate = min(estimate.nyquist_rate * headroom, series.sampling_rate)
    downsampled = resample_to_rate(series, target_rate, anti_alias=anti_alias)
    if len(downsampled) < 2:
        downsampled = downsample(series, max(len(series) // 2, 1), anti_alias=anti_alias)
    reconstructed = reconstruct(downsampled, series.sampling_rate,
                                cutoff_hz=estimate.cutoff_frequency,
                                quantizer=quantizer)
    error = compare(series, reconstructed)
    return RoundTripResult(series, downsampled, reconstructed, estimate, error)
