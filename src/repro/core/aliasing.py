"""Aliasing detection with dual-frequency sampling (Section 4.1).

Following Penny et al. (the paper's reference [19]), the detector samples
the same underlying signal at two rates ``f1 > f2`` whose ratio is not an
integer.  If the signal contains frequency components above ``f2 / 2``,
those components fold ("alias") to *different* apparent frequencies in the
two spectra, so the spectra disagree below ``f2 / 2`` -- whereas a signal
that both rates capture cleanly produces matching spectra there.  Small
discrepancies caused by measurement noise are filtered with a noise-floor
threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..signals.noise import noise_floor_estimate
from ..signals.spectrum import Spectrum
from ..signals.timeseries import TimeSeries
from .psd import periodogram
from .resampling import linear_resample, resample_to_rate

__all__ = [
    "AliasingVerdict",
    "DualRateAliasingDetector",
    "detect_aliasing",
    "compare_spectra",
]

#: Default ratio between the fast and slow probe rates.  1.6 is neither an
#: integer nor does the slow rate divide the fast one, as §4.1 requires.
DEFAULT_RATE_RATIO: float = 1.6


@dataclass(frozen=True)
class AliasingVerdict:
    """Outcome of a dual-frequency aliasing check.

    Attributes
    ----------
    aliased:
        True when the comparison indicates frequency content above half the
        slower probe rate (i.e. the slower rate would lose information).
    discrepancy:
        Normalised spectral discrepancy between the two probes in the
        common band (0 = identical spectra).
    threshold:
        The decision threshold the discrepancy was compared against.
    slow_rate, fast_rate:
        The two probe sampling rates that were compared.
    common_band_hz:
        Upper edge of the frequency band over which the spectra were
        compared (half the slower rate).
    """

    aliased: bool
    discrepancy: float
    threshold: float
    slow_rate: float
    fast_rate: float
    common_band_hz: float

    @property
    def margin(self) -> float:
        """How far the discrepancy sits from the threshold (positive = aliased)."""
        return self.discrepancy - self.threshold


def compare_spectra(slow: Spectrum, fast: Spectrum,
                    noise_quantile: float = 0.5) -> tuple[float, float]:
    """Compare two PSDs over their common band.

    Returns ``(discrepancy, band_edge)`` where ``discrepancy`` is the mean
    absolute difference of the (energy-normalised) spectra over the band
    ``(0, band_edge]``, after subtracting the estimated noise floor from
    both.  Normalising by total in-band energy makes the number comparable
    across metrics with wildly different magnitudes.
    """
    band_edge = min(slow.max_frequency, fast.max_frequency)
    slow_band = slow.without_dc().band(0.0, band_edge)
    fast_band = fast.without_dc().band(0.0, band_edge)
    if len(slow_band) == 0 or len(fast_band) == 0:
        return 0.0, band_edge

    # Compare on the coarser of the two grids so neither spectrum is
    # extrapolated beyond its resolution.
    grid = slow_band.frequencies if len(slow_band) <= len(fast_band) else fast_band.frequencies
    slow_power = slow_band.interpolate_power(grid)
    fast_power = fast_band.interpolate_power(grid)

    slow_floor = noise_floor_estimate(slow_power, quantile=noise_quantile)
    fast_floor = noise_floor_estimate(fast_power, quantile=noise_quantile)
    slow_clean = np.maximum(slow_power - slow_floor, 0.0)
    fast_clean = np.maximum(fast_power - fast_floor, 0.0)

    total = float(np.sum(slow_clean) + np.sum(fast_clean))
    if total <= 0:
        return 0.0, band_edge
    # Normalise each spectrum to unit energy before differencing so a pure
    # amplitude difference (e.g. window scalloping) does not register as
    # aliasing; only *where* the energy sits matters.
    slow_norm = slow_clean / (np.sum(slow_clean) or 1.0)
    fast_norm = fast_clean / (np.sum(fast_clean) or 1.0)
    discrepancy = float(0.5 * np.sum(np.abs(slow_norm - fast_norm)))
    return discrepancy, band_edge


class DualRateAliasingDetector:
    """Penny-style aliasing detector.

    Parameters
    ----------
    rate_ratio:
        Ratio ``f1 / f2`` between the fast and slow probe rates; must be
        greater than 1 and should not be an integer (and the slow rate must
        not divide the fast rate) or aliased components can fold onto the
        same apparent frequency in both spectra and go undetected.
    threshold:
        Discrepancy above which the verdict is "aliased".  The discrepancy
        is a total-variation style distance in [0, 1]; the default of 0.1
        tolerates noise and mild spectral-estimation differences.
    noise_quantile:
        Quantile of bin power used as the per-spectrum noise floor.
    min_samples:
        Minimum number of samples each probe stream must contain for the
        comparison to mean anything; with fewer samples the verdict is
        "not aliased" (insufficient evidence) rather than a coin flip on
        two noisy two-bin spectra.
    """

    def __init__(self, rate_ratio: float = DEFAULT_RATE_RATIO,
                 threshold: float = 0.1,
                 noise_quantile: float = 0.5,
                 min_samples: int = 16) -> None:
        if rate_ratio <= 1.0:
            raise ValueError("rate_ratio must be > 1")
        if math.isclose(rate_ratio, round(rate_ratio), abs_tol=1e-9):
            raise ValueError("rate_ratio must not be an integer (see §4.1)")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 4:
            raise ValueError("min_samples must be >= 4")
        self.rate_ratio = rate_ratio
        self.threshold = threshold
        self.noise_quantile = noise_quantile
        self.min_samples = min_samples

    # ------------------------------------------------------------------
    def probe_rates(self, slow_rate: float) -> tuple[float, float]:
        """Return ``(slow_rate, fast_rate)`` for a candidate sampling rate."""
        if slow_rate <= 0:
            raise ValueError("slow_rate must be positive")
        return slow_rate, slow_rate * self.rate_ratio

    def check_samples(self, slow: TimeSeries, fast: TimeSeries) -> AliasingVerdict:
        """Compare two already-collected probe traces of the same signal."""
        if slow.sampling_rate >= fast.sampling_rate:
            slow, fast = fast, slow
        if len(slow) < self.min_samples or len(fast) < self.min_samples:
            # Not enough data to say anything: report "not aliased" with
            # zero confidence rather than raising, so the adaptive
            # controller can simply keep probing.
            return AliasingVerdict(False, 0.0, self.threshold,
                                   slow.sampling_rate, fast.sampling_rate,
                                   slow.sampling_rate / 2.0)
        slow_spectrum = periodogram(slow)
        fast_spectrum = periodogram(fast)
        discrepancy, band_edge = compare_spectra(slow_spectrum, fast_spectrum,
                                                 noise_quantile=self.noise_quantile)
        return AliasingVerdict(
            aliased=discrepancy > self.threshold,
            discrepancy=discrepancy,
            threshold=self.threshold,
            slow_rate=slow.sampling_rate,
            fast_rate=fast.sampling_rate,
            common_band_hz=band_edge,
        )

    def check_signal(self, reference: TimeSeries, candidate_rate: float) -> AliasingVerdict:
        """Would sampling ``reference`` at ``candidate_rate`` alias?

        ``reference`` must be a trace collected at a rate at least
        ``rate_ratio`` times faster than ``candidate_rate`` (it plays the
        role of the underlying signal).  The detector derives the two probe
        streams from it without anti-alias filtering -- i.e. what two
        independent slower pollers would have observed.  When the probe
        rates do not divide the reference rate, the probe samples are read
        off the reference by interpolation, which is a faithful stand-in as
        long as the reference is sampled well above both probe rates.
        """
        slow_rate, fast_rate = self.probe_rates(candidate_rate)
        if fast_rate > reference.sampling_rate + 1e-9:
            raise ValueError(
                f"reference trace at {reference.sampling_rate:g} Hz is too slow to "
                f"emulate a {fast_rate:g} Hz probe")
        slow = self._probe(reference, slow_rate)
        fast = self._probe(reference, fast_rate)
        return self.check_samples(slow, fast)

    @staticmethod
    def _probe(reference: TimeSeries, rate: float) -> TimeSeries:
        """Emulate polling ``reference`` at ``rate`` (no anti-alias filtering)."""
        ratio = reference.sampling_rate / rate
        if abs(ratio - round(ratio)) < 1e-9:
            return resample_to_rate(reference, rate, anti_alias=False)
        return linear_resample(reference, rate)


def detect_aliasing(reference: TimeSeries, candidate_rate: float,
                    rate_ratio: float = DEFAULT_RATE_RATIO,
                    threshold: float = 0.1) -> AliasingVerdict:
    """Convenience wrapper: dual-frequency aliasing check with default settings."""
    detector = DualRateAliasingDetector(rate_ratio=rate_ratio, threshold=threshold)
    return detector.check_signal(reference, candidate_rate)
