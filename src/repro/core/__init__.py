"""Core algorithms: the paper's primary contribution.

* :mod:`repro.core.psd` -- spectral estimation (scalar and batched).
* :mod:`repro.core.nyquist` -- the Section 3.2 Nyquist-rate estimator.
* :mod:`repro.core.batch` -- the batched spectral engine: the same
  estimator over a ``(rows, n)`` trace matrix with vectorised numpy calls.
* :mod:`repro.core.aliasing` -- dual-frequency aliasing detection (Section 4.1).
* :mod:`repro.core.adaptive` -- the dynamic sampling controller (Section 4.2).
* :mod:`repro.core.reconstruction` -- low-pass reconstruction (Section 4.3).
* :mod:`repro.core.resampling` -- pre-cleaning, down/up-sampling.
* :mod:`repro.core.quantization` -- quantisers and quantisation noise.
* :mod:`repro.core.windowed` -- moving-window Nyquist inference (Figure 7).
* :mod:`repro.core.ergodicity` / :mod:`repro.core.multivariate` -- the
  Section 6 "beyond Nyquist" extensions.
"""

from .adaptive import (AdaptiveRun, AdaptiveSamplingController, ControllerConfig,
                       ControllerMode, ModeTransition, WindowDecision, adaptive_sample)
from .batch import batch_estimate
from .aliasing import (AliasingVerdict, DualRateAliasingDetector, compare_spectra,
                       detect_aliasing)
from .errors import ReconstructionError, compare, l2_distance, max_abs_error, nrmse, rmse
from .ergodicity import (ErgodicityReport, ensemble_statistics, ergodicity_gap,
                         ergodicity_report, minimum_canary_size, time_statistics)
from .multivariate import (MultivariateEstimate, correlation_matrix,
                           correlation_preservation, estimate_joint_nyquist,
                           joint_sampling_rate)
from .nyquist import (ALIASED_SENTINEL, NyquistEstimate, NyquistEstimator,
                      estimate_nyquist_rate, oversampling_ratio)
from .psd import batch_periodogram, batch_welch_psd, periodogram, power_spectrum, welch_psd
from .quantization import UniformQuantizer, quantization_noise_std, quantize, sqnr_db
from .reconstruction import RoundTripResult, nyquist_round_trip, reconstruct, upsample_to_length
from .resampling import (downsample, fourier_resample, linear_resample,
                         nearest_neighbor_resample, regularize, resample_to_rate)
from .windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS, WindowedEstimate,
                       rate_stability, windowed_nyquist_rates)

__all__ = [
    # nyquist
    "ALIASED_SENTINEL", "NyquistEstimate", "NyquistEstimator",
    "estimate_nyquist_rate", "oversampling_ratio",
    # psd / batch
    "periodogram", "welch_psd", "power_spectrum",
    "batch_periodogram", "batch_welch_psd", "batch_estimate",
    # aliasing
    "AliasingVerdict", "DualRateAliasingDetector", "detect_aliasing", "compare_spectra",
    # adaptive
    "AdaptiveSamplingController", "ControllerConfig", "ControllerMode",
    "AdaptiveRun", "WindowDecision", "ModeTransition", "adaptive_sample",
    # reconstruction / errors
    "RoundTripResult", "nyquist_round_trip", "reconstruct", "upsample_to_length",
    "ReconstructionError", "compare", "l2_distance", "rmse", "nrmse", "max_abs_error",
    # resampling
    "regularize", "nearest_neighbor_resample", "downsample", "resample_to_rate",
    "fourier_resample", "linear_resample",
    # quantization
    "UniformQuantizer", "quantize", "quantization_noise_std", "sqnr_db",
    # windowed
    "WindowedEstimate", "windowed_nyquist_rates", "rate_stability",
    "FIGURE7_WINDOW_SECONDS", "FIGURE7_STEP_SECONDS",
    # ergodicity / multivariate
    "ErgodicityReport", "ensemble_statistics", "time_statistics", "ergodicity_gap",
    "ergodicity_report", "minimum_canary_size",
    "MultivariateEstimate", "estimate_joint_nyquist", "joint_sampling_rate",
    "correlation_matrix", "correlation_preservation",
]
