"""Nyquist-rate estimation from a measured trace (the paper's Section 3.2 method).

The estimator:

(a) computes the FFT/PSD of the trace and the total energy (sum of the PSD
    across bins);
(b) accumulates per-bin power in ascending frequency order until 99 % of
    the total energy is captured;
(c) if *all* bins are needed, concludes the trace is probably already
    aliased and reports an unreliable estimate (the paper records -1);
(d) otherwise reports twice the cut-off frequency as the Nyquist rate.

The 99 % cut-off is a noise/quantisation workaround; it is configurable and
ablated in ``benchmarks/bench_ablation_energy_cutoff.py``.

Two execution paths share these semantics: :meth:`NyquistEstimator.estimate`
processes one trace at a time (the reference implementation), and
:meth:`NyquistEstimator.estimate_batch` delegates to
:mod:`repro.core.batch` to run the same steps over a whole ``(rows, n)``
matrix of equal-length traces with single vectorised numpy calls -- the
backend the fleet survey uses by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..signals.spectrum import Spectrum
from ..signals.timeseries import IrregularTimeSeries, TimeSeries
from .psd import WindowName, periodogram, welch_psd
from .resampling import regularize

__all__ = [
    "NyquistEstimate",
    "NyquistEstimator",
    "estimate_nyquist_rate",
    "oversampling_ratio",
    "ALIASED_SENTINEL",
    "DEFAULT_ENERGY_FRACTION",
    "DEFAULT_ALIASED_BAND_FRACTION",
]

#: Value the paper records when the estimator cannot produce a reliable
#: rate because the trace appears to be aliased already.
ALIASED_SENTINEL: float = -1.0

#: Default share of total (non-DC) energy that must be captured below the
#: cut-off frequency.  This is the paper's 99 % knob.
DEFAULT_ENERGY_FRACTION: float = 0.99

#: Default fraction of the measurable band edge above which an energy
#: cut-off means "probably already aliased".  The paper's literal rule is
#: "all bins needed" (1.0), but with measurement noise present the 99 %
#: cut-off of a genuinely full-band trace lands one or two bins *short*
#: of the edge and the strict rule never fires: on day-length synthetic
#: survey traces, planted broadband pairs all came back as reliable
#: marginal estimates instead of the paper's "record -1".  0.9 is
#: calibrated on those planted broadband pairs: every full-band
#: continuous trace is refused while clean band-limited pairs (whose
#: drawn bandwidth tops out at 0.8x the band edge) are untouched.
DEFAULT_ALIASED_BAND_FRACTION: float = 0.9


@dataclass(frozen=True)
class NyquistEstimate:
    """Result of running the Section 3.2 estimator on one trace.

    Attributes
    ----------
    nyquist_rate:
        Estimated Nyquist rate in Hz, or :data:`ALIASED_SENTINEL` (-1.0)
        when the estimate is unreliable.
    cutoff_frequency:
        The frequency below which ``energy_fraction`` of the signal energy
        lies (``None`` when unreliable).
    current_rate:
        The rate at which the trace was actually sampled.
    energy_fraction:
        The energy threshold that was used (0.99 by default).
    captured_fraction:
        The fraction of energy actually captured at the cut-off bin.
    total_energy:
        Total (non-DC unless ``include_dc``) energy of the trace's PSD.
    reliable:
        True when the estimator believes the trace was sampled above its
        Nyquist rate and the estimate can be trusted.
    reason:
        Short human-readable explanation when ``reliable`` is False.
    """

    nyquist_rate: float
    cutoff_frequency: float | None
    current_rate: float
    energy_fraction: float
    captured_fraction: float
    total_energy: float
    reliable: bool
    reason: str = ""

    @property
    def is_aliased_suspect(self) -> bool:
        """True when the trace looked aliased (all bins needed for the cut-off)."""
        return not self.reliable and self.reason == "all bins needed"

    @property
    def reduction_ratio(self) -> float:
        """How much less often the metric could be sampled (current / Nyquist).

        Values above 1 mean the metric is over-sampled today (a ratio of 10
        means 10x over-sampling); values below 1 mean it is under-sampled.
        Returns ``nan`` when the estimate is unreliable.
        """
        if not self.reliable or self.nyquist_rate <= 0:
            return float("nan")
        return self.current_rate / self.nyquist_rate

    @property
    def oversampled(self) -> bool:
        """True when the current rate exceeds the estimated Nyquist rate."""
        return self.reliable and self.current_rate > self.nyquist_rate

    @property
    def undersampled(self) -> bool:
        """True when the current rate is below the estimated Nyquist rate."""
        return self.reliable and self.current_rate < self.nyquist_rate


class NyquistEstimator:
    """Configurable implementation of the paper's Nyquist-rate estimator.

    Parameters
    ----------
    energy_fraction:
        Share of total energy that must be captured below the cut-off
        frequency (paper default 0.99).
    include_dc:
        Whether the DC bin participates in energy accounting.  The paper
        sums "across all FFT bins"; we exclude DC by default because a
        constant offset carries no information about how fast a metric
        changes and would otherwise dominate the total for any metric with
        a large mean (documented in DESIGN.md and ablated in the benches).
    psd_method:
        "periodogram" (single FFT, the paper's method) or "welch".
    min_samples:
        Traces shorter than this are rejected as unreliable rather than
        producing a meaningless two-bin estimate.
    flat_tolerance:
        If the trace's peak-to-peak range divided by its absolute mean (or
        1 if the mean is 0) is below this threshold the trace is considered
        constant; constant traces get a Nyquist rate equal to one cycle per
        trace duration (the lowest rate observable from the data) rather
        than a noise-driven estimate.
    aliased_band_fraction:
        If the energy cut-off lands above this fraction of the measurable
        band edge (``sampling_rate / 2``), the trace is treated as
        "probably already aliased" even if the very last bin was not
        strictly required.  The paper's criterion is "all bins needed";
        with measurement noise present, energy reaching (essentially) the
        band edge carries the same meaning.  The default
        (:data:`DEFAULT_ALIASED_BAND_FRACTION`, 0.9) is calibrated so the
        paper's "record -1" behaviour reproduces on noisy full-band
        traces; pass 1.0 to restore the literal "all bins needed" rule.
    detrend:
        Remove the mean and the best-fit linear trend before the FFT.  A
        slow trend that does not complete a cycle inside the analysis
        window leaks energy across many bins and inflates the estimate;
        detrending suppresses that leakage.  Off by default (the paper's
        survey analyses full-day traces where leakage is minor); the
        adaptive controller turns it on because it works on short windows.
    window:
        Taper applied before the FFT ("rectangular", "hann", "hamming",
        "blackman").  A tapered window further reduces leakage at the cost
        of a slightly wider main lobe.
    """

    def __init__(self,
                 energy_fraction: float = DEFAULT_ENERGY_FRACTION,
                 include_dc: bool = False,
                 psd_method: Literal["periodogram", "welch"] = "periodogram",
                 min_samples: int = 16,
                 flat_tolerance: float = 0.0,
                 aliased_band_fraction: float = DEFAULT_ALIASED_BAND_FRACTION,
                 detrend: bool = False,
                 window: WindowName = "rectangular") -> None:
        if not 0 < energy_fraction <= 1:
            raise ValueError("energy_fraction must be in (0, 1]")
        if min_samples < 4:
            raise ValueError("min_samples must be >= 4")
        if flat_tolerance < 0:
            raise ValueError("flat_tolerance must be non-negative")
        if not 0 < aliased_band_fraction <= 1:
            raise ValueError("aliased_band_fraction must be in (0, 1]")
        self.energy_fraction = energy_fraction
        self.include_dc = include_dc
        self.psd_method = psd_method
        self.min_samples = min_samples
        self.flat_tolerance = flat_tolerance
        self.aliased_band_fraction = aliased_band_fraction
        self.detrend = detrend
        self.window = window

    def cache_token(self) -> str:
        """Canonical parameter string for content-addressed record caching.

        Two estimators with equal tokens produce byte-identical survey
        records for the same traces; any parameter change changes the
        token (and therefore every :class:`~repro.records.PairFingerprint`
        built from it).
        """
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in ("energy_fraction", "include_dc", "psd_method",
                         "min_samples", "flat_tolerance",
                         "aliased_band_fraction", "detrend", "window"))
        return f"{type(self).__name__}({fields})"

    # ------------------------------------------------------------------
    def compute_spectrum(self, series: TimeSeries) -> Spectrum:
        """PSD of ``series`` using the configured method."""
        if self.detrend:
            series = _remove_linear_trend(series)
        if self.psd_method == "periodogram":
            return periodogram(series, window=self.window)
        if self.psd_method == "welch":
            return welch_psd(series, window=self.window if self.window != "rectangular" else "hann")
        raise ValueError(f"unknown psd_method {self.psd_method!r}")

    def estimate(self, series: TimeSeries | IrregularTimeSeries) -> NyquistEstimate:
        """Run the estimator on a trace.

        Irregular traces are pre-cleaned with nearest-neighbour re-sampling
        first, exactly as Section 3.2 prescribes.
        """
        if isinstance(series, IrregularTimeSeries):
            series = regularize(series)
        if len(series) < self.min_samples:
            return self._unreliable(series, reason="trace too short")

        if self._is_effectively_constant(series):
            # A constant metric needs (essentially) no sampling at all; we
            # report the lowest rate the trace itself can witness: one
            # sample per trace duration.
            lowest = 1.0 / series.duration
            return NyquistEstimate(
                nyquist_rate=lowest,
                cutoff_frequency=lowest / 2.0,
                current_rate=series.sampling_rate,
                energy_fraction=self.energy_fraction,
                captured_fraction=1.0,
                total_energy=0.0,
                reliable=True,
                reason="constant trace",
            )

        spectrum = self.compute_spectrum(series)
        return self.estimate_from_spectrum(spectrum, current_rate=series.sampling_rate)

    def estimate_batch(self, values: np.ndarray, interval: float,
                       fft_workers: int | None = None) -> list[NyquistEstimate]:
        """Run the estimator over every row of a ``(rows, n)`` trace matrix.

        All rows must share one length and one sampling ``interval``
        (group heterogeneous fleets with
        :meth:`repro.telemetry.dataset.FleetDataset.trace_batches`).
        Produces the same estimates as calling :meth:`estimate` on each
        row individually, but computes the PSDs with a single
        ``rfft(axis=-1)`` call and the energy cut-offs with one batched
        ``cumsum``/``argmax`` -- see :mod:`repro.core.batch`.
        ``fft_workers`` spreads that ``rfft`` over scipy pocketfft
        threads (row-parallel, so results are unchanged).
        """
        from .batch import batch_estimate  # local import: batch builds on this module

        return batch_estimate(values, interval, estimator=self, fft_workers=fft_workers)

    def estimate_from_spectrum(self, spectrum: Spectrum,
                               current_rate: float | None = None) -> NyquistEstimate:
        """Run steps (a)-(d) on an already-computed PSD."""
        rate = current_rate if current_rate is not None else spectrum.sampling_rate
        working = spectrum if self.include_dc else spectrum.without_dc()
        total = float(np.sum(working.power))
        if total <= 0 or len(working) == 0:
            return NyquistEstimate(
                nyquist_rate=ALIASED_SENTINEL,
                cutoff_frequency=None,
                current_rate=rate,
                energy_fraction=self.energy_fraction,
                captured_fraction=0.0,
                total_energy=0.0,
                reliable=False,
                reason="no spectral energy",
            )

        cumulative = np.cumsum(working.power) / total
        cutoff_index = int(np.searchsorted(cumulative, self.energy_fraction - 1e-12))
        cutoff_index = min(cutoff_index, len(working) - 1)

        band_edge = float(working.frequencies[-1])
        if (cutoff_index >= len(working) - 1
                or working.frequencies[cutoff_index] > self.aliased_band_fraction * band_edge):
            # All bins (or essentially all of the band) were needed: the
            # energy extends to the edge of the measurable band, which is
            # the signature of a trace that was already aliased when it was
            # collected (step (b) failure case -> record -1).
            return NyquistEstimate(
                nyquist_rate=ALIASED_SENTINEL,
                cutoff_frequency=None,
                current_rate=rate,
                energy_fraction=self.energy_fraction,
                captured_fraction=float(cumulative[-1]),
                total_energy=total,
                reliable=False,
                reason="all bins needed",
            )

        cutoff_frequency = float(working.frequencies[cutoff_index])
        if cutoff_frequency <= 0:
            # All interesting energy is in the first (lowest) bin; the best
            # statement the data supports is "at most one cycle per trace".
            cutoff_frequency = float(working.frequencies[0]) or working.resolution
        nyquist_rate = 2.0 * cutoff_frequency
        return NyquistEstimate(
            nyquist_rate=nyquist_rate,
            cutoff_frequency=cutoff_frequency,
            current_rate=rate,
            energy_fraction=self.energy_fraction,
            captured_fraction=float(cumulative[cutoff_index]),
            total_energy=total,
            reliable=True,
        )

    # ------------------------------------------------------------------
    def _is_effectively_constant(self, series: TimeSeries) -> bool:
        spread = series.value_range()
        if spread == 0:
            return True
        if self.flat_tolerance == 0:
            return False
        scale = abs(series.mean()) or 1.0
        return spread / scale < self.flat_tolerance

    def _unreliable(self, series: TimeSeries, reason: str) -> NyquistEstimate:
        return NyquistEstimate(
            nyquist_rate=ALIASED_SENTINEL,
            cutoff_frequency=None,
            current_rate=series.sampling_rate if len(series) else float("nan"),
            energy_fraction=self.energy_fraction,
            captured_fraction=0.0,
            total_energy=0.0,
            reliable=False,
            reason=reason,
        )


def estimate_nyquist_rate(series: TimeSeries | IrregularTimeSeries,
                          energy_fraction: float = DEFAULT_ENERGY_FRACTION,
                          include_dc: bool = False) -> NyquistEstimate:
    """Convenience wrapper around :class:`NyquistEstimator` with default settings."""
    estimator = NyquistEstimator(energy_fraction=energy_fraction, include_dc=include_dc)
    return estimator.estimate(series)


def oversampling_ratio(series: TimeSeries | IrregularTimeSeries,
                       energy_fraction: float = DEFAULT_ENERGY_FRACTION) -> float:
    """Ratio between the trace's actual sampling rate and its estimated Nyquist rate.

    This is the quantity plotted (as a per-metric CDF) in Figure 4.
    Returns ``nan`` when the Nyquist rate cannot be estimated reliably.
    """
    estimate = estimate_nyquist_rate(series, energy_fraction=energy_fraction)
    return estimate.reduction_ratio


def _remove_linear_trend(series: TimeSeries) -> TimeSeries:
    """Subtract the least-squares linear fit from a series (used by ``detrend``)."""
    n = len(series)
    if n < 2:
        return series
    x = np.arange(n, dtype=np.float64)
    slope, intercept = np.polyfit(x, series.values, 1)
    return series.with_values(series.values - (slope * x + intercept))
