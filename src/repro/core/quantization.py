"""Quantisation: uniform quantisers and quantisation-noise accounting.

Section 4.3 of the paper: "In practice, measurement readings are quantized
... Such quantization adds noise which in the frequency domain appears at
higher frequencies".  Two uses in this library:

* the telemetry generators quantise their outputs the way real sensors and
  counters do (temperatures to whole degrees, utilisation to whole
  percents, counters to integers);
* quantisation-aware reconstruction re-applies the original quantiser to a
  reconstructed signal, which is what lets Figure 6 report an (effectively)
  zero L2 distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..signals.timeseries import TimeSeries

__all__ = [
    "UniformQuantizer",
    "quantize",
    "quantization_noise_std",
    "sqnr_db",
]


@dataclass(frozen=True)
class UniformQuantizer:
    """A mid-tread uniform quantiser with step ``step`` and optional clipping.

    ``quantize(x) = round(x / step) * step`` (then clipped to
    ``[minimum, maximum]`` when bounds are given).
    """

    step: float
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.step) or self.step <= 0:
            raise ValueError("step must be a positive finite number")
        if self.minimum is not None and self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("maximum must be >= minimum")

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Quantise an array of raw values."""
        quantized = np.round(np.asarray(values, dtype=np.float64) / self.step) * self.step
        if self.minimum is not None or self.maximum is not None:
            quantized = np.clip(quantized, self.minimum, self.maximum)
        return quantized

    def apply_series(self, series: TimeSeries) -> TimeSeries:
        """Quantise a whole time series."""
        return series.with_values(self.apply(series.values))

    def noise_std(self) -> float:
        """Standard deviation of the quantisation error, ``step / sqrt(12)``.

        The classic uniform-error model: the rounding error is uniformly
        distributed over one quantisation step.
        """
        return self.step / math.sqrt(12.0)

    def levels(self) -> int | None:
        """Number of representable levels when the quantiser is bounded."""
        if self.minimum is None or self.maximum is None:
            return None
        return int(round((self.maximum - self.minimum) / self.step)) + 1


def quantize(series: TimeSeries, step: float,
             minimum: float | None = None, maximum: float | None = None) -> TimeSeries:
    """Quantise ``series`` with a uniform quantiser of the given step."""
    return UniformQuantizer(step, minimum, maximum).apply_series(series)


def quantization_noise_std(step: float) -> float:
    """Standard deviation of uniform quantisation noise for a given step."""
    if step <= 0:
        raise ValueError("step must be positive")
    return step / math.sqrt(12.0)


def sqnr_db(series: TimeSeries, step: float) -> float:
    """Signal-to-quantisation-noise ratio in dB for quantising ``series`` with ``step``.

    Computed against the AC power of the signal.  A large SQNR means
    quantisation barely perturbs the spectrum; a small one means the
    high-frequency quantisation noise floor will be visible and the 99 %
    energy threshold is doing real work.
    """
    if len(series) == 0:
        raise ValueError("series is empty")
    ac_power = float(np.mean((series.values - np.mean(series.values)) ** 2))
    noise_power = quantization_noise_std(step) ** 2
    if ac_power == 0:
        return -math.inf
    if noise_power == 0:
        return math.inf
    return 10.0 * math.log10(ac_power / noise_power)
