"""Batched Nyquist estimation: the Section 3.2 method over many traces at once.

The fleet survey runs the same estimator over thousands of (metric,
device) pairs.  Doing that one trace at a time spends most of its wall
clock in Python overhead rather than in the FFT; this module instead
accepts a ``(rows, n)`` matrix of equal-length, equal-interval traces and
performs every stage of the estimator as one vectorised numpy operation:

* constant-trace detection  -- per-row peak-to-peak over the matrix;
* optional linear detrend   -- one closed-form least-squares fit per row;
* the PSD                   -- a single ``rfft(axis=-1)`` call for the
  whole batch (scipy's pocketfft when available, numpy otherwise);
* the 99 % energy cut-off   -- ``np.cumsum`` + ``argmax`` over the batch.

Only the final wrap into per-trace :class:`~repro.core.nyquist.NyquistEstimate`
objects is a Python loop, which is O(rows) rather than O(rows x n).

The default survey configuration (rectangular-window periodogram PSD, DC
excluded, ``flat_tolerance`` 0) takes a further-optimised fast path built
on three algebraic shortcuts, none of which changes results:

* the energy comparison is done against per-row raw (unscaled) power --
  the cut-off index only depends on energy *ratios*, so the PSD
  normalisation is applied afterwards to the handful of per-row scalars
  that are reported;
* the one-sided doubling of interior bins multiplies every compared bin
  by the same factor (odd ``n``) or is folded into the per-row energy
  target (even ``n``, where only the Nyquist bin is not doubled), so no
  full-matrix doubling pass is needed;
* constant traces are detected lazily: a constant row's non-DC energy is
  pure FFT round-off (~``(n*eps)^2`` relative to DC), so only rows whose
  band energy is vanishingly small relative to their DC bin pay the exact
  peak-to-peak check, instead of scanning the whole matrix up front.

The semantics match :meth:`NyquistEstimator.estimate` -- the scalar path
is kept as the reference backend and the equivalence is enforced by
``tests/core/test_batch.py``.
"""

from __future__ import annotations

import numpy as np

try:  # scipy's pocketfft is measurably faster; numpy is the fallback.
    from scipy.fft import rfft as _scipy_rfft

    def _rfft(values: np.ndarray, fft_workers: int | None = None) -> np.ndarray:
        """Row-wise rfft, optionally spread over pocketfft worker threads.

        ``fft_workers`` maps to scipy's ``workers=`` argument, which
        parallelises the batch across rows without changing any row's
        result (each row's transform is still computed by the same code).
        """
        if fft_workers is not None and fft_workers > 1:
            return _scipy_rfft(values, axis=-1, workers=fft_workers)
        return _scipy_rfft(values, axis=-1)
except ImportError:  # pragma: no cover - exercised only without scipy
    def _rfft(values: np.ndarray, fft_workers: int | None = None) -> np.ndarray:
        return np.fft.rfft(values, axis=-1)

from .nyquist import ALIASED_SENTINEL, NyquistEstimate, NyquistEstimator
from .psd import batch_welch_psd, taper_energy, window_coefficients

__all__ = ["batch_estimate"]


def _unreliable(estimator: NyquistEstimator, current_rate: float, reason: str) -> NyquistEstimate:
    return NyquistEstimate(
        nyquist_rate=ALIASED_SENTINEL,
        cutoff_frequency=None,
        current_rate=current_rate,
        energy_fraction=estimator.energy_fraction,
        captured_fraction=0.0,
        total_energy=0.0,
        reliable=False,
        reason=reason,
    )


def _constant_mask(values: np.ndarray, estimator: NyquistEstimator) -> np.ndarray:
    """Per-row version of ``NyquistEstimator._is_effectively_constant``."""
    spread = np.ptp(values, axis=-1)
    constant = spread == 0
    if estimator.flat_tolerance > 0:
        scale = np.abs(np.mean(values, axis=-1))
        scale = np.where(scale == 0, 1.0, scale)
        constant |= (spread / scale) < estimator.flat_tolerance
    return constant


def _remove_linear_trend_rows(values: np.ndarray) -> np.ndarray:
    """Subtract each row's least-squares line (vectorised ``detrend``)."""
    n = values.shape[-1]
    if n < 2:
        return values
    x = np.arange(n, dtype=np.float64)
    x_centered = x - x.mean()
    denominator = float(np.sum(x_centered ** 2))
    row_means = np.mean(values, axis=-1, keepdims=True)
    slopes = (values - row_means) @ x_centered / denominator
    return values - row_means - slopes[:, None] * x_centered


def _batch_power(values: np.ndarray, interval: float, estimator: NyquistEstimator,
                 fft_workers: int | None = None) -> tuple[np.ndarray, np.ndarray, float]:
    """Raw one-sided power of every row plus the deferred normalisation.

    Returns ``(power, frequencies, scale)`` where ``power / scale`` is the
    physically normalised PSD the scalar path computes.  The division is
    left to the caller because the energy cut-off depends only on ratios.
    """
    n = values.shape[-1]
    if estimator.psd_method == "periodogram":
        if estimator.window == "rectangular":
            tapered, taper_power = values, float(n)
        else:
            taper = window_coefficients(estimator.window, n)
            tapered, taper_power = values * taper, taper_energy(taper)
        power = np.abs(_rfft(tapered, fft_workers))
        np.square(power, out=power)
        if n % 2 == 0:
            power[:, 1:-1] *= 2.0
        else:
            power[:, 1:] *= 2.0
        return power, np.fft.rfftfreq(n, d=interval), n * taper_power
    if estimator.psd_method == "welch":
        window = estimator.window if estimator.window != "rectangular" else "hann"
        batch = batch_welch_psd(values, interval, window=window)
        return batch.power, batch.frequencies, 1.0
    raise ValueError(f"unknown psd_method {estimator.psd_method!r}")


def _constant_estimate(estimator: NyquistEstimator, current_rate: float,
                       duration: float) -> NyquistEstimate:
    # A constant metric needs (essentially) no sampling at all; report the
    # lowest rate the trace itself can witness: one sample per duration.
    lowest = 1.0 / duration
    return NyquistEstimate(
        nyquist_rate=lowest,
        cutoff_frequency=lowest / 2.0,
        current_rate=current_rate,
        energy_fraction=estimator.energy_fraction,
        captured_fraction=1.0,
        total_energy=0.0,
        reliable=True,
        reason="constant trace",
    )


#: Band-to-DC energy ratio below which a row is suspected of being
#: constant.  FFT round-off of a truly constant trace leaves a relative
#: non-DC residue of order ``bins * (n * eps)^2`` (~1e-21 for day-long
#: traces); any genuinely varying quantised trace sits many orders of
#: magnitude above this.
_CONSTANT_SUSPICION: float = 1e-16


def _fast_batch_estimate(matrix: np.ndarray, interval: float, estimator: NyquistEstimator,
                         fft_workers: int | None = None) -> list[NyquistEstimate]:
    """Hot path for the survey defaults: rectangular-window periodogram, DC excluded.

    Runs the FFT over every row up front (constant rows are found from
    their vanishing band energy afterwards, avoiding a full-matrix
    peak-to-peak pass) and never materialises a doubled or normalised
    power matrix -- see the module docstring for why that is sound.  The
    lazy constant check requires the rectangular window: a taper turns a
    constant trace into a varying one whose leakage energy is *not*
    round-off small, so tapered configurations use the generic path.
    """
    rows, n = matrix.shape
    current_rate = 1.0 / interval
    duration = n * interval

    working_values = matrix
    if estimator.detrend:
        working_values = _remove_linear_trend_rows(working_values)
    scale = float(n) * float(n)

    power = np.abs(_rfft(working_values, fft_workers))
    np.square(power, out=power)
    dc = power[:, 0]
    band = power[:, 1:]
    freqs = np.fft.rfftfreq(n, d=interval)[1:]
    bins = freqs.size
    if bins == 0:
        return [_unreliable(estimator, current_rate, "no spectral energy") for _ in range(rows)]

    cumulative = np.cumsum(band, axis=-1)
    totals = cumulative[:, -1].copy()

    # One-sided doubling, folded into per-row scalars: for odd n every
    # compared bin doubles (a no-op for ratios); for even n the Nyquist
    # bin is the only undoubled one, which shifts the energy target by
    # half of it.  ``doubled_totals`` is the sum the scalar path reports.
    threshold = estimator.energy_fraction - 1e-12
    if n % 2 == 0:
        nyquist_bin = band[:, -1]
        doubled_totals = 2.0 * totals - nyquist_bin
        targets = threshold * (totals - 0.5 * nyquist_bin)
    else:
        doubled_totals = 2.0 * totals
        targets = threshold * totals

    # For every row with positive energy the last cumulative value meets
    # the target (threshold <= 1), so argmax of the mask is exactly the
    # scalar searchsorted-and-clamp; zero-energy rows are handled below.
    cutoff_index = (cumulative >= targets[:, None]).argmax(axis=-1)
    cutoff_frequencies = freqs[cutoff_index]
    aliased = (cutoff_index >= bins - 1) | \
        (cutoff_frequencies > estimator.aliased_band_fraction * float(freqs[-1]))
    captured_energy = cumulative[np.arange(rows), cutoff_index]

    energy_fraction = estimator.energy_fraction
    aliased_list = aliased.tolist()
    totals_list = totals.tolist()
    doubled_list = doubled_totals.tolist()
    freq_list = cutoff_frequencies.tolist()
    captured_list = captured_energy.tolist()

    results: list[NyquistEstimate] = []
    for index in range(rows):
        raw_total = totals_list[index]
        if raw_total <= 0:
            results.append(_unreliable(estimator, current_rate, "no spectral energy"))
            continue
        if aliased_list[index]:
            results.append(NyquistEstimate(
                nyquist_rate=ALIASED_SENTINEL,
                cutoff_frequency=None,
                current_rate=current_rate,
                energy_fraction=energy_fraction,
                captured_fraction=1.0,
                total_energy=doubled_list[index] / scale,
                reliable=False,
                reason="all bins needed",
            ))
            continue
        cutoff_frequency = freq_list[index]
        results.append(NyquistEstimate(
            nyquist_rate=2.0 * cutoff_frequency,
            cutoff_frequency=cutoff_frequency,
            current_rate=current_rate,
            energy_fraction=energy_fraction,
            captured_fraction=2.0 * captured_list[index] / doubled_list[index],
            total_energy=doubled_list[index] / scale,
            reliable=True,
        ))

    # Lazy constant detection: only rows whose band energy is round-off
    # relative to DC pay the exact peak-to-peak check the scalar path
    # applies up front.  ``matrix`` (not the detrended copy) is checked,
    # matching the scalar order of operations.
    suspicious = totals <= dc * _CONSTANT_SUSPICION
    if suspicious.any():
        for index in np.flatnonzero(suspicious):
            if np.ptp(matrix[index]) == 0:
                results[index] = _constant_estimate(estimator, current_rate, duration)
    return results


def batch_estimate(values: np.ndarray, interval: float,
                   estimator: NyquistEstimator | None = None,
                   fft_workers: int | None = None) -> list[NyquistEstimate]:
    """Run the Section 3.2 estimator on every row of a trace matrix.

    Parameters
    ----------
    values:
        ``(rows, n)`` matrix; each row is one regularly sampled trace.
        All rows share the same length and sampling interval (group
        heterogeneous fleets with
        :meth:`repro.telemetry.dataset.FleetDataset.trace_batches`).
    interval:
        The common sampling interval in seconds.
    estimator:
        Estimator configuration; defaults to the paper's 99 % settings.
        Every knob (``energy_fraction``, ``include_dc``, ``psd_method``,
        ``min_samples``, ``flat_tolerance``, ``aliased_band_fraction``,
        ``detrend``, ``window``) is honoured.
    fft_workers:
        Number of pocketfft worker threads for the batched ``rfft``
        (scipy's ``workers=``; ignored under the numpy fallback and for
        the Welch path).  Parallelism is across rows, so the per-row
        results are unchanged; the default (``None``) keeps the FFT
        single-threaded, which is right for 1-CPU hosts and for surveys
        already parallelised across worker *processes*.

    Returns
    -------
    list[NyquistEstimate]
        One estimate per row, in row order, equal to what
        ``estimator.estimate`` would return for each trace individually.
    """
    estimator = estimator or NyquistEstimator()
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"values must be a 2-D (rows, samples) matrix, got shape {matrix.shape}")
    if interval <= 0:
        raise ValueError("interval must be positive")
    rows, n = matrix.shape
    if rows == 0:
        return []
    current_rate = 1.0 / interval

    if n < estimator.min_samples:
        return [_unreliable(estimator, current_rate, "trace too short") for _ in range(rows)]

    if (estimator.psd_method == "periodogram" and estimator.window == "rectangular"
            and not estimator.include_dc and estimator.flat_tolerance == 0):
        return _fast_batch_estimate(matrix, interval, estimator, fft_workers)

    constant = _constant_mask(matrix, estimator)
    results: list[NyquistEstimate | None] = [None] * rows
    duration = n * interval
    for index in np.flatnonzero(constant):
        results[index] = _constant_estimate(estimator, current_rate, duration)

    all_active = not constant.any()
    active = np.arange(rows) if all_active else np.flatnonzero(~constant)
    if active.size == 0:
        return results  # type: ignore[return-value]
    working_values = matrix if all_active else matrix[active]
    if estimator.detrend:
        working_values = _remove_linear_trend_rows(working_values)

    power, all_freqs, scale = _batch_power(working_values, interval, estimator, fft_workers)
    if estimator.include_dc or (all_freqs.size and all_freqs[0] != 0.0):
        band_power, freqs = power, all_freqs
    else:
        band_power, freqs = power[:, 1:], all_freqs[1:]
    bins = freqs.size

    if bins == 0:
        for index in active:
            results[index] = _unreliable(estimator, current_rate, "no spectral energy")
        return results  # type: ignore[return-value]

    # Energy cut-off for the whole batch at once.  ``argmax`` of the >=
    # mask is ``searchsorted`` on each row's (non-decreasing) cumulative
    # energy; rows where rounding keeps the captured share below the
    # threshold fall through to the last bin, exactly like the scalar
    # clamp.  Comparing raw cumulative energy against a per-row target
    # avoids normalising the whole matrix.
    totals = np.sum(band_power, axis=-1)
    cumulative = np.cumsum(band_power, axis=-1)
    targets = (estimator.energy_fraction - 1e-12) * totals
    reached = cumulative >= targets[:, None]
    cutoff_index = np.where(reached.any(axis=-1), reached.argmax(axis=-1), bins - 1)

    band_edge = float(freqs[-1])
    cutoff_frequencies = freqs[cutoff_index]
    aliased = (cutoff_index >= bins - 1) | \
        (cutoff_frequencies > estimator.aliased_band_fraction * band_edge)
    captured_energy = cumulative[np.arange(active.size), cutoff_index]
    resolution = float(freqs[1] - freqs[0]) if bins >= 2 else current_rate / 2.0

    for position, index in enumerate(active):
        raw_total = float(totals[position])
        if raw_total <= 0:
            results[index] = _unreliable(estimator, current_rate, "no spectral energy")
            continue
        if aliased[position]:
            results[index] = NyquistEstimate(
                nyquist_rate=ALIASED_SENTINEL,
                cutoff_frequency=None,
                current_rate=current_rate,
                energy_fraction=estimator.energy_fraction,
                captured_fraction=float(cumulative[position, -1]) / raw_total,
                total_energy=raw_total / scale,
                reliable=False,
                reason="all bins needed",
            )
            continue
        cutoff_frequency = float(cutoff_frequencies[position])
        if cutoff_frequency <= 0:
            # All interesting energy is in the first (lowest) bin; the best
            # statement the data supports is "at most one cycle per trace".
            cutoff_frequency = float(freqs[0]) or resolution
        results[index] = NyquistEstimate(
            nyquist_rate=2.0 * cutoff_frequency,
            cutoff_frequency=cutoff_frequency,
            current_rate=current_rate,
            energy_fraction=estimator.energy_fraction,
            captured_fraction=float(captured_energy[position]) / raw_total,
            total_energy=raw_total / scale,
            reliable=True,
        )
    return results  # type: ignore[return-value]
