"""The frozen scenario/fabric/suite presets behind the canonical matrix.

``benchmarks/bench_scenarios.py`` and ``tests/scenarios/`` must agree on
every parameter -- the golden ordering summary and the pinned inversion
cells are only meaningful against one specific matrix.  This module is
that single source of truth.

The tuning is deliberate and empirically verified:

* 12 h traces with a 4 h adaptive window: long enough for the adaptive
  controller to settle and amortize its probe cost, so the *stationary*
  cell reproduces the paper's fixed > nyquist-static > adaptive ordering
  (a 1 h window makes probing overhead invert even the stationary cell).
* ``incident`` shifts at 55% of the trace -- after the controller has
  settled -- so its steady -> probe :class:`~repro.core.adaptive.ModeTransition`
  is a *measured* re-probe latency.
* ``flap-churn`` starts flapping at 30% of the trace, *inside* the
  controller's first window: the controller never gets a quiet window to
  settle in, stays expensive for 70% of the trace, and the adaptive leg
  of the ordering inverts -- the matrix's documented inversion cells.
* ``cal-storm`` lands a broadband incident inside nyquist-static's
  calibration prefix: the ordering still holds, but the static policy's
  saving collapses (its one-shot estimate is inflated for the whole
  trace).
* tones sit at 0.8 of the reference Nyquist frequency, not 1.0 -- a
  sine sampled exactly at Nyquist degenerates to ``(-1)^k sin(phase)``
  and can vanish entirely for unlucky per-pair phases.
"""

from __future__ import annotations

from ..network.monitoring import DeploymentSpec
from ..network.topology import FabricSpec, FatTreeSpec, TopologySpec, WanRingSpec
from ..pipeline.policies import PolicySuite
from .transforms import (BlackoutWindow, CounterPathology, DiurnalCycle, FlappingRegime,
                         RegimeShift, Scenario)

__all__ = ["TRACE_HOURS", "ADAPTIVE_WINDOW_S", "DEFAULT_BLACKOUT", "paper_suite",
           "default_scenarios", "smoke_scenarios", "default_fabrics", "smoke_fabrics"]

#: Trace length (hours) every preset deployment serves.
TRACE_HOURS = 12.0

#: The adaptive controller's re-estimation window (seconds).
ADAPTIVE_WINDOW_S = 4 * 3600.0

#: The blackout window shared by the scenario and its backfill dumps.
DEFAULT_BLACKOUT = BlackoutWindow(start_fraction=0.5, duration_fraction=0.15)


def paper_suite() -> PolicySuite:
    """The three-policy suite every matrix cell is surveyed under."""
    return PolicySuite(production_oversample=4.0, adaptive_window=ADAPTIVE_WINDOW_S)


def default_scenarios() -> list[Scenario]:
    """The canonical scenario rows, in matrix declaration order."""
    return [
        Scenario("stationary", (),
                 "fleet as generated; the paper's own operating point"),
        Scenario("diurnal", (DiurnalCycle(period=6 * 3600.0, amplitude=0.3),),
                 "slow multiplicative load cycle; ordering should hold"),
        Scenario("incident",
                 (RegimeShift(shift_fraction=0.55, frequency_fraction=0.8,
                              amplitude=2.0),),
                 "post-settle regime shift; re-probe latency is measured here"),
        Scenario("cal-storm",
                 (RegimeShift(shift_fraction=0.05, frequency_fraction=0.8,
                              amplitude=3.0),),
                 "broadband incident during static calibration; savings collapse"),
        Scenario("flap-churn",
                 (FlappingRegime(onset_fraction=0.3, period=4 * 3600.0, duty=0.5,
                                 frequency_fraction=0.8, amplitude=2.0),),
                 "recurring regime churn from the first window; adaptive leg inverts"),
        Scenario("faulty-counters", (CounterPathology(),),
                 "counter wraps and reboots promoted from the chaos layer"),
        Scenario("blackout", (DEFAULT_BLACKOUT,),
                 "partition flattens a window; backfill arrives late at ingest"),
    ]


def smoke_scenarios() -> list[Scenario]:
    """The reduced 2-scenario axis for the CI smoke job.

    One cell that must hold (``stationary``) and one that must invert
    (``flap-churn``) -- the two verdicts the matrix exists to separate.
    """
    keep = {"stationary", "flap-churn"}
    return [scenario for scenario in default_scenarios() if scenario.name in keep]


def _deploy(topology: FabricSpec, *, hours: float) -> DeploymentSpec:
    return DeploymentSpec(topology=topology, trace_duration=hours * 3600.0,
                          seed=11, oversample_factor=4.0)


def default_fabrics(*, hours: float = TRACE_HOURS) -> dict[str, DeploymentSpec]:
    """The canonical fabric columns: leaf-spine, 3-tier Clos, WAN ring."""
    return {
        "leaf-spine": _deploy(TopologySpec(num_spines=2, num_leaves=2,
                                           servers_per_leaf=2), hours=hours),
        "fat-tree": _deploy(FatTreeSpec(k=4), hours=hours),
        "wan-ring": _deploy(WanRingSpec(num_sites=3, routers_per_site=1,
                                        servers_per_site=2), hours=hours),
    }


def smoke_fabrics(*, hours: float = TRACE_HOURS) -> dict[str, DeploymentSpec]:
    """The reduced 2-fabric axis for the CI smoke job.

    Leaf-spine (the paper's fabric) plus the WAN ring (asymmetric hop
    pricing) -- the fat-tree column adds pairs, not behaviour.
    """
    fabrics = default_fabrics(hours=hours)
    return {name: fabrics[name] for name in ("leaf-spine", "wan-ring")}
