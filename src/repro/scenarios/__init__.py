"""Scenario library: adversarial workloads x fabrics for the policy tradeoff.

The paper's headline table (fixed > nyquist-static > adaptive cost at
bounded error) is only as strong as the workloads it was checked on.
This package turns "scenario diversity" into a harness:

* :mod:`repro.scenarios.transforms` -- deterministic, picklable
  per-pair transforms (diurnal load cycles, mid-trace regime shifts,
  counter wraps/reboots promoted from the chaos layer, blackout windows
  with late backfill) plus :class:`ScenarioTraceSource`, which serves any
  :class:`~repro.telemetry.source.TraceSource` under a transform stack.
* :mod:`repro.scenarios.backfill` -- the arrival-order half of a
  partition: gNMI dumps whose blackout-window updates arrive late and
  out of order, leaning on the importer's set-determinism.
* :mod:`repro.scenarios.matrix` -- the (scenario x fabric x policy)
  harness: every cell surveyed with ``run_policy_survey``, hop-priced on
  its own fabric, with an ordering verdict and the adaptive controller's
  measured re-probe latency.
"""

from .backfill import export_backfill_dump, shuffled_dump
from .matrix import (ADAPTIVE, FIXED, NYQUIST_STATIC, MatrixCell, MatrixResult,
                     evaluate_cell, run_matrix)
from .presets import (DEFAULT_BLACKOUT, default_fabrics, default_scenarios, paper_suite,
                      smoke_fabrics, smoke_scenarios)
from .transforms import (BlackoutWindow, CounterPathology, DiurnalCycle, FlappingRegime,
                         RegimeShift, Scenario, ScenarioSourceSpec, ScenarioTraceSource,
                         ScenarioTransform, apply_transforms)

__all__ = [
    "ScenarioTransform", "DiurnalCycle", "RegimeShift", "FlappingRegime",
    "CounterPathology",
    "BlackoutWindow", "Scenario", "ScenarioSourceSpec", "ScenarioTraceSource",
    "apply_transforms",
    "export_backfill_dump", "shuffled_dump",
    "FIXED", "NYQUIST_STATIC", "ADAPTIVE",
    "MatrixCell", "MatrixResult", "evaluate_cell", "run_matrix",
    "DEFAULT_BLACKOUT", "paper_suite", "default_scenarios", "smoke_scenarios",
    "default_fabrics", "smoke_fabrics",
]
