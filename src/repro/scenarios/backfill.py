"""Late backfill: blackout-window telemetry arriving out of order at ingest.

A partition does two things to an archive.  It flattens the affected
samples (the collector backfills the gap with the last value it saw --
:class:`~repro.scenarios.transforms.BlackoutWindow` models that), and it
*reorders arrival*: when connectivity returns, the buffered window drains
after updates that were produced later.  This module fabricates that
second half as a gNMI dump whose blackout-window updates are deferred to
the stream's end, so the streaming importer meets a realistic out-of-order
archive.

The importer's contract (``repro.telemetry.ingest``: output depends only
on the update *set*) is exactly what makes late backfill safe -- ingesting
an in-order dump, a late-backfill dump, or an arbitrarily shuffled dump of
the same fleet produces byte-identical directories.  The scenario suite
pins that property with hypothesis-driven shuffles.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..signals.timeseries import TimeSeries
from ..telemetry.ingest import path_for_metric
from ..telemetry.source import TraceSource
from .transforms import BlackoutWindow

__all__ = ["export_backfill_dump", "shuffled_dump"]


def _update_lines(order: int, pair: Any,
                  trace: TimeSeries) -> Iterator[tuple[float, int, str]]:
    """(timestamp, tiebreak, line) updates of one pair, gNMI JSON-lines shaped.

    Identical line bytes to ``export_gnmi_dump``'s emitter: repr floats
    for exact round-trips, json-encoded device and path.
    """
    device_json = json.dumps(pair.key[1])
    path_json = json.dumps(path_for_metric(pair.key[0]))
    times = trace.times()
    for index in range(len(trace)):
        yield (float(times[index]), order,
               f'{{"timestamp": {float(times[index])!r}, "device": {device_json}, '
               f'"path": {path_json}, "value": {float(trace.values[index])!r}}}\n')


def export_backfill_dump(source: TraceSource, path: Path | str,
                         blackout: BlackoutWindow,
                         metrics: Sequence[str] | None = None) -> tuple[Path, int]:
    """Write ``source`` as a gNMI dump whose blackout window arrives late.

    Updates outside the blackout window are emitted globally time-ordered
    (the normal append-only log); updates whose timestamp falls inside
    ``blackout.time_bounds(trace duration)`` are held back and appended
    after the entire in-order stream, themselves time-ordered -- the
    buffered site draining once the partition heals.  Returns the dump
    path and how many updates arrived late.

    The dump contains exactly the same update *set* as
    ``export_gnmi_dump`` would emit, so ingesting it reproduces the
    in-order fleet bit for bit.
    """
    path = Path(path)
    metric_names = list(metrics) if metrics is not None else source.metric_names()

    live_streams = []
    late_streams = []
    order = 0
    for metric_name in metric_names:
        for pair, trace in source.traces(metric_name):
            start, stop = blackout.time_bounds(trace.duration)
            updates = list(_update_lines(order, pair, trace))
            live = [u for u in updates if not start <= u[0] - trace.start_time < stop]
            late = [u for u in updates if start <= u[0] - trace.start_time < stop]
            live_streams.append(live)
            late_streams.append(late)
            order += 1

    deferred = sum(len(stream) for stream in late_streams)
    with path.open("w") as handle:
        for _, _, line in heapq.merge(*live_streams):
            handle.write(line)
        for _, _, line in heapq.merge(*late_streams):
            handle.write(line)
    return path, deferred


def shuffled_dump(src: Path | str, dst: Path | str, seed: int) -> Path:
    """Copy a JSON-lines dump with its lines in a seeded random order.

    The adversarial arrival order for ingest-invariance tests: same
    update set, no order guarantee at all.
    """
    src, dst = Path(src), Path(dst)
    lines = src.read_text().splitlines(keepends=True)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(lines))
    with dst.open("w") as handle:
        for index in permutation:
            handle.write(lines[int(index)])
    return dst
