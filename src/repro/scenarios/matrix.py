"""The scenario matrix: (scenario x fabric x policy) cost-quality verdicts.

One cell = one scenario served over one fabric deployment, surveyed with
:func:`~repro.analysis.policy_survey.run_policy_survey` under the paper's
three-policy suite and priced with the deployment's own hop-count
accountant.  The harness records, per cell:

* the **ordering verdict** -- does the paper's fixed > nyquist-static >
  adaptive-dual-rate total-cost ordering hold, and if not, which leg
  inverted;
* the **cost/quality trajectory** -- per-policy total cost, cost relative
  to the fixed baseline, and mean/worst nrmse;
* the adaptive controller's **re-probe latency** -- for scenarios with a
  regime shift, the measured delay between the shift and the controller's
  first steady -> probe :class:`~repro.core.adaptive.ModeTransition`
  (plus the re-settle time and the per-window rate trajectory), taken
  from an actual controller run on a representative transformed trace.

``benchmarks/bench_scenarios.py`` turns a matrix run into
``BENCH_scenarios.json``; ``tests/scenarios/`` pins which cells must
preserve the ordering bit-for-bit and which are known inversions.

Cells fail loudly rather than degrade: a (scenario, fabric) combination
whose source serves zero (metric, device) pairs raises ``ValueError``
naming the cell -- an empty cell recorded as "ordering holds" would be a
silently meaningless row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.policy_survey import PolicySurveyResult, run_policy_survey
from ..network.cost import TelemetryCostAccountant
from ..network.monitoring import DeploymentSpec
from ..pipeline.events import reprobe_latency, resettle_latency
from ..pipeline.policies import AdaptiveDualRatePolicy, PolicySuite
from ..records import RecordStore
from ..telemetry.source import TraceSource
from .transforms import Scenario

__all__ = ["FIXED", "NYQUIST_STATIC", "ADAPTIVE", "MatrixCell", "MatrixResult",
           "evaluate_cell", "run_matrix"]

#: The paper suite's policy names, in claimed cost order (most expensive first).
FIXED = "fixed"
NYQUIST_STATIC = "nyquist-static"
ADAPTIVE = "adaptive-dual-rate"


@dataclass(frozen=True)
class MatrixCell:
    """Everything the matrix records for one (scenario, fabric) cell."""

    scenario: str
    fabric: str
    points: int
    verdict: str
    holds_paper_ordering: bool
    relative_costs: dict[str, float]
    total_costs: dict[str, float]
    mean_nrmse: dict[str, float]
    worst_nrmse: dict[str, float]
    shift_time_s: float | None
    reprobe_latency_s: float | None
    resettle_latency_s: float | None
    reprobe_fraction: float | None
    adaptive_rate_trajectory: tuple[tuple[float, float], ...]

    @property
    def key(self) -> str:
        return f"{self.scenario}|{self.fabric}"

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready cell record for ``BENCH_scenarios.json``."""
        return {
            "scenario": self.scenario,
            "fabric": self.fabric,
            "points": self.points,
            "verdict": self.verdict,
            "holds_paper_ordering": self.holds_paper_ordering,
            "relative_costs": {name: self.relative_costs[name]
                               for name in sorted(self.relative_costs)},
            "total_costs": {name: self.total_costs[name]
                            for name in sorted(self.total_costs)},
            "mean_nrmse": {name: self.mean_nrmse[name]
                           for name in sorted(self.mean_nrmse)},
            "worst_nrmse": {name: self.worst_nrmse[name]
                            for name in sorted(self.worst_nrmse)},
            "shift_time_s": self.shift_time_s,
            "reprobe_latency_s": self.reprobe_latency_s,
            "resettle_latency_s": self.resettle_latency_s,
            "reprobe_fraction": self.reprobe_fraction,
            "adaptive_rate_trajectory": [[t, rate] for t, rate
                                         in self.adaptive_rate_trajectory],
        }


@dataclass(frozen=True)
class MatrixResult:
    """All cells of one matrix run, in (scenario, fabric) declaration order."""

    cells: tuple[MatrixCell, ...]

    def cell(self, scenario: str, fabric: str) -> MatrixCell:
        for cell in self.cells:
            if cell.scenario == scenario and cell.fabric == fabric:
                return cell
        raise KeyError(f"no cell for scenario {scenario!r} on fabric {fabric!r}")

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready matrix summary keyed ``"<scenario>|<fabric>"``."""
        return {cell.key: cell.to_payload() for cell in self.cells}

    def inversions(self) -> list[MatrixCell]:
        """The cells where the paper ordering does not hold."""
        return [cell for cell in self.cells if not cell.holds_paper_ordering]


# ----------------------------------------------------------------------
def _ordering_verdict(relative: Mapping[str, float]) -> tuple[str, bool]:
    """The cell's ordering verdict from costs relative to the fixed baseline."""
    nyquist = relative[NYQUIST_STATIC]
    adaptive = relative[ADAPTIVE]
    legs: list[str] = []
    if nyquist >= 1.0:
        legs.append(f"{NYQUIST_STATIC} ({nyquist:.3f}x) >= {FIXED}")
    if adaptive >= nyquist:
        legs.append(f"{ADAPTIVE} ({adaptive:.3f}x) >= {NYQUIST_STATIC} "
                    f"({nyquist:.3f}x)")
    if not legs:
        return f"{FIXED} > {NYQUIST_STATIC} > {ADAPTIVE}", True
    return "inversion: " + "; ".join(legs), False


def _adaptive_reaction(scenario: Scenario, source: TraceSource,
                       suite: PolicySuite) -> tuple[float | None, float | None,
                                                    float | None, float | None,
                                                    tuple[tuple[float, float], ...]]:
    """Measure the controller's reaction to the scenario's regime shift.

    Runs the suite's adaptive controller over the first transformed trace
    of *every* metric (per-metric behaviour varies a lot: broadband pairs
    sit pinned at the rate ceiling and can never re-probe) and scores the
    :class:`~repro.core.adaptive.ModeTransition` streams against the known
    shift time -- measured, not inferred from nrmse drift.

    Returns ``(shift time, mean re-probe latency, mean re-settle latency,
    fraction of measured pairs that re-probed, rate trajectory)``.  The
    latency means run over the pairs that reacted at all; the trajectory
    is the first reacting pair's (or the first pair's, when the scenario
    has no shift, in which case the latencies are ``None``).
    """
    adaptive: AdaptiveDualRatePolicy | None = None
    shift: float | None = None
    reprobes: list[float] = []
    resettles: list[float] = []
    measured = 0
    trajectory: tuple[tuple[float, float], ...] = ()
    for metric_name in source.metric_names():
        selected = source.pairs_for_metric(metric_name)
        if not selected:
            continue
        trace = source.load(selected[0])
        if adaptive is None:
            adaptive = next(policy for policy in suite.build(trace.interval)
                            if isinstance(policy, AdaptiveDualRatePolicy))
        run = adaptive.run_controller(trace)
        if not trajectory:
            trajectory = tuple((float(t), float(rate))
                               for t, rate in run.sampling_rates())
        shift = scenario.shift_time(trace.duration)
        if shift is None:
            return None, None, None, None, trajectory
        measured += 1
        noticed = reprobe_latency(run.transitions, shift)
        if noticed is None:
            continue
        if len(reprobes) == 0:
            trajectory = tuple((float(t), float(rate))
                               for t, rate in run.sampling_rates())
        reprobes.append(noticed)
        settled = resettle_latency(run.transitions, shift)
        if settled is not None:
            resettles.append(settled)
    if measured == 0:
        raise ValueError("no (metric, device) pairs to measure the adaptive "
                         "reaction on")
    mean_reprobe = sum(reprobes) / len(reprobes) if reprobes else None
    mean_resettle = sum(resettles) / len(resettles) if resettles else None
    return shift, mean_reprobe, mean_resettle, len(reprobes) / measured, trajectory


def evaluate_cell(scenario: Scenario, fabric_name: str, source: TraceSource,
                  accountant: TelemetryCostAccountant, suite: PolicySuite,
                  *, metrics: Sequence[str] | None = None,
                  limit_per_metric: int | None = None,
                  chunk_size: int = 256, workers: int | None = None,
                  store: RecordStore | None = None) -> MatrixCell:
    """Survey one (scenario, fabric) cell and derive its verdict.

    ``source`` is the *un-transformed* fabric source; the scenario wraps
    it here so caller code cannot accidentally survey a cell under the
    wrong transform stack.  Raises ``ValueError`` for zero-pair cells.
    """
    if len(source.pairs()) == 0:
        raise ValueError(
            f"cell ({scenario.name} x {fabric_name}) has zero (metric, device) "
            "pairs; an empty cell has no cost-quality ordering to record")
    wrapped = scenario.wrap(source)
    result: PolicySurveyResult = run_policy_survey(
        wrapped, suite, accountant=accountant, metrics=metrics,
        limit_per_metric=limit_per_metric, chunk_size=chunk_size,
        workers=workers, store=store)
    relative = result.relative_costs(FIXED)
    verdict, holds = _ordering_verdict(relative)
    rows = {str(row["policy"]): row for row in result.rows()}
    shift, reprobe, resettle, fraction, trajectory = _adaptive_reaction(
        scenario, wrapped, suite)
    return MatrixCell(
        scenario=scenario.name,
        fabric=fabric_name,
        points=int(rows[FIXED]["points"]),
        verdict=verdict,
        holds_paper_ordering=holds,
        relative_costs={name: float(value) for name, value in relative.items()},
        total_costs={name: float(row["total_cost"]) for name, row in rows.items()},
        mean_nrmse={name: float(row["mean_nrmse"]) for name, row in rows.items()},
        worst_nrmse={name: float(row["worst_nrmse"]) for name, row in rows.items()},
        shift_time_s=shift,
        reprobe_latency_s=reprobe,
        resettle_latency_s=resettle,
        reprobe_fraction=fraction,
        adaptive_rate_trajectory=trajectory,
    )


def run_matrix(scenarios: Sequence[Scenario],
               fabrics: Mapping[str, DeploymentSpec], suite: PolicySuite,
               *, metrics: Sequence[str] | None = None,
               limit_per_metric: int | None = None, chunk_size: int = 256,
               workers: int | None = None,
               store: RecordStore | None = None) -> MatrixResult:
    """Run every (scenario, fabric) cell and collect the matrix.

    ``fabrics`` maps a display name to the :class:`DeploymentSpec` whose
    deployment (and hop-priced accountant) the cell runs on.  Cells are
    evaluated in declaration order -- scenarios outer, fabrics inner --
    and the whole run is deterministic at any ``workers`` count because
    both the survey records and the transforms are.
    """
    cells: list[MatrixCell] = []
    for scenario in scenarios:
        for fabric_name, spec in fabrics.items():
            source = spec.open()
            cells.append(evaluate_cell(
                scenario, fabric_name, source, source.accountant(), suite,
                metrics=metrics, limit_per_metric=limit_per_metric,
                chunk_size=chunk_size, workers=workers, store=store))
    return MatrixResult(cells=tuple(cells))
