"""Deterministic scenario transforms: adversarial workloads as pure functions.

The policy survey so far validated the paper's cost ordering on stationary
synthetic traffic.  Real fleets are not stationary: load follows diurnal
cycles, incidents switch a metric's spectral regime in minutes, counters
wrap, devices reboot, and collectors lose sites for whole windows.  A
:class:`ScenarioTransform` models one such behaviour as a *pure function*
``values -> values`` of one reference trace -- seeded per (metric, device)
pair through :func:`repro.faults.stable_digest`, never the process-random
builtin ``hash()`` -- so a scenario fleet regenerates bit-identically in
the parent and in every survey worker.

:class:`ScenarioTraceSource` applies a transform stack to any
:class:`~repro.telemetry.source.TraceSource` at ``load`` time, with a
picklable :class:`ScenarioSourceSpec` worker address and a content token
that folds the transform stack in (a cached record can never be served
across different scenarios).  Transforms preserve trace shape and
interval, so batch grouping, slice addressing and worker-count
byte-equivalence all carry over from the wrapped source unchanged.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..faults.plan import stable_digest
from ..signals.distortions import apply_data_fault, blackout_backfill, window_bounds
from ..signals.timeseries import TimeSeries
from ..telemetry.source import BaseTraceSource, TraceSource, WorkerSpec

__all__ = ["ScenarioTransform", "DiurnalCycle", "RegimeShift", "FlappingRegime",
           "CounterPathology", "BlackoutWindow", "Scenario", "ScenarioSourceSpec",
           "ScenarioTraceSource", "apply_transforms"]

_TWO_PI = 2.0 * math.pi


class ScenarioTransform(abc.ABC):
    """One deterministic workload behaviour applied to reference traces.

    Implementations are frozen dataclasses: hashable (worker source
    caching keys on the spec), picklable (specs cross process boundaries)
    and with a deterministic ``repr`` (content tokens embed it).

    ``apply`` must be pure -- same inputs, same output array -- must not
    mutate ``values``, and must preserve the trace's shape: the survey's
    equal-shape batching, slice addressing and worker-count
    byte-equivalence rely on transformed fleets keeping the wrapped
    fleet's geometry.
    """

    @abc.abstractmethod
    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        """Transformed copy of one pair's reference trace values."""


@dataclass(frozen=True)
class DiurnalCycle(ScenarioTransform):
    """Slow multiplicative load cycle: traffic follows the day.

    Modulates the trace by ``1 + amplitude * sin(2*pi*t/period + phase)``
    with a per-pair phase (sites peak at different local times).  The
    cycle is deliberately far below any catalogue metric's Nyquist rate:
    it changes levels, not bandwidth, so the paper ordering should
    survive it -- that is what the matrix checks.
    """

    period: float = 86400.0
    amplitude: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        phase = _TWO_PI * (stable_digest(self.seed, "diurnal-phase", metric_name,
                                         device_id) / 2.0 ** 64)
        t = np.arange(values.shape[0]) * interval
        return values * (1.0 + self.amplitude * np.sin(_TWO_PI * t / self.period
                                                       + phase))


@dataclass(frozen=True)
class RegimeShift(ScenarioTransform):
    """An incident switches the metric's spectral regime mid-trace.

    From ``shift_fraction`` of the trace onward, a high-frequency
    component at ``frequency_fraction`` of the reference Nyquist
    frequency is added, scaled to ``amplitude`` times the whole trace's
    standard deviation (per-pair phase).  Scaling by the full-trace
    spread (not the pre-shift prefix) keeps the incident's relative
    strength independent of where it lands -- an early shift over a
    slow-moving metric would otherwise be scaled by a near-zero prefix
    std and vanish.  Before the shift the signal is whatever the fleet
    generates; after it, the Nyquist rate jumps.

    This is the scenario that makes the adaptive controller's re-probe
    latency *measurable*: a controller settled on the pre-shift spectrum
    must detect aliasing, re-enter probe mode
    (:class:`~repro.core.adaptive.ModeTransition`) and ramp up -- and the
    dual-stream probing it pays for is exactly what can invert the
    adaptive-cheaper-than-static leg of the paper ordering.
    """

    shift_fraction: float = 0.55
    frequency_fraction: float = 0.5
    amplitude: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.shift_fraction < 1.0:
            raise ValueError("shift_fraction must be in (0, 1)")
        if not 0.0 < self.frequency_fraction <= 1.0:
            raise ValueError("frequency_fraction must be in (0, 1]")
        if self.amplitude <= 0:
            raise ValueError("amplitude must be positive")

    def shift_time(self, duration: float) -> float:
        """Absolute time of the regime shift within a trace of ``duration`` s."""
        return self.shift_fraction * duration

    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        rows = values.shape[0]
        out = values.copy()
        shift = int(round(self.shift_fraction * rows))
        if shift >= rows:
            return out
        base = float(np.std(values)) if rows >= 2 else 0.0
        if not base > 0.0:
            base = 1.0
        phase = _TWO_PI * (stable_digest(self.seed, "regime-phase", metric_name,
                                         device_id) / 2.0 ** 64)
        frequency = self.frequency_fraction / (2.0 * interval)
        t = np.arange(shift, rows) * interval
        out[shift:] += self.amplitude * base * np.sin(_TWO_PI * frequency * t + phase)
        return out


@dataclass(frozen=True)
class FlappingRegime(ScenarioTransform):
    """Recurring incidents: the high-frequency regime comes and goes.

    From ``onset_fraction`` of the trace onward, the
    :class:`RegimeShift`-style high-frequency component is only active
    during the first ``duty`` of every ``period``-second cycle -- a
    metric that keeps switching spectral regimes.  This is the adaptive
    controller's worst case: every flap forces a fresh
    aliasing-detect/probe/settle cycle (dual-stream probing each time),
    while a Nyquist-static policy whose calibration prefix ended before
    the onset keeps polling at its one cheap settled rate and simply eats
    the reconstruction error.  Cells built on this scenario are where the
    paper's adaptive-cheapest leg is *expected* to invert.
    """

    onset_fraction: float = 0.3
    period: float = 4 * 3600.0
    duty: float = 0.5
    frequency_fraction: float = 0.8
    amplitude: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.onset_fraction < 1.0:
            raise ValueError("onset_fraction must be in (0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if not 0.0 < self.frequency_fraction <= 1.0:
            raise ValueError("frequency_fraction must be in (0, 1]")
        if self.amplitude <= 0:
            raise ValueError("amplitude must be positive")

    def shift_time(self, duration: float) -> float:
        """Absolute time of the first flap within a trace of ``duration`` s."""
        return self.onset_fraction * duration

    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        rows = values.shape[0]
        out = values.copy()
        onset = int(round(self.onset_fraction * rows))
        if onset >= rows:
            return out
        base = float(np.std(values)) if rows >= 2 else 0.0
        if not base > 0.0:
            base = 1.0
        phase = _TWO_PI * (stable_digest(self.seed, "flap-phase", metric_name,
                                         device_id) / 2.0 ** 64)
        frequency = self.frequency_fraction / (2.0 * interval)
        t = np.arange(onset, rows) * interval
        active = ((t - onset * interval) % self.period) < self.duty * self.period
        out[onset:] += (self.amplitude * base
                        * np.sin(_TWO_PI * frequency * t + phase) * active)
        return out


@dataclass(frozen=True)
class CounterPathology(ScenarioTransform):
    """Counter wraps and device reboots as workload semantics, not chaos.

    Promotes the PR-7 :data:`~repro.faults.DATA_FAULT_KINDS` distortions
    into a supported scenario: a ``fraction`` of pairs (chosen by the same
    sha256 digest rule as :class:`~repro.faults.FaultPlan`, so assignment
    is process-independent) suffer a counter wrap or a reboot window with
    the canonical seeded placement of
    :func:`repro.signals.distortions.apply_data_fault`.
    """

    kinds: tuple[str, ...] = ("counter-wrap", "device-reboot")
    fraction: float = 0.5
    window_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        allowed = ("counter-wrap", "device-reboot", "blackout")
        unknown = [kind for kind in self.kinds if kind not in allowed]
        if not self.kinds or unknown:
            raise ValueError(f"kinds must be a non-empty subset of {allowed}, "
                             f"got {self.kinds}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 < self.window_fraction < 1.0:
            raise ValueError("window_fraction must be in (0, 1)")

    def kind_for(self, metric_name: str, device_id: str) -> str | None:
        """The pathology this pair suffers, or ``None`` (same rule as FaultPlan)."""
        if self.fraction == 0.0:
            return None
        position = stable_digest(self.seed, "pair", metric_name, device_id) / 2.0 ** 64
        if position >= self.fraction:
            return None
        index = int(position / self.fraction * len(self.kinds))
        return self.kinds[min(index, len(self.kinds) - 1)]

    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        kind = self.kind_for(metric_name, device_id)
        if kind is None:
            return values.copy()
        rng = np.random.default_rng(stable_digest(self.seed, "rng", metric_name,
                                                  device_id))
        return apply_data_fault(kind, values, rng,
                                window_fraction=self.window_fraction)


@dataclass(frozen=True)
class BlackoutWindow(ScenarioTransform):
    """A partition window backfilled late with the last pre-gap value.

    Every pair loses the *same* fractional window (a site-wide partition,
    not a per-device hiccup): samples in ``[start_fraction, start_fraction
    + duration_fraction)`` of the trace are flattened to the last value
    seen before the gap.  The arrival-order half of the story -- those
    samples reaching ingest late and out of order -- is
    :func:`repro.scenarios.backfill.export_backfill_dump`, which defers
    exactly this window's updates to the end of the dump.
    """

    start_fraction: float = 0.5
    duration_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if not 0.0 < self.duration_fraction < 1.0:
            raise ValueError("duration_fraction must be in (0, 1)")
        if self.start_fraction + self.duration_fraction > 1.0:
            raise ValueError("the blackout window must end within the trace")

    def bounds(self, rows: int) -> tuple[int, int]:
        """``[start, stop)`` sample indices of the window in a ``rows``-long trace."""
        start = int(self.start_fraction * rows)
        width = max(1, int(self.duration_fraction * rows))
        return window_bounds(rows, start, width)

    def time_bounds(self, duration: float) -> tuple[float, float]:
        """``[start, stop)`` of the window in seconds for a ``duration``-s trace."""
        return (self.start_fraction * duration,
                (self.start_fraction + self.duration_fraction) * duration)

    def apply(self, values: np.ndarray, interval: float, metric_name: str,
              device_id: str) -> np.ndarray:
        start, stop = self.bounds(values.shape[0])
        return blackout_backfill(values, start, stop - start)


def apply_transforms(transforms: Sequence[ScenarioTransform], values: np.ndarray,
                     interval: float, metric_name: str, device_id: str) -> np.ndarray:
    """Apply a transform stack in order; validates shape preservation."""
    out = values
    for transform in transforms:
        transformed = transform.apply(out, interval, metric_name, device_id)
        if transformed.shape != values.shape:
            raise ValueError(
                f"scenario transform {transform!r} changed the trace shape "
                f"({values.shape} -> {transformed.shape}) for "
                f"{metric_name}@{device_id}; transforms must preserve geometry")
        out = transformed
    return out


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, ordered stack of transforms -- one row of the matrix.

    ``name`` keys the scenario in ``BENCH_scenarios.json`` cells and the
    golden summaries; the empty stack is the stationary baseline.
    """

    name: str
    transforms: tuple[ScenarioTransform, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    def shift_time(self, duration: float) -> float | None:
        """When this scenario's first regime change happens (None: no shift)."""
        for transform in self.transforms:
            if isinstance(transform, (RegimeShift, FlappingRegime)):
                return transform.shift_time(duration)
        return None

    def blackout(self) -> BlackoutWindow | None:
        """This scenario's blackout window, if it has one."""
        for transform in self.transforms:
            if isinstance(transform, BlackoutWindow):
                return transform
        return None

    def wrap(self, source: TraceSource) -> "ScenarioTraceSource":
        """Serve ``source`` with this scenario's transforms applied."""
        return ScenarioTraceSource(source, self.transforms)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSourceSpec:
    """Picklable worker address of a scenario-transformed source.

    Wraps the inner source's spec plus the transform stack; pool workers
    re-open the same scenario because transforms are pure and seeded by
    digest, never by process state.
    """

    inner: WorkerSpec
    transforms: tuple[ScenarioTransform, ...]

    def open(self) -> "ScenarioTraceSource":
        return ScenarioTraceSource(self.inner.open(), self.transforms)


class ScenarioTraceSource(BaseTraceSource):
    """A :class:`TraceSource` decorator applying a scenario transform stack.

    Pair tables, metric order, durations and trace shapes are the inner
    source's; only the trace *values* change, at ``load`` time.  The
    content token folds the transform stack into the inner token, so a
    :class:`~repro.records.RecordStore` never serves one scenario's cached
    records to another.
    """

    def __init__(self, inner: TraceSource,
                 transforms: Sequence[ScenarioTransform]) -> None:
        self.inner = inner
        self.transforms = tuple(transforms)

    # ------------------------- delegation -----------------------------
    def pairs(self) -> Sequence:
        return self.inner.pairs()

    def pairs_for_metric(self, metric_name: str) -> Sequence:
        return self.inner.pairs_for_metric(metric_name)

    def metric_names(self) -> list[str]:
        return self.inner.metric_names()

    @property
    def trace_duration(self) -> float:
        return self.inner.trace_duration

    def worker_spec(self) -> ScenarioSourceSpec:
        return ScenarioSourceSpec(self.inner.worker_spec(), self.transforms)

    def pair_content_token(self, pair: Any) -> str:
        return f"{self.inner.pair_content_token(pair)}|scenario={self.transforms!r}"

    # ------------------------- transformation -------------------------
    def load(self, pair: Any) -> TimeSeries:
        trace = self.inner.load(pair)
        if not self.transforms:
            return trace
        metric_name, device_id = pair.key
        values = apply_transforms(self.transforms, trace.values, trace.interval,
                                  metric_name, device_id)
        return TimeSeries(values, trace.interval, start_time=trace.start_time,
                          name=trace.name)
