"""Time-series containers used throughout the library.

The paper's central abstraction is that every monitored metric is a
discrete-time signal.  Two containers implement that abstraction:

* :class:`TimeSeries` -- a regularly sampled signal (constant sampling
  interval).  This is what the Nyquist estimator, the reconstruction code
  and the adaptive controller operate on.
* :class:`IrregularTimeSeries` -- a signal whose samples are *not*
  equi-distant in time, which is what production monitoring systems
  actually emit (polls are delayed, dropped or duplicated).  Section 3.2 of
  the paper pre-cleans such traces with nearest-neighbour re-sampling; the
  conversion lives in :func:`repro.core.resampling.regularize`.

Both containers are immutable value objects: operations return new
instances rather than mutating in place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["TimeSeries", "IrregularTimeSeries"]


def _as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float64 array, validating shape."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class TimeSeries:
    """A regularly sampled, real-valued discrete-time signal.

    Parameters
    ----------
    values:
        The sample values, in time order.
    interval:
        The (constant) spacing between consecutive samples, in seconds.
    start_time:
        Absolute time of the first sample, in seconds.  Only used for
        aligning windows and for pretty reporting; the spectral code only
        cares about ``interval``.
    name:
        Optional human-readable label (metric name, device id, ...).
    """

    values: np.ndarray
    interval: float
    start_time: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        array = _as_float_array(self.values, "values")
        object.__setattr__(self, "values", array)
        if not math.isfinite(self.interval) or self.interval <= 0:
            raise ValueError(f"interval must be a positive finite number, got {self.interval}")
        if not math.isfinite(self.start_time):
            raise ValueError("start_time must be finite")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def sampling_rate(self) -> float:
        """Sampling rate in Hz (samples per second)."""
        return 1.0 / self.interval

    @property
    def duration(self) -> float:
        """Time covered by the series, in seconds.

        A series of ``n`` samples spans ``n * interval`` seconds: each
        sample represents one polling interval.
        """
        return len(self) * self.interval

    @property
    def end_time(self) -> float:
        """Absolute time just after the last sample."""
        return self.start_time + self.duration

    def times(self) -> np.ndarray:
        """Absolute timestamps of every sample."""
        return self.start_time + np.arange(len(self)) * self.interval

    def is_empty(self) -> bool:
        return len(self) == 0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if len(self) else float("nan")

    def std(self) -> float:
        return float(np.std(self.values)) if len(self) else float("nan")

    def min(self) -> float:
        return float(np.min(self.values)) if len(self) else float("nan")

    def max(self) -> float:
        return float(np.max(self.values)) if len(self) else float("nan")

    def value_range(self) -> float:
        """Peak-to-peak range of the samples (0 for an empty series)."""
        return self.max() - self.min() if len(self) else 0.0

    def energy(self) -> float:
        """Total signal energy, ``sum(x[n] ** 2)``."""
        return float(np.sum(self.values ** 2))

    def power(self) -> float:
        """Mean signal power, ``energy / n``."""
        return self.energy() / len(self) if len(self) else 0.0

    # ------------------------------------------------------------------
    # Transformations (all return new TimeSeries)
    # ------------------------------------------------------------------
    def with_values(self, values: Iterable[float], name: str | None = None) -> "TimeSeries":
        """Return a copy with different sample values (same timing)."""
        return TimeSeries(values=np.asarray(values, dtype=np.float64),
                          interval=self.interval,
                          start_time=self.start_time,
                          name=self.name if name is None else name)

    def with_name(self, name: str) -> "TimeSeries":
        return TimeSeries(self.values, self.interval, self.start_time, name)

    def shift_time(self, offset: float) -> "TimeSeries":
        """Return a copy whose start time is shifted by ``offset`` seconds."""
        return TimeSeries(self.values, self.interval, self.start_time + offset, self.name)

    def detrend(self) -> "TimeSeries":
        """Return a copy with the mean removed."""
        return self.with_values(self.values - self.mean()) if len(self) else self

    def map(self, func: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        """Apply ``func`` to the value array and wrap the result."""
        return self.with_values(np.asarray(func(self.values), dtype=np.float64))

    def clip(self, low: float | None = None, high: float | None = None) -> "TimeSeries":
        return self.with_values(np.clip(self.values, low, high))

    def head(self, n: int) -> "TimeSeries":
        """First ``n`` samples."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return TimeSeries(self.values[:n], self.interval, self.start_time, self.name)

    def tail(self, n: int) -> "TimeSeries":
        """Last ``n`` samples."""
        if n < 0:
            raise ValueError("n must be non-negative")
        start = self.start_time + max(len(self) - n, 0) * self.interval
        return TimeSeries(self.values[len(self) - n:] if n else self.values[len(self):],
                          self.interval, start, self.name)

    def segment(self, start_index: int, stop_index: int) -> "TimeSeries":
        """Samples ``[start_index, stop_index)`` as a new series."""
        if start_index < 0 or stop_index < start_index:
            raise ValueError("invalid segment bounds")
        start_index = min(start_index, len(self))
        stop_index = min(stop_index, len(self))
        return TimeSeries(self.values[start_index:stop_index],
                          self.interval,
                          self.start_time + start_index * self.interval,
                          self.name)

    def window(self, t_start: float, t_stop: float) -> "TimeSeries":
        """Samples whose timestamps fall in ``[t_start, t_stop)``."""
        if t_stop < t_start:
            raise ValueError("t_stop must be >= t_start")
        first = int(math.ceil((t_start - self.start_time) / self.interval))
        last = int(math.ceil((t_stop - self.start_time) / self.interval))
        first = max(first, 0)
        last = max(last, first)
        return self.segment(first, last)

    def iter_window_bounds(self, window: float, step: float) -> Iterator[tuple[int, int]]:
        """Sample-index bounds ``(first, stop)`` of every moving-window position.

        The single source of truth for the Figure 7 window arithmetic:
        both the per-window :meth:`iter_windows` iteration and the
        vectorised sweep of :mod:`repro.core.windowed` consume these
        bounds, so the two backends always analyse byte-for-byte the same
        sample slices (including the ragged positions where rounding makes
        a window one sample shorter or longer than its neighbours).
        Windows that would extend past the end of the series are not
        yielded.
        """
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        n = len(self)
        t = self.start_time
        while t + window <= self.end_time + 1e-9:
            first = max(int(math.ceil((t - self.start_time) / self.interval)), 0)
            last = max(int(math.ceil((t + window - self.start_time) / self.interval)), first)
            yield min(first, n), min(last, n)
            t += step

    def iter_windows(self, window: float, step: float) -> Iterator["TimeSeries"]:
        """Yield successive windows of ``window`` seconds every ``step`` seconds.

        Used by the moving-window Nyquist inference of Figure 7.  Windows
        that would extend past the end of the series are not yielded.
        """
        for first, stop in self.iter_window_bounds(window, step):
            yield self.segment(first, stop)

    def concatenate(self, other: "TimeSeries") -> "TimeSeries":
        """Append ``other`` (same interval) after this series."""
        if not math.isclose(other.interval, self.interval, rel_tol=1e-9):
            raise ValueError("cannot concatenate series with different intervals")
        return TimeSeries(np.concatenate([self.values, other.values]),
                          self.interval, self.start_time, self.name)

    def decimate(self, factor: int) -> "TimeSeries":
        """Keep every ``factor``-th sample (no anti-alias filtering).

        This models what a *monitoring system* does when it simply polls
        less often -- which is exactly the operation whose safety the paper
        analyses.  For filtered down-sampling see
        :func:`repro.core.resampling.downsample`.
        """
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        return TimeSeries(self.values[::factor], self.interval * factor,
                          self.start_time, self.name)

    def to_irregular(self) -> "IrregularTimeSeries":
        """View this series as an irregular one with exact timestamps."""
        return IrregularTimeSeries(self.times(), self.values, self.name)

    # ------------------------------------------------------------------
    # Arithmetic helpers
    # ------------------------------------------------------------------
    def __add__(self, other: "TimeSeries | float") -> "TimeSeries":
        if isinstance(other, TimeSeries):
            self._check_compatible(other)
            return self.with_values(self.values + other.values)
        return self.with_values(self.values + float(other))

    def __sub__(self, other: "TimeSeries | float") -> "TimeSeries":
        if isinstance(other, TimeSeries):
            self._check_compatible(other)
            return self.with_values(self.values - other.values)
        return self.with_values(self.values - float(other))

    def __mul__(self, scalar: float) -> "TimeSeries":
        return self.with_values(self.values * float(scalar))

    def _check_compatible(self, other: "TimeSeries") -> None:
        if len(other) != len(self):
            raise ValueError("series lengths differ")
        if not math.isclose(other.interval, self.interval, rel_tol=1e-9):
            raise ValueError("series intervals differ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return (f"TimeSeries(n={len(self)}, interval={self.interval:g}s, "
                f"rate={self.sampling_rate:g}Hz{label})")


@dataclass(frozen=True)
class IrregularTimeSeries:
    """A signal whose samples carry explicit (possibly uneven) timestamps.

    Production pollers do not produce perfectly periodic samples: polls
    slip, time out or arrive duplicated.  Section 3.2 of the paper
    pre-cleans such traces with nearest-neighbour re-sampling before the
    FFT; :func:`repro.core.resampling.regularize` implements that step.
    """

    timestamps: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        ts = _as_float_array(self.timestamps, "timestamps")
        vs = _as_float_array(self.values, "values")
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must have the same length")
        if len(ts) > 1 and np.any(np.diff(ts) < 0):
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            vs = vs[order]
        object.__setattr__(self, "timestamps", ts)
        object.__setattr__(self, "values", vs)

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    @property
    def start_time(self) -> float:
        return float(self.timestamps[0]) if len(self) else 0.0

    @property
    def end_time(self) -> float:
        return float(self.timestamps[-1]) if len(self) else 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def intervals(self) -> np.ndarray:
        """Gaps between consecutive samples."""
        return np.diff(self.timestamps) if len(self) > 1 else np.empty(0)

    def median_interval(self) -> float:
        """The median inter-sample gap -- the nominal polling interval."""
        gaps = self.intervals()
        if gaps.size == 0:
            raise ValueError("need at least two samples to estimate an interval")
        positive = gaps[gaps > 0]
        if positive.size == 0:
            raise ValueError("all samples share the same timestamp")
        return float(np.median(positive))

    def is_regular(self, tolerance: float = 1e-6) -> bool:
        """True if all gaps equal the median gap to within ``tolerance`` (relative)."""
        gaps = self.intervals()
        if gaps.size == 0:
            return True
        median = self.median_interval()
        return bool(np.all(np.abs(gaps - median) <= tolerance * median))

    def dedupe(self) -> "IrregularTimeSeries":
        """Drop samples that repeat a timestamp (keeping the first occurrence)."""
        if len(self) == 0:
            return self
        keep = np.concatenate([[True], np.diff(self.timestamps) > 0])
        return IrregularTimeSeries(self.timestamps[keep], self.values[keep], self.name)

    def window(self, t_start: float, t_stop: float) -> "IrregularTimeSeries":
        """Samples whose timestamps fall in ``[t_start, t_stop)``."""
        mask = (self.timestamps >= t_start) & (self.timestamps < t_stop)
        return IrregularTimeSeries(self.timestamps[mask], self.values[mask], self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"IrregularTimeSeries(n={len(self)}{label})"
