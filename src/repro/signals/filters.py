"""Simple time-domain and frequency-domain filters.

Reconstruction in the paper (Section 4.3) is "pass the signal through a
low-pass filter (for example, by taking an FFT of the sampled signal,
setting all frequency components above f0 to 0 and then taking the IFFT)".
That FFT brick-wall filter lives here, alongside the standard smoothing
filters used to pre-clean noisy telemetry.
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeries

__all__ = [
    "low_pass_fft",
    "high_pass_fft",
    "moving_average",
    "median_filter",
    "exponential_smoothing",
]


def low_pass_fft(series: TimeSeries, cutoff_hz: float) -> TimeSeries:
    """Brick-wall low-pass filter: zero all FFT bins above ``cutoff_hz``.

    This is exactly the reconstruction filter described in Section 4.3 of
    the paper.  The DC component is always preserved.
    """
    if cutoff_hz < 0:
        raise ValueError("cutoff_hz must be non-negative")
    if len(series) == 0:
        return series
    spectrum = np.fft.rfft(series.values)
    freqs = np.fft.rfftfreq(len(series), d=series.interval)
    spectrum[freqs > cutoff_hz] = 0.0
    filtered = np.fft.irfft(spectrum, n=len(series))
    return series.with_values(filtered)


def high_pass_fft(series: TimeSeries, cutoff_hz: float,
                  keep_dc: bool = False) -> TimeSeries:
    """Brick-wall high-pass filter: zero all FFT bins at or below ``cutoff_hz``.

    Used to isolate the noise/quantisation floor of a trace.
    """
    if cutoff_hz < 0:
        raise ValueError("cutoff_hz must be non-negative")
    if len(series) == 0:
        return series
    spectrum = np.fft.rfft(series.values)
    freqs = np.fft.rfftfreq(len(series), d=series.interval)
    mask = freqs <= cutoff_hz
    if keep_dc:
        mask = mask & (freqs > 0)
    spectrum[mask] = 0.0
    filtered = np.fft.irfft(spectrum, n=len(series))
    return series.with_values(filtered)


def moving_average(series: TimeSeries, window: int) -> TimeSeries:
    """Centred moving average with edge handling by shrinking the window."""
    if window < 1:
        raise ValueError("window must be >= 1")
    if len(series) == 0 or window == 1:
        return series
    kernel = np.ones(window)
    sums = np.convolve(series.values, kernel, mode="same")
    counts = np.convolve(np.ones(len(series)), kernel, mode="same")
    return series.with_values(sums / counts)


def median_filter(series: TimeSeries, window: int) -> TimeSeries:
    """Sliding median -- removes isolated spikes without smearing steps."""
    if window < 1:
        raise ValueError("window must be >= 1")
    n = len(series)
    if n == 0 or window == 1:
        return series
    half = window // 2
    values = series.values
    filtered = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        filtered[i] = np.median(values[lo:hi])
    return series.with_values(filtered)


def exponential_smoothing(series: TimeSeries, alpha: float) -> TimeSeries:
    """Classic EWMA smoothing, ``y[n] = alpha * x[n] + (1 - alpha) * y[n-1]``."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    if len(series) == 0:
        return series
    smoothed = np.empty(len(series))
    smoothed[0] = series.values[0]
    for i in range(1, len(series)):
        smoothed[i] = alpha * series.values[i] + (1.0 - alpha) * smoothed[i - 1]
    return series.with_values(smoothed)
