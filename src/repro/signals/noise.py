"""Noise models and signal-to-noise helpers.

Measurement noise is the main practical obstacle the paper identifies for
Nyquist-rate estimation (the 99 % energy cut-off of Section 3.2 exists to
discard it), so the test-suite and the telemetry generators need explicit,
controllable noise sources.
"""

from __future__ import annotations

import math

import numpy as np

from .timeseries import TimeSeries

__all__ = [
    "white_noise",
    "add_white_noise",
    "add_noise_snr",
    "pink_noise",
    "snr_db",
    "noise_floor_estimate",
]


def white_noise(duration: float, sampling_rate: float, std: float = 1.0,
                mean: float = 0.0, rng: np.random.Generator | None = None,
                name: str = "white_noise") -> TimeSeries:
    """Gaussian white noise -- flat across the whole spectrum."""
    if duration <= 0 or sampling_rate <= 0:
        raise ValueError("duration and sampling_rate must be positive")
    if std < 0:
        raise ValueError("std must be non-negative")
    rng = rng or np.random.default_rng(0)
    n = max(int(round(duration * sampling_rate)), 1)
    values = rng.normal(loc=mean, scale=std, size=n)
    return TimeSeries(values, 1.0 / sampling_rate, name=name)


def add_white_noise(series: TimeSeries, std: float,
                    rng: np.random.Generator | None = None) -> TimeSeries:
    """Return ``series`` with i.i.d. Gaussian noise of ``std`` added."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0 or len(series) == 0:
        return series
    rng = rng or np.random.default_rng(0)
    noisy = series.values + rng.normal(scale=std, size=len(series))
    return series.with_values(noisy)


def add_noise_snr(series: TimeSeries, snr_db_target: float,
                  rng: np.random.Generator | None = None) -> TimeSeries:
    """Add white noise so the result has (approximately) the requested SNR in dB.

    The SNR is computed against the *AC* power of the signal (mean removed),
    matching how measurement noise relates to the interesting variation of
    a metric rather than to its absolute level.
    """
    if len(series) == 0:
        return series
    ac_power = float(np.mean((series.values - np.mean(series.values)) ** 2))
    if ac_power == 0:
        return series
    noise_power = ac_power / (10.0 ** (snr_db_target / 10.0))
    return add_white_noise(series, math.sqrt(noise_power), rng=rng)


def pink_noise(duration: float, sampling_rate: float, std: float = 1.0,
               rng: np.random.Generator | None = None,
               name: str = "pink_noise") -> TimeSeries:
    """Approximate 1/f (pink) noise, built by shaping white noise in frequency.

    Long-range-dependent behaviour is common in network traffic (the paper
    cites the Hurst-parameter literature); pink noise is the standard
    synthetic stand-in.
    """
    if duration <= 0 or sampling_rate <= 0:
        raise ValueError("duration and sampling_rate must be positive")
    rng = rng or np.random.default_rng(0)
    n = max(int(round(duration * sampling_rate)), 1)
    white = rng.normal(size=n)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n, d=1.0 / sampling_rate)
    scale = np.ones_like(freqs)
    nonzero = freqs > 0
    scale[nonzero] = 1.0 / np.sqrt(freqs[nonzero])
    shaped = np.fft.irfft(spectrum * scale, n=n)
    current_std = np.std(shaped)
    if current_std > 0:
        shaped = shaped / current_std * std
    return TimeSeries(shaped, 1.0 / sampling_rate, name=name)


def snr_db(signal: TimeSeries, noisy: TimeSeries) -> float:
    """Signal-to-noise ratio, in dB, of ``noisy`` relative to ``signal``.

    Returns ``inf`` when the two series are identical and ``-inf`` when the
    clean signal has no AC power at all.
    """
    if len(signal) != len(noisy):
        raise ValueError("series lengths differ")
    if len(signal) == 0:
        raise ValueError("series are empty")
    residual = noisy.values - signal.values
    signal_power = float(np.mean((signal.values - np.mean(signal.values)) ** 2))
    noise_power = float(np.mean(residual ** 2))
    if noise_power == 0:
        return math.inf
    if signal_power == 0:
        return -math.inf
    return 10.0 * math.log10(signal_power / noise_power)


def noise_floor_estimate(power: np.ndarray, quantile: float = 0.5) -> float:
    """Estimate the noise floor of a PSD as a robust quantile of its bins.

    The dual-frequency aliasing detector (Section 4.1) needs a threshold
    below which spectral discrepancies are attributed to noise rather than
    to aliased signal components; the median bin power is a standard,
    outlier-robust choice because genuine signal components occupy few bins.
    """
    array = np.asarray(power, dtype=np.float64)
    if array.size == 0:
        return 0.0
    if not 0 <= quantile <= 1:
        raise ValueError("quantile must be in [0, 1]")
    return float(np.quantile(array, quantile))
