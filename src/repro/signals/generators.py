"""Synthetic signal generators.

These are the building blocks both for the unit tests (signals whose
Nyquist rate is known analytically, e.g. pure tones) and for the
illustrative experiments of the paper (Figures 2 and 3 use the
superposition of two sine waves at 400 Hz and 440 Hz).

All generators return :class:`repro.signals.TimeSeries` instances.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .timeseries import TimeSeries

__all__ = [
    "constant",
    "sine",
    "multi_tone",
    "two_tone_figure3",
    "square_wave",
    "sawtooth",
    "chirp",
    "band_limited_noise",
    "random_walk",
    "step_signal",
    "impulse_train",
    "diurnal_pattern",
]


def _time_axis(duration: float, sampling_rate: float) -> tuple[np.ndarray, float]:
    """Return (timestamps, interval) for a signal of ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if sampling_rate <= 0:
        raise ValueError("sampling_rate must be positive")
    interval = 1.0 / sampling_rate
    n = max(int(round(duration * sampling_rate)), 1)
    return np.arange(n) * interval, interval


def constant(value: float, duration: float, sampling_rate: float,
             name: str = "constant") -> TimeSeries:
    """A flat signal.  Its Nyquist rate is (arbitrarily close to) zero."""
    times, interval = _time_axis(duration, sampling_rate)
    return TimeSeries(np.full(times.shape, float(value)), interval, name=name)


def sine(frequency: float, duration: float, sampling_rate: float,
         amplitude: float = 1.0, phase: float = 0.0, offset: float = 0.0,
         name: str = "sine") -> TimeSeries:
    """A single sinusoid; its Nyquist rate is exactly ``2 * frequency``."""
    if frequency < 0:
        raise ValueError("frequency must be non-negative")
    times, interval = _time_axis(duration, sampling_rate)
    values = offset + amplitude * np.sin(2 * math.pi * frequency * times + phase)
    return TimeSeries(values, interval, name=name)


def multi_tone(frequencies: Sequence[float], duration: float, sampling_rate: float,
               amplitudes: Sequence[float] | None = None,
               phases: Sequence[float] | None = None,
               offset: float = 0.0,
               name: str = "multi_tone") -> TimeSeries:
    """A superposition of sinusoids.

    The Nyquist rate of the result is ``2 * max(frequencies)``, which makes
    multi-tone signals the reference workload for estimator accuracy tests.
    """
    freqs = list(frequencies)
    if not freqs:
        raise ValueError("need at least one frequency")
    amps = list(amplitudes) if amplitudes is not None else [1.0] * len(freqs)
    phs = list(phases) if phases is not None else [0.0] * len(freqs)
    if len(amps) != len(freqs) or len(phs) != len(freqs):
        raise ValueError("frequencies, amplitudes and phases must have the same length")
    times, interval = _time_axis(duration, sampling_rate)
    values = np.full(times.shape, float(offset))
    for frequency, amplitude, phase in zip(freqs, amps, phs):
        values = values + amplitude * np.sin(2 * math.pi * frequency * times + phase)
    return TimeSeries(values, interval, name=name)


def two_tone_figure3(duration: float = 1.0, sampling_rate: float = 2000.0) -> TimeSeries:
    """The exact illustrative signal of Figure 3: 400 Hz + 440 Hz tones.

    Sampled at 2000 Hz by default (comfortably above its 880 Hz Nyquist
    rate) so the down-sampling experiments of the figure can be run on it.
    """
    return multi_tone([400.0, 440.0], duration, sampling_rate, name="figure3_two_tone")


def square_wave(frequency: float, duration: float, sampling_rate: float,
                amplitude: float = 1.0, duty_cycle: float = 0.5,
                name: str = "square") -> TimeSeries:
    """A square wave (infinite bandwidth in theory; useful for aliasing tests)."""
    if not 0 < duty_cycle < 1:
        raise ValueError("duty_cycle must be in (0, 1)")
    times, interval = _time_axis(duration, sampling_rate)
    phase = (times * frequency) % 1.0
    values = np.where(phase < duty_cycle, amplitude, -amplitude)
    return TimeSeries(values.astype(np.float64), interval, name=name)


def sawtooth(frequency: float, duration: float, sampling_rate: float,
             amplitude: float = 1.0, name: str = "sawtooth") -> TimeSeries:
    """A rising sawtooth wave."""
    times, interval = _time_axis(duration, sampling_rate)
    phase = (times * frequency) % 1.0
    values = amplitude * (2.0 * phase - 1.0)
    return TimeSeries(values, interval, name=name)


def chirp(f_start: float, f_end: float, duration: float, sampling_rate: float,
          amplitude: float = 1.0, name: str = "chirp") -> TimeSeries:
    """A linear chirp sweeping from ``f_start`` to ``f_end``.

    Chirps exercise the *time-varying* Nyquist-rate case that motivates the
    dynamic sampling controller of Section 4.
    """
    if f_start < 0 or f_end < 0:
        raise ValueError("frequencies must be non-negative")
    times, interval = _time_axis(duration, sampling_rate)
    sweep_rate = (f_end - f_start) / duration
    phase = 2 * math.pi * (f_start * times + 0.5 * sweep_rate * times ** 2)
    return TimeSeries(amplitude * np.sin(phase), interval, name=name)


def band_limited_noise(max_frequency: float, duration: float, sampling_rate: float,
                       amplitude: float = 1.0, rng: np.random.Generator | None = None,
                       name: str = "band_limited_noise") -> TimeSeries:
    """Gaussian noise whose spectrum is confined below ``max_frequency``.

    Constructed directly in the frequency domain: random phases and
    amplitudes below the cut-off, zeros above it.  The resulting signal has
    a hard band limit, so its Nyquist rate is ``2 * max_frequency``.
    """
    if max_frequency <= 0:
        raise ValueError("max_frequency must be positive")
    if max_frequency > sampling_rate / 2:
        raise ValueError("max_frequency must not exceed sampling_rate / 2")
    rng = rng or np.random.default_rng(0)
    times, interval = _time_axis(duration, sampling_rate)
    n = times.shape[0]
    freqs = np.fft.rfftfreq(n, d=interval)
    spectrum = np.zeros(freqs.shape, dtype=np.complex128)
    in_band = (freqs > 0) & (freqs <= max_frequency)
    count = int(np.count_nonzero(in_band))
    if count:
        magnitudes = rng.normal(size=count) + 1j * rng.normal(size=count)
        spectrum[in_band] = magnitudes
    values = np.fft.irfft(spectrum, n=n)
    peak = np.max(np.abs(values)) if n else 0.0
    if peak > 0:
        values = values / peak * amplitude
    return TimeSeries(values, interval, name=name)


def random_walk(duration: float, sampling_rate: float, step_std: float = 1.0,
                start: float = 0.0, rng: np.random.Generator | None = None,
                name: str = "random_walk") -> TimeSeries:
    """A Gaussian random walk (a 1/f^2-style signal, mostly low frequency)."""
    rng = rng or np.random.default_rng(0)
    times, interval = _time_axis(duration, sampling_rate)
    steps = rng.normal(scale=step_std, size=times.shape[0])
    values = start + np.cumsum(steps)
    return TimeSeries(values, interval, name=name)


def step_signal(duration: float, sampling_rate: float, step_time: float,
                low: float = 0.0, high: float = 1.0, name: str = "step") -> TimeSeries:
    """A single level shift at ``step_time`` -- the "first of its kind event" of §4.2."""
    times, interval = _time_axis(duration, sampling_rate)
    values = np.where(times >= step_time, high, low).astype(np.float64)
    return TimeSeries(values, interval, name=name)


def impulse_train(duration: float, sampling_rate: float, period: float,
                  amplitude: float = 1.0, baseline: float = 0.0,
                  name: str = "impulse_train") -> TimeSeries:
    """Periodic spikes on a flat baseline (models bursty error counters)."""
    if period <= 0:
        raise ValueError("period must be positive")
    times, interval = _time_axis(duration, sampling_rate)
    values = np.full(times.shape, float(baseline))
    spike_times = np.arange(0.0, duration, period)
    indices = np.clip(np.round(spike_times / interval).astype(int), 0, len(values) - 1)
    values[indices] = baseline + amplitude
    return TimeSeries(values, interval, name=name)


def diurnal_pattern(duration: float, sampling_rate: float,
                    base: float = 50.0, daily_swing: float = 20.0,
                    harmonics: Sequence[float] = (0.3, 0.1),
                    day_seconds: float = 86400.0,
                    name: str = "diurnal") -> TimeSeries:
    """A slow daily cycle plus harmonics -- the backbone of many datacenter metrics.

    Temperature, CPU utilisation and link utilisation all follow load,
    which follows the day/night cycle; this helper produces that backbone
    which the telemetry models then decorate with noise and events.
    """
    times, interval = _time_axis(duration, sampling_rate)
    base_frequency = 1.0 / day_seconds
    values = np.full(times.shape, float(base))
    values = values + daily_swing * np.sin(2 * math.pi * base_frequency * times)
    for order, fraction in enumerate(harmonics, start=2):
        values = values + daily_swing * fraction * np.sin(2 * math.pi * base_frequency * order * times)
    return TimeSeries(values, interval, name=name)
