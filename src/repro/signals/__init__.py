"""Time-series substrate: containers, generators, noise models and filters."""

from .timeseries import TimeSeries, IrregularTimeSeries
from .spectrum import Spectrum, SpectrumBatch
from .distortions import blackout_backfill, counter_wrap, reboot_window
from . import generators, noise, filters

__all__ = [
    "TimeSeries",
    "IrregularTimeSeries",
    "Spectrum",
    "SpectrumBatch",
    "counter_wrap",
    "reboot_window",
    "blackout_backfill",
    "generators",
    "noise",
    "filters",
]
