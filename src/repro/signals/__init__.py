"""Time-series substrate: containers, generators, noise models and filters."""

from .timeseries import TimeSeries, IrregularTimeSeries
from .spectrum import Spectrum, SpectrumBatch
from . import generators, noise, filters

__all__ = [
    "TimeSeries",
    "IrregularTimeSeries",
    "Spectrum",
    "SpectrumBatch",
    "generators",
    "noise",
    "filters",
]
