"""Frequency-domain representation of a sampled signal.

A :class:`Spectrum` is the output of the PSD estimators in
:mod:`repro.core.psd` and the input of the Nyquist estimator and the
aliasing detector.  It is a thin, immutable wrapper around two arrays
(bin frequencies and per-bin power) plus the sampling rate that produced
them, with the energy-accounting helpers the paper's Section 3.2 method
needs.

:class:`SpectrumBatch` is the fleet-scale counterpart: one shared
frequency grid and a 2-D power matrix holding the PSDs of many
equal-length traces at once.  It is produced by the batched estimators in
:mod:`repro.core.psd` (``batch_periodogram`` / ``batch_welch_psd``) and
consumed by the batched Nyquist engine in :mod:`repro.core.batch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Spectrum", "SpectrumBatch"]


@dataclass(frozen=True)
class Spectrum:
    """One-sided power spectral density of a real signal.

    Parameters
    ----------
    frequencies:
        Bin centre frequencies in Hz, ascending, starting at 0 (DC).
    power:
        Power in each bin (arbitrary units -- only ratios matter for the
        Nyquist estimator).
    sampling_rate:
        The sampling rate of the time-domain signal the spectrum was
        computed from.  The largest representable frequency is
        ``sampling_rate / 2``.
    """

    frequencies: np.ndarray
    power: np.ndarray
    sampling_rate: float

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        power = np.asarray(self.power, dtype=np.float64)
        if freqs.ndim != 1 or power.ndim != 1:
            raise ValueError("frequencies and power must be one-dimensional")
        if freqs.shape != power.shape:
            raise ValueError("frequencies and power must have the same length")
        if freqs.size and np.any(np.diff(freqs) < 0):
            raise ValueError("frequencies must be ascending")
        if np.any(power < -1e-12):
            raise ValueError("power must be non-negative")
        if not math.isfinite(self.sampling_rate) or self.sampling_rate <= 0:
            raise ValueError("sampling_rate must be positive and finite")
        object.__setattr__(self, "frequencies", freqs)
        object.__setattr__(self, "power", np.maximum(power, 0.0))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.frequencies.shape[0])

    @property
    def max_frequency(self) -> float:
        """The Nyquist frequency of the *measurement*, ``sampling_rate / 2``."""
        return self.sampling_rate / 2.0

    @property
    def resolution(self) -> float:
        """Frequency spacing between adjacent bins."""
        if len(self) < 2:
            return self.max_frequency
        return float(self.frequencies[1] - self.frequencies[0])

    def total_energy(self, include_dc: bool = False) -> float:
        """Sum of per-bin power (the paper's "total energy in the signal")."""
        if len(self) == 0:
            return 0.0
        power = self.power if include_dc else self.power[1:] if self.frequencies[0] == 0 else self.power
        return float(np.sum(power))

    def without_dc(self) -> "Spectrum":
        """Return a copy with the DC bin removed (if present)."""
        if len(self) and self.frequencies[0] == 0.0:
            return Spectrum(self.frequencies[1:], self.power[1:], self.sampling_rate)
        return self

    def cumulative_energy(self, include_dc: bool = False) -> np.ndarray:
        """Cumulative per-bin energy in ascending frequency order."""
        spec = self if include_dc else self.without_dc()
        return np.cumsum(spec.power)

    def energy_below(self, frequency: float, include_dc: bool = False) -> float:
        """Energy contained in bins at or below ``frequency``."""
        spec = self if include_dc else self.without_dc()
        mask = spec.frequencies <= frequency + 1e-15
        return float(np.sum(spec.power[mask]))

    def energy_fraction_below(self, frequency: float, include_dc: bool = False) -> float:
        """Fraction of total energy at or below ``frequency`` (0 if spectrum is empty)."""
        total = self.total_energy(include_dc=include_dc)
        if total <= 0:
            return 0.0
        return self.energy_below(frequency, include_dc=include_dc) / total

    def energy_cutoff_frequency(self, fraction: float, include_dc: bool = False) -> float | None:
        """The smallest bin frequency capturing ``fraction`` of the total energy.

        Returns ``None`` when the spectrum has no energy at all.  This is
        the inner loop of the Section 3.2 estimator: accumulate per-bin
        power in ascending frequency order and stop at the first bin whose
        cumulative share reaches ``fraction``.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        spec = self if include_dc else self.without_dc()
        total = float(np.sum(spec.power))
        if total <= 0 or len(spec) == 0:
            return None
        cumulative = np.cumsum(spec.power) / total
        index = int(np.searchsorted(cumulative, fraction - 1e-12))
        index = min(index, len(spec) - 1)
        return float(spec.frequencies[index])

    def dominant_frequency(self, include_dc: bool = False) -> float | None:
        """Frequency of the strongest bin (``None`` for an empty spectrum)."""
        spec = self if include_dc else self.without_dc()
        if len(spec) == 0:
            return None
        return float(spec.frequencies[int(np.argmax(spec.power))])

    def band(self, f_low: float, f_high: float) -> "Spectrum":
        """Bins whose frequency lies in ``[f_low, f_high]``."""
        if f_high < f_low:
            raise ValueError("f_high must be >= f_low")
        mask = (self.frequencies >= f_low - 1e-15) & (self.frequencies <= f_high + 1e-15)
        return Spectrum(self.frequencies[mask], self.power[mask], self.sampling_rate)

    def normalized(self) -> "Spectrum":
        """Scale power so the (non-DC) bins sum to 1."""
        total = self.total_energy(include_dc=False)
        if total <= 0:
            return self
        return Spectrum(self.frequencies, self.power / total, self.sampling_rate)

    def interpolate_power(self, frequencies: Iterable[float]) -> np.ndarray:
        """Linearly interpolate the PSD at arbitrary frequencies.

        Used by the dual-frequency aliasing detector to compare spectra
        computed at different resolutions on a common frequency grid.
        """
        targets = np.asarray(list(frequencies), dtype=np.float64)
        if len(self) == 0:
            return np.zeros_like(targets)
        return np.interp(targets, self.frequencies, self.power, left=self.power[0], right=self.power[-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Spectrum(bins={len(self)}, fs={self.sampling_rate:g}Hz, "
                f"fmax={self.max_frequency:g}Hz)")


@dataclass(frozen=True)
class SpectrumBatch:
    """One-sided PSDs of a batch of equal-length real signals.

    All rows share one sampling rate and therefore one frequency grid, so
    the batch is stored as a single ``(rows, bins)`` power matrix instead
    of ``rows`` separate :class:`Spectrum` objects.  This is the layout the
    batched Nyquist engine (:mod:`repro.core.batch`) reduces over with
    single vectorised ``cumsum``/``argmax`` calls.

    Parameters
    ----------
    frequencies:
        Bin centre frequencies in Hz, ascending, shared by every row.
    power:
        ``(rows, bins)`` matrix of per-bin power, one row per trace.
    sampling_rate:
        The common sampling rate of the time-domain signals.
    """

    frequencies: np.ndarray
    power: np.ndarray
    sampling_rate: float

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        power = np.asarray(self.power, dtype=np.float64)
        if freqs.ndim != 1:
            raise ValueError("frequencies must be one-dimensional")
        if power.ndim != 2:
            raise ValueError("power must be two-dimensional (rows, bins)")
        if power.shape[1] != freqs.shape[0]:
            raise ValueError("power must have one column per frequency bin")
        if freqs.size and np.any(np.diff(freqs) < 0):
            raise ValueError("frequencies must be ascending")
        if np.any(power < -1e-12):
            raise ValueError("power must be non-negative")
        if not math.isfinite(self.sampling_rate) or self.sampling_rate <= 0:
            raise ValueError("sampling_rate must be positive and finite")
        object.__setattr__(self, "frequencies", freqs)
        object.__setattr__(self, "power", np.maximum(power, 0.0))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of traces (rows) in the batch."""
        return int(self.power.shape[0])

    @property
    def bins(self) -> int:
        """Number of frequency bins per row."""
        return int(self.frequencies.shape[0])

    @property
    def max_frequency(self) -> float:
        """The Nyquist frequency of the *measurement*, ``sampling_rate / 2``."""
        return self.sampling_rate / 2.0

    @property
    def resolution(self) -> float:
        """Frequency spacing between adjacent bins."""
        if self.bins < 2:
            return self.max_frequency
        return float(self.frequencies[1] - self.frequencies[0])

    def row(self, index: int) -> Spectrum:
        """The PSD of one trace as a scalar :class:`Spectrum`."""
        return Spectrum(self.frequencies, self.power[index], self.sampling_rate)

    def __iter__(self) -> Iterator[Spectrum]:
        for index in range(len(self)):
            yield self.row(index)

    def without_dc(self) -> "SpectrumBatch":
        """Return a copy with the DC bin column removed (if present)."""
        if self.bins and self.frequencies[0] == 0.0:
            return SpectrumBatch(self.frequencies[1:], self.power[:, 1:], self.sampling_rate)
        return self

    def total_energy(self, include_dc: bool = False) -> np.ndarray:
        """Per-row sum of bin power (the paper's "total energy"), shape ``(rows,)``."""
        batch = self if include_dc else self.without_dc()
        if batch.bins == 0:
            return np.zeros(len(self))
        return np.sum(batch.power, axis=-1)

    def cumulative_energy(self, include_dc: bool = False) -> np.ndarray:
        """Per-row cumulative energy in ascending frequency order, shape ``(rows, bins)``."""
        batch = self if include_dc else self.without_dc()
        return np.cumsum(batch.power, axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpectrumBatch(rows={len(self)}, bins={self.bins}, "
                f"fs={self.sampling_rate:g}Hz)")
