"""Telemetry distortions: counter wraps, device reboots, blackout backfill.

Production counters do not degrade only through random noise -- they wrap
(a 32-bit octet counter rolls over and the poller's rate derivation
re-baselines), the device reboots (a window of samples pinned to the
boot-time level) or the collector loses the device for a while and
backfills the gap afterwards with the last value it saw.  The paper's
cost/quality argument has to survive those pathologies, so they are
modelled here as *pure functions of (values, placement)*: every caller --
the chaos layer's :class:`~repro.faults.FaultInjectingTraceSource`, which
treats them as faults, and :mod:`repro.scenarios`, which treats them as
first-class workload semantics -- applies byte-identical distortions.

All functions return a new array; the input is never mutated.
"""

from __future__ import annotations

import numpy as np

__all__ = ["counter_wrap", "reboot_window", "blackout_backfill", "window_bounds",
           "apply_data_fault"]


def counter_wrap(values: np.ndarray, position: int) -> np.ndarray:
    """Re-baseline everything from ``position`` to the trace's starting level.

    Models a counter reset mid-trace: the level accumulated so far is
    lost, and the poller's samples after the wrap continue from the
    initial level.  The *shape* of the signal after the wrap is preserved
    (rates derived from differences are unaffected except at the wrap
    sample itself), which is exactly how a wrapped counter presents.
    """
    rows = values.shape[0]
    if not 0 <= position <= rows:
        raise ValueError(f"wrap position {position} outside the trace ({rows} samples)")
    out = values.copy()
    if rows == 0 or position >= rows:
        return out
    out[position:] -= out[position] - out[0]
    return out


def reboot_window(values: np.ndarray, start: int, width: int) -> np.ndarray:
    """Pin ``[start, start + width)`` to the boot-time (first-sample) level.

    Models a device reboot: while the device restarts, its management
    plane reports the freshly initialised value instead of the live one.
    """
    start, stop = window_bounds(values.shape[0], start, width)
    out = values.copy()
    if values.shape[0]:
        out[start:stop] = out[0]
    return out


def blackout_backfill(values: np.ndarray, start: int, width: int) -> np.ndarray:
    """Flatten ``[start, start + width)`` to the last value before the gap.

    Models a partition/blackout window with late backfill: the collector
    lost the device, and when connectivity returned the archive was
    backfilled with the last value seen before the gap (the
    "cache-to-the-future" archive shape).  The arrival-order half of the
    scenario -- those samples reaching ingest *late*, out of order --
    lives in :mod:`repro.scenarios.backfill`.
    """
    start, stop = window_bounds(values.shape[0], start, width)
    out = values.copy()
    if values.shape[0]:
        out[start:stop] = out[start]
    return out


def window_bounds(rows: int, start: int, width: int) -> tuple[int, int]:
    """Validated, clipped ``[start, stop)`` bounds of a distortion window."""
    if start < 0:
        raise ValueError(f"window start {start} must be >= 0")
    if width < 1:
        raise ValueError(f"window width {width} must be >= 1")
    start = min(start, max(rows - 1, 0))
    return start, min(start + width, rows)


def apply_data_fault(kind: str, values: np.ndarray, rng: np.random.Generator,
                     window_fraction: float = 0.2) -> np.ndarray:
    """Apply one named distortion with its canonical seeded placement.

    The placement convention (wrap point drawn from the middle half of the
    trace; window start drawn uniformly, window covering
    ``window_fraction`` of the trace) is shared verbatim between the chaos
    layer and the scenario library: both draw from the same per-pair RNG,
    so a ``counter-wrap`` injected as a fault and one declared as workload
    semantics land on identical samples.  The RNG is always advanced the
    same number of draws per kind, keeping downstream draws aligned.
    """
    rows = values.shape[0]
    if kind == "counter-wrap":
        position = int(rng.integers(rows // 4, 3 * rows // 4)) if rows >= 4 else 0
        return counter_wrap(values, position)
    if not 0.0 < window_fraction < 1.0:
        raise ValueError("window_fraction must be in (0, 1)")
    width = max(1, int(window_fraction * rows))
    start = int(rng.integers(0, max(rows - width, 1)))
    if kind == "device-reboot":
        return reboot_window(values, start, width)
    if kind == "blackout":
        return blackout_backfill(values, start, width)
    raise ValueError(f"unknown data fault kind {kind!r}; choose from "
                     "('counter-wrap', 'device-reboot', 'blackout')")
