"""Synthetic production telemetry: the substitute for the paper's proprietary traces."""

from .dataset import PAPER_PAIR_COUNT, DatasetConfig, FleetDataset, TraceBatch, TracePair
from .fleet import DEFAULT_ROLE_MIX, build_fleet, devices_by_role
from .ingest import (EXPORT_FORMATS, GNMI_FORMAT, METRIC_PATHS, SNMP_FORMAT,
                     IngestStats, PairAccumulator, RawUpdate, ShardIngestStats,
                     TelemetryDump, export_gnmi_dump, export_snmp_dump,
                     ingest_dump, open_export, sniff_format)
from .irregular import add_timing_jitter, drop_samples, duplicate_samples, make_irregular
from .measured import (MeasuredDevice, MeasuredFleetDataset, MeasuredPair,
                       MeasuredParameters, MeasuredSourceSpec, export_traces)
from .metrics import (FIGURE4_METRICS, FIGURE5_ORDER, METRIC_CATALOG, MetricFamily,
                      MetricSpec, get_metric, metric_names)
from .models import generate_trace
from .profiles import DeviceProfile, DeviceRole, MetricParameters, draw_metric_parameters
from .source import BaseTraceSource, TraceSource, WorkerSpec
from .shard import ByteRange, plan_byte_ranges, shard_of_key

__all__ = [
    "DatasetConfig", "FleetDataset", "TracePair", "TraceBatch", "PAPER_PAIR_COUNT",
    "TraceSource", "BaseTraceSource", "WorkerSpec",
    "MeasuredFleetDataset", "MeasuredPair", "MeasuredDevice", "MeasuredParameters",
    "MeasuredSourceSpec", "export_traces",
    "GNMI_FORMAT", "SNMP_FORMAT", "EXPORT_FORMATS", "METRIC_PATHS",
    "TelemetryDump", "RawUpdate", "PairAccumulator",
    "IngestStats", "ShardIngestStats",
    "ByteRange", "plan_byte_ranges", "shard_of_key",
    "open_export", "sniff_format", "ingest_dump",
    "export_gnmi_dump", "export_snmp_dump",
    "build_fleet", "devices_by_role", "DEFAULT_ROLE_MIX",
    "METRIC_CATALOG", "MetricSpec", "MetricFamily", "metric_names", "get_metric",
    "FIGURE4_METRICS", "FIGURE5_ORDER",
    "DeviceProfile", "DeviceRole", "MetricParameters", "draw_metric_parameters",
    "generate_trace",
    "add_timing_jitter", "drop_samples", "duplicate_samples", "make_irregular",
]
