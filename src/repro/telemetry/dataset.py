"""The survey dataset: the synthetic counterpart of the paper's 1613 metric-device pairs.

Section 3.2: "In total, we studied 1613 metric and device pairs (14
distinct metrics)."  :class:`FleetDataset` materialises the same survey on
synthetic telemetry: it builds a fleet, assigns each metric to a subset of
devices so the total number of pairs matches the paper, draws per-pair
generative parameters (including the ~11 % broadband pairs), and produces
one day's worth of data per pair at the metric's production polling rate.

Traces are generated lazily so iterating the full survey stays cheap in
memory; everything is deterministic in the dataset seed.  For the batched
spectral engine, :meth:`FleetDataset.trace_batches` (inherited from
:class:`~repro.telemetry.source.BaseTraceSource`) groups traces that
share a (length, interval) shape into bounded-size :class:`TraceBatch`
matrices, so fleet-scale surveys can be analysed one ``rfft`` call per
chunk while memory stays bounded by ``chunk_size`` rows.

:class:`FleetDataset` is one implementation of the
:class:`~repro.telemetry.source.TraceSource` protocol; recorded (measured)
fleets are served by :class:`~repro.telemetry.measured.MeasuredFleetDataset`
through the same interface, and :meth:`FleetDataset.export` round-trips a
synthetic fleet to such a directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..signals.timeseries import TimeSeries
from .fleet import build_fleet
from .metrics import METRIC_CATALOG, MetricSpec
from .models import generate_trace
from .profiles import DeviceProfile, MetricParameters, draw_metric_parameters
from .source import BaseTraceSource, TraceBatch

__all__ = ["DatasetConfig", "TracePair", "TraceBatch", "FleetDataset", "PAPER_PAIR_COUNT"]

#: Number of (metric, device) pairs in the paper's survey.
PAPER_PAIR_COUNT: int = 1613

#: One day of data per pair, as in the paper ("each datapoint is one day's
#: worth of data from a distinct device").
PAPER_TRACE_DURATION: float = 86400.0


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of a survey dataset.

    Attributes
    ----------
    pair_count:
        Total number of (metric, device) pairs; defaults to the paper's 1613.
    trace_duration:
        Length of each trace in seconds (paper: one day).
    metrics:
        Metric names to include; defaults to the full 14-metric catalogue.
    broadband_fraction:
        Fraction of pairs whose traces should look aliased (paper: ~11 %).
    seed:
        Master seed; everything else derives from it deterministically.
    """

    pair_count: int = PAPER_PAIR_COUNT
    trace_duration: float = PAPER_TRACE_DURATION
    metrics: tuple[str, ...] = tuple(METRIC_CATALOG)
    broadband_fraction: float = 0.11
    seed: int = 7

    def __post_init__(self) -> None:
        if self.pair_count < 1:
            raise ValueError("pair_count must be >= 1")
        if self.trace_duration <= 0:
            raise ValueError("trace_duration must be positive")
        if not self.metrics:
            raise ValueError("metrics must not be empty")
        unknown = [name for name in self.metrics if name not in METRIC_CATALOG]
        if unknown:
            raise ValueError(f"unknown metrics: {unknown}")
        if not 0 <= self.broadband_fraction <= 1:
            raise ValueError("broadband_fraction must be in [0, 1]")

    def open(self) -> "FleetDataset":
        """Materialise the dataset this config describes.

        This makes a ``DatasetConfig`` double as the synthetic fleet's
        picklable :class:`~repro.telemetry.source.WorkerSpec`: survey
        workers ship the config across the process boundary and regenerate
        their pair slices locally.
        """
        return FleetDataset(self)


@dataclass(frozen=True)
class TracePair:
    """One (metric, device) pair of the survey, with its generative parameters."""

    metric: MetricSpec
    device: DeviceProfile
    parameters: MetricParameters

    @property
    def key(self) -> tuple[str, str]:
        return (self.metric.name, self.device.device_id)


@dataclass
class FleetDataset(BaseTraceSource):
    """Lazily generated survey dataset over a synthetic fleet."""

    config: DatasetConfig = field(default_factory=DatasetConfig)

    def __post_init__(self) -> None:
        self._pairs: list[TracePair] | None = None

    # ------------------------------------------------------------------
    def _pair_counts_per_metric(self) -> dict[str, int]:
        """Split the total pair budget across metrics as evenly as possible."""
        metrics = self.config.metrics
        base = self.config.pair_count // len(metrics)
        remainder = self.config.pair_count % len(metrics)
        counts = {}
        for index, name in enumerate(metrics):
            counts[name] = base + (1 if index < remainder else 0)
        return counts

    def pairs(self) -> list[TracePair]:
        """All (metric, device) pairs of the survey (cached after first call)."""
        if self._pairs is not None:
            return self._pairs
        counts = self._pair_counts_per_metric()
        fleet = build_fleet(max(counts.values()) if counts else 1, seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed + 1)
        pairs: list[TracePair] = []
        for metric_name in self.config.metrics:
            spec = METRIC_CATALOG[metric_name]
            count = counts[metric_name]
            # Each metric is monitored on its own subset of the fleet: the
            # first `count` devices in a metric-specific random order.
            order = rng.permutation(len(fleet))[:count]
            for device_index in order:
                device = fleet[int(device_index)]
                params = draw_metric_parameters(
                    spec, device, self.config.trace_duration,
                    broadband_fraction=self.config.broadband_fraction,
                    rng=np.random.default_rng(device.metric_seed(metric_name)))
                pairs.append(TracePair(spec, device, params))
        self._pairs = pairs
        return pairs

    def pairs_for_metric(self, metric_name: str) -> list[TracePair]:
        """All pairs belonging to one metric family."""
        return [pair for pair in self.pairs() if pair.metric.name == metric_name]

    @property
    def trace_duration(self) -> float:
        """Nominal trace length in seconds (the config's, paper: one day)."""
        return self.config.trace_duration

    def worker_spec(self) -> DatasetConfig:
        """Picklable worker address: the config the fleet regenerates from."""
        return self.config

    def pair_content_token(self, pair: TracePair) -> str:
        """Identity of one synthetic trace: the config plus the pair's
        generative parameters (every trace is a pure function of both)."""
        return (f"{self.config!r}|{pair.metric.name}|{pair.device.device_id}|"
                f"{pair.parameters!r}")

    # ------------------------------------------------------------------
    def load(self, pair: TracePair, interval: float | None = None) -> TimeSeries:
        """Generate the trace for one pair.

        ``interval`` defaults to the metric's production polling interval
        (what today's monitoring system collects); pass a smaller value to
        obtain a higher-rate reference trace for the same underlying
        parameters.
        """
        rng = np.random.default_rng(pair.parameters.seed)
        return generate_trace(pair.metric, pair.parameters, self.config.trace_duration,
                              interval=interval, rng=rng,
                              device_name=pair.device.device_id)

    def metric_names(self) -> list[str]:
        """Metrics included in this dataset."""
        return list(self.config.metrics)
