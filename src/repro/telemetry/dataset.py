"""The survey dataset: the synthetic counterpart of the paper's 1613 metric-device pairs.

Section 3.2: "In total, we studied 1613 metric and device pairs (14
distinct metrics)."  :class:`FleetDataset` materialises the same survey on
synthetic telemetry: it builds a fleet, assigns each metric to a subset of
devices so the total number of pairs matches the paper, draws per-pair
generative parameters (including the ~11 % broadband pairs), and produces
one day's worth of data per pair at the metric's production polling rate.

Traces are generated lazily so iterating the full survey stays cheap in
memory; everything is deterministic in the dataset seed.  For the batched
spectral engine, :meth:`FleetDataset.trace_batches` groups traces that
share a (length, interval) shape into bounded-size :class:`TraceBatch`
matrices, so fleet-scale surveys can be analysed one ``rfft`` call per
chunk while memory stays bounded by ``chunk_size`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..signals.timeseries import TimeSeries
from .fleet import build_fleet
from .metrics import METRIC_CATALOG, MetricSpec
from .models import generate_trace
from .profiles import DeviceProfile, MetricParameters, draw_metric_parameters

__all__ = ["DatasetConfig", "TracePair", "TraceBatch", "FleetDataset", "PAPER_PAIR_COUNT"]

#: Number of (metric, device) pairs in the paper's survey.
PAPER_PAIR_COUNT: int = 1613

#: One day of data per pair, as in the paper ("each datapoint is one day's
#: worth of data from a distinct device").
PAPER_TRACE_DURATION: float = 86400.0


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of a survey dataset.

    Attributes
    ----------
    pair_count:
        Total number of (metric, device) pairs; defaults to the paper's 1613.
    trace_duration:
        Length of each trace in seconds (paper: one day).
    metrics:
        Metric names to include; defaults to the full 14-metric catalogue.
    broadband_fraction:
        Fraction of pairs whose traces should look aliased (paper: ~11 %).
    seed:
        Master seed; everything else derives from it deterministically.
    """

    pair_count: int = PAPER_PAIR_COUNT
    trace_duration: float = PAPER_TRACE_DURATION
    metrics: tuple[str, ...] = tuple(METRIC_CATALOG)
    broadband_fraction: float = 0.11
    seed: int = 7

    def __post_init__(self) -> None:
        if self.pair_count < 1:
            raise ValueError("pair_count must be >= 1")
        if self.trace_duration <= 0:
            raise ValueError("trace_duration must be positive")
        if not self.metrics:
            raise ValueError("metrics must not be empty")
        unknown = [name for name in self.metrics if name not in METRIC_CATALOG]
        if unknown:
            raise ValueError(f"unknown metrics: {unknown}")
        if not 0 <= self.broadband_fraction <= 1:
            raise ValueError("broadband_fraction must be in [0, 1]")


@dataclass(frozen=True)
class TracePair:
    """One (metric, device) pair of the survey, with its generative parameters."""

    metric: MetricSpec
    device: DeviceProfile
    parameters: MetricParameters

    @property
    def key(self) -> tuple[str, str]:
        return (self.metric.name, self.device.device_id)


@dataclass(frozen=True)
class TraceBatch:
    """A group of equal-shape traces laid out as one matrix.

    Attributes
    ----------
    pairs:
        The (metric, device) pairs behind each row, in row order.
    values:
        ``(len(pairs), n)`` matrix; row ``i`` is the trace of ``pairs[i]``.
    interval:
        The common sampling interval of every row, in seconds.
    """

    pairs: tuple[TracePair, ...]
    values: np.ndarray
    interval: float

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def sampling_rate(self) -> float:
        return 1.0 / self.interval


@dataclass
class FleetDataset:
    """Lazily generated survey dataset over a synthetic fleet."""

    config: DatasetConfig = field(default_factory=DatasetConfig)

    def __post_init__(self) -> None:
        self._pairs: list[TracePair] | None = None

    # ------------------------------------------------------------------
    def _pair_counts_per_metric(self) -> dict[str, int]:
        """Split the total pair budget across metrics as evenly as possible."""
        metrics = self.config.metrics
        base = self.config.pair_count // len(metrics)
        remainder = self.config.pair_count % len(metrics)
        counts = {}
        for index, name in enumerate(metrics):
            counts[name] = base + (1 if index < remainder else 0)
        return counts

    def pairs(self) -> list[TracePair]:
        """All (metric, device) pairs of the survey (cached after first call)."""
        if self._pairs is not None:
            return self._pairs
        counts = self._pair_counts_per_metric()
        fleet = build_fleet(max(counts.values()) if counts else 1, seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed + 1)
        pairs: list[TracePair] = []
        for metric_name in self.config.metrics:
            spec = METRIC_CATALOG[metric_name]
            count = counts[metric_name]
            # Each metric is monitored on its own subset of the fleet: the
            # first `count` devices in a metric-specific random order.
            order = rng.permutation(len(fleet))[:count]
            for device_index in order:
                device = fleet[int(device_index)]
                params = draw_metric_parameters(
                    spec, device, self.config.trace_duration,
                    broadband_fraction=self.config.broadband_fraction,
                    rng=np.random.default_rng(device.metric_seed(metric_name)))
                pairs.append(TracePair(spec, device, params))
        self._pairs = pairs
        return pairs

    def __len__(self) -> int:
        return len(self.pairs())

    def pairs_for_metric(self, metric_name: str) -> list[TracePair]:
        """All pairs belonging to one metric family."""
        return [pair for pair in self.pairs() if pair.metric.name == metric_name]

    # ------------------------------------------------------------------
    def load(self, pair: TracePair, interval: float | None = None) -> TimeSeries:
        """Generate the trace for one pair.

        ``interval`` defaults to the metric's production polling interval
        (what today's monitoring system collects); pass a smaller value to
        obtain a higher-rate reference trace for the same underlying
        parameters.
        """
        rng = np.random.default_rng(pair.parameters.seed)
        return generate_trace(pair.metric, pair.parameters, self.config.trace_duration,
                              interval=interval, rng=rng,
                              device_name=pair.device.device_id)

    def traces(self, metric_name: str | None = None,
               limit: int | None = None,
               offset: int = 0) -> Iterator[tuple[TracePair, TimeSeries]]:
        """Iterate (pair, trace) tuples, optionally restricted to one metric.

        ``offset`` skips that many leading pairs (applied before
        ``limit``), which is how the multi-worker survey pipeline
        addresses disjoint slices of one metric's pair list: each worker
        regenerates only its ``[offset, offset + limit)`` slice locally.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        selected: Sequence[TracePair]
        selected = self.pairs() if metric_name is None else self.pairs_for_metric(metric_name)
        if offset:
            selected = selected[offset:]
        if limit is not None:
            selected = selected[:limit]
        for pair in selected:
            yield pair, self.load(pair)

    def trace_batches(self, metric_name: str | None = None,
                      limit: int | None = None,
                      chunk_size: int = 1024,
                      offset: int = 0) -> Iterator[TraceBatch]:
        """Iterate the survey as equal-shape :class:`TraceBatch` matrices.

        Consecutive traces that share a (length, interval) shape are
        stacked into one ``(rows, n)`` matrix, flushed whenever the shape
        changes or ``chunk_size`` rows are buffered.  This is the feed for
        the batched spectral engine: memory stays bounded at
        ``chunk_size`` traces regardless of fleet size, and concatenating
        the batches' pairs reproduces :meth:`traces` order exactly (within
        one metric every trace shares a shape, so per-metric iteration
        yields contiguous chunks).  ``offset``/``limit`` select a slice of
        the pair list (offset first), so a survey worker slicing the fleet
        at ``chunk_size`` boundaries reproduces exactly the matrices the
        sequential iteration would build.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        buffered_pairs: list[TracePair] = []
        buffered_values: list[np.ndarray] = []
        key: tuple[int, float] | None = None

        def flush() -> Iterator[TraceBatch]:
            if buffered_pairs:
                assert key is not None
                yield TraceBatch(tuple(buffered_pairs), np.vstack(buffered_values), key[1])
                buffered_pairs.clear()
                buffered_values.clear()

        for pair, trace in self.traces(metric_name, limit=limit, offset=offset):
            trace_key = (len(trace), trace.interval)
            if key is not None and (trace_key != key or len(buffered_pairs) >= chunk_size):
                yield from flush()
            key = trace_key
            buffered_pairs.append(pair)
            buffered_values.append(trace.values)
        yield from flush()

    def metric_names(self) -> list[str]:
        """Metrics included in this dataset."""
        return list(self.config.metrics)
