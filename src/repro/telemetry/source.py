"""The trace-source abstraction: one protocol for synthetic and measured fleets.

The survey pipeline does not care where its traces come from.  A
:class:`TraceSource` is anything that can enumerate (metric, device) pairs
and serve their traces -- the synthetic
:class:`~repro.telemetry.dataset.FleetDataset` regenerates them from a
config, while :class:`~repro.telemetry.measured.MeasuredFleetDataset`
streams recorded traces from a directory of per-pair files.  Both run
through ``run_survey(backend="batched", workers=N, sink=...)`` unchanged.

:class:`BaseTraceSource` carries the shared machinery: slice-validated
``traces`` iteration, the equal-shape :class:`TraceBatch` grouping the
batched spectral engine feeds on, and ``export`` (round-trip any source to
a measured-trace directory).  Concrete sources only implement the pair
table, the per-pair loader, and a picklable ``worker_spec`` that the
multi-worker survey ships to its process pool.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Iterator, Literal, Protocol, Sequence,
                    runtime_checkable)

import numpy as np

from ..signals.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (measured imports source)
    from .measured import MeasuredFleetDataset

__all__ = ["TraceBatch", "TraceSource", "WorkerSpec", "BaseTraceSource",
           "batch_offsets"]


def batch_offsets(source: "TraceSource", metric_name: str,
                  limit: int | None = None,
                  chunk_size: int = 1024) -> list[tuple[int, int]]:
    """``(offset, limit)`` slice addresses of one metric at ``chunk_size`` boundaries.

    These are exactly the boundaries the sequential ``trace_batches``
    iteration flushes at (within one metric every trace shares a shape),
    so any execution that works slice by slice -- the multi-worker batch
    specs, the quarantine path's batch-isolation loop -- produces the
    same block boundaries as a sequential run, at any worker count.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    count = len(source.pairs_for_metric(metric_name))
    if limit is not None:
        count = min(count, limit)
    return [(offset, min(chunk_size, count - offset))
            for offset in range(0, count, chunk_size)]


@dataclass(frozen=True)
class TraceBatch:
    """A group of equal-shape traces laid out as one matrix.

    Attributes
    ----------
    pairs:
        The (metric, device) pairs behind each row, in row order.  Each
        pair exposes ``key``, ``device.device_id`` and
        ``parameters.true_nyquist_rate`` regardless of whether it is a
        synthetic :class:`~repro.telemetry.dataset.TracePair` or a
        :class:`~repro.telemetry.measured.MeasuredPair`.
    values:
        ``(len(pairs), n)`` matrix; row ``i`` is the trace of ``pairs[i]``.
    interval:
        The common sampling interval of every row, in seconds.
    """

    pairs: tuple
    values: np.ndarray
    interval: float

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def sampling_rate(self) -> float:
        return 1.0 / self.interval


@runtime_checkable
class WorkerSpec(Protocol):
    """A picklable address of a trace source, shipped to survey workers.

    ``open()`` reconstructs the source inside the worker process: a
    :class:`~repro.telemetry.dataset.DatasetConfig` regenerates its
    synthetic fleet, a
    :class:`~repro.telemetry.measured.MeasuredSourceSpec` re-opens its
    manifest directory.  Specs must be hashable so workers can cache the
    opened source across tasks.
    """

    def open(self) -> "TraceSource": ...


@runtime_checkable
class TraceSource(Protocol):
    """What the survey pipeline requires of a dataset (synthetic or measured)."""

    @property
    def trace_duration(self) -> float: ...

    def pairs(self) -> Sequence: ...

    def pairs_for_metric(self, metric_name: str) -> Sequence: ...

    def metric_names(self) -> list[str]: ...

    def load(self, pair: Any) -> TimeSeries: ...

    def traces(self, metric_name: str | None = None, limit: int | None = None,
               offset: int = 0) -> Iterator[tuple[object, TimeSeries]]: ...

    def trace_batches(self, metric_name: str | None = None, limit: int | None = None,
                      chunk_size: int = 1024, offset: int = 0) -> Iterator[TraceBatch]: ...

    def worker_spec(self) -> WorkerSpec: ...

    def pair_content_token(self, pair: Any) -> str: ...

    def __len__(self) -> int: ...


class BaseTraceSource(ABC):
    """Shared iteration/batching/export machinery of every trace source."""

    # ------------------------------------------------------------------
    # What concrete sources implement
    # ------------------------------------------------------------------
    @abstractmethod
    def pairs(self) -> Sequence:
        """All (metric, device) pairs of the survey, in survey order."""

    @abstractmethod
    def pairs_for_metric(self, metric_name: str) -> Sequence:
        """All pairs belonging to one metric family."""

    @abstractmethod
    def metric_names(self) -> list[str]:
        """Metrics included in this source, in survey order."""

    @abstractmethod
    def load(self, pair: Any) -> TimeSeries:
        """Produce the trace for one pair."""

    @property
    @abstractmethod
    def trace_duration(self) -> float:
        """Nominal length of each trace in seconds."""

    @abstractmethod
    def worker_spec(self) -> WorkerSpec:
        """Picklable spec from which a survey worker re-opens this source."""

    def pair_content_token(self, pair: Any) -> str:
        """Deterministic string identifying one pair's trace *content*.

        The :class:`~repro.records.RecordStore` fingerprints a record
        slice over these tokens: two runs whose tokens (and parameters)
        agree are served the cached bytes, so a token must change whenever
        the pair's trace data can.  The default derives identity from the
        worker-spec repr plus the pair's key -- exact for sources whose
        traces are a pure function of a frozen spec (synthetic fleets,
        deployments).  Sources reading mutable inputs (trace files)
        override it with a content hash.
        """
        metric_name, device_id = pair.key
        return f"{self.worker_spec()!r}|{metric_name}|{device_id}"

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pairs())

    def _select_pairs(self, metric_name: str | None, limit: int | None,
                      offset: int) -> Sequence:
        """Resolve a ``[offset, offset + limit)`` slice of the pair list.

        A bad address fails loudly: an ``offset`` at or past the end of
        the pair list means a worker batch spec no longer matches the
        dataset (or manifest) it was built against, and silently yielding
        nothing would drop records from the survey.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        selected: Sequence
        selected = self.pairs() if metric_name is None else self.pairs_for_metric(metric_name)
        if offset and offset >= len(selected):
            scope = f"metric {metric_name!r}" if metric_name is not None else "the pair list"
            raise ValueError(
                f"offset {offset} is past the end of {scope} ({len(selected)} pairs); "
                "the batch spec does not match this source")
        if offset:
            selected = selected[offset:]
        if limit is not None:
            selected = selected[:limit]
        return selected

    def traces(self, metric_name: str | None = None,
               limit: int | None = None,
               offset: int = 0) -> Iterator[tuple[object, TimeSeries]]:
        """Iterate (pair, trace) tuples, optionally restricted to one metric.

        ``offset`` skips that many leading pairs (applied before
        ``limit``), which is how the multi-worker survey pipeline
        addresses disjoint slices of one metric's pair list: each worker
        serves only its ``[offset, offset + limit)`` slice.  An offset at
        or past the end of the pair list raises ``ValueError`` instead of
        silently yielding nothing.
        """
        for pair in self._select_pairs(metric_name, limit, offset):
            yield pair, self.load(pair)

    def trace_batches(self, metric_name: str | None = None,
                      limit: int | None = None,
                      chunk_size: int = 1024,
                      offset: int = 0) -> Iterator[TraceBatch]:
        """Iterate the survey as equal-shape :class:`TraceBatch` matrices.

        Consecutive traces that share a (length, interval) shape are
        stacked into one ``(rows, n)`` matrix, flushed whenever the shape
        changes or ``chunk_size`` rows are buffered.  This is the feed for
        the batched spectral engine: memory stays bounded at
        ``chunk_size`` traces regardless of fleet size, and concatenating
        the batches' pairs reproduces :meth:`traces` order exactly (within
        one metric every trace shares a shape, so per-metric iteration
        yields contiguous chunks).  ``offset``/``limit`` select a slice of
        the pair list (offset first), so a survey worker slicing the fleet
        at ``chunk_size`` boundaries reproduces exactly the matrices the
        sequential iteration would build.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        buffered_pairs: list = []
        buffered_values: list[np.ndarray] = []
        key: tuple[int, float] | None = None

        def flush() -> Iterator[TraceBatch]:
            if buffered_pairs:
                assert key is not None
                yield TraceBatch(tuple(buffered_pairs), np.vstack(buffered_values), key[1])
                buffered_pairs.clear()
                buffered_values.clear()

        for pair, trace in self.traces(metric_name, limit=limit, offset=offset):
            trace_key = (len(trace), trace.interval)
            if key is not None and (trace_key != key or len(buffered_pairs) >= chunk_size):
                yield from flush()
            key = trace_key
            buffered_pairs.append(pair)
            buffered_values.append(trace.values)
        yield from flush()

    # ------------------------------------------------------------------
    def export(self, directory: Path | str,
               fmt: Literal["npz", "csv"] = "npz") -> "MeasuredFleetDataset":
        """Round-trip this source to a measured-trace directory on disk.

        Writes one trace file per pair plus a ``manifest.json`` of
        (metric, device, interval, length) entries, then re-opens the
        directory as a :class:`~repro.telemetry.measured.MeasuredFleetDataset`
        -- which surveys byte-identically to this source.
        """
        from .measured import MeasuredFleetDataset, export_traces
        export_traces(self, directory, fmt=fmt)
        return MeasuredFleetDataset(directory)

    def export_gnmi_dump(self, path: Path | str,
                         metrics: Sequence[str] | None = None) -> Path:
        """Write this source as an interleaved gNMI-style JSON-lines dump.

        The raw-stream counterpart of :meth:`export`: one
        timestamp/device/path/value update per line, all pairs interleaved
        in global time order.  ``repro.telemetry.ingest`` converts such a
        dump back into a surveyable measured-fleet directory, reproducing
        every trace bit for bit.
        """
        from .ingest import export_gnmi_dump
        return export_gnmi_dump(self, path, metrics=metrics)

    def export_snmp_dump(self, path: Path | str,
                         metrics: Sequence[str] | None = None) -> Path:
        """Write this source as an SNMP-poller wide CSV dump.

        One row per (poll time, device), one column per metric path; the
        other raw-export shape ``repro.telemetry.ingest`` imports.
        """
        from .ingest import export_snmp_dump
        return export_snmp_dump(self, path, metrics=metrics)
