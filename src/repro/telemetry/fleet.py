"""Fleet construction: the population of monitored devices.

The paper's survey coalesces "information from O(10^3) devices" per metric.
:func:`build_fleet` creates a reproducible population of
:class:`~repro.telemetry.profiles.DeviceProfile` objects with a realistic
role mix (ToR / aggregation / core switches and servers); the dataset layer
then decides which metrics are monitored on which devices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .profiles import DeviceProfile, DeviceRole

__all__ = ["DEFAULT_ROLE_MIX", "build_fleet", "devices_by_role"]

#: Fraction of the fleet in each role.  Roughly a 2-tier Clos deployment
#: plus the servers whose CPU/memory metrics the survey includes.
DEFAULT_ROLE_MIX: dict[DeviceRole, float] = {
    DeviceRole.TOR_SWITCH: 0.40,
    DeviceRole.AGGREGATION_SWITCH: 0.15,
    DeviceRole.CORE_SWITCH: 0.05,
    DeviceRole.SERVER: 0.40,
}


def build_fleet(num_devices: int, seed: int = 0,
                role_mix: dict[DeviceRole, float] | None = None) -> list[DeviceProfile]:
    """Create ``num_devices`` device profiles with a fixed role mix.

    The assignment is deterministic for a given ``seed`` so every run of a
    benchmark or test sees the same fleet.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    mix = role_mix or DEFAULT_ROLE_MIX
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("role_mix fractions must sum to a positive value")
    rng = np.random.default_rng(seed)
    roles = list(mix)
    probabilities = np.array([mix[role] for role in roles]) / total
    assignments = rng.choice(len(roles), size=num_devices, p=probabilities)

    fleet = []
    counters = {role: 0 for role in roles}
    for index in range(num_devices):
        role = roles[int(assignments[index])]
        counters[role] += 1
        device_id = f"{role.value}-{counters[role]:04d}"
        fleet.append(DeviceProfile(device_id=device_id, role=role,
                                   seed=int(rng.integers(0, 2 ** 31 - 1))))
    return fleet


def devices_by_role(fleet: Sequence[DeviceProfile], role: DeviceRole) -> list[DeviceProfile]:
    """All devices in ``fleet`` with the given role."""
    return [device for device in fleet if device.role == role]
