"""Device profiles and per-device metric parameters.

The paper's key empirical observation is *heterogeneity*: "Within a metric,
the Nyquist rate varies widely across devices" (Figure 5) -- for
temperature it spans nearly four orders of magnitude.  The fleet generator
therefore draws, for every (metric, device) pair, an independent set of
:class:`MetricParameters` whose ``bandwidth_hz`` is log-uniformly spread
between (roughly) one cycle per trace and the metric's measurement band
edge, with a configurable fraction of pairs made deliberately broadband so
they exercise the estimator's "probably already aliased" path (the ~11 %
of pairs the paper flags as under-sampled / needing inspection).
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass

import numpy as np

from .metrics import MetricSpec

__all__ = ["DeviceRole", "DeviceProfile", "MetricParameters", "draw_metric_parameters"]


class DeviceRole(enum.Enum):
    """Where in the datacenter a device sits (affects level and variability)."""

    TOR_SWITCH = "tor"
    AGGREGATION_SWITCH = "agg"
    CORE_SWITCH = "core"
    SERVER = "server"


@dataclass(frozen=True)
class DeviceProfile:
    """A monitored device: identity, role, and the seed all its traces derive from."""

    device_id: str
    role: DeviceRole
    seed: int

    def metric_seed(self, metric_name: str) -> int:
        """Deterministic per-(device, metric) seed so traces are reproducible.

        Uses a stable digest rather than Python's built-in ``hash``, which
        is salted per process and would make traces differ between runs.
        """
        digest = hashlib.sha256(f"{self.device_id}|{metric_name}|{self.seed}".encode()).digest()
        return int.from_bytes(digest[:4], "little") % (2 ** 31)


@dataclass(frozen=True)
class MetricParameters:
    """Per-(device, metric) generative parameters.

    Attributes
    ----------
    bandwidth_hz:
        Highest frequency at which the *structured* part of the signal has
        appreciable energy; the true Nyquist rate of the underlying metric
        is approximately ``2 * bandwidth_hz``.
    level:
        Baseline value of the metric on this device.
    amplitude:
        Peak magnitude of the structured variation around the baseline.
    noise_std:
        Standard deviation of white measurement noise.
    broadband:
        When True the trace carries significant energy across the whole
        measurable band; the Section 3.2 estimator will (correctly) refuse
        to report a Nyquist rate for it.
    burst_rate_per_day:
        Expected number of error/burst episodes per day (used by the
        error-counter and peak-bandwidth models).
    seed:
        RNG seed for this specific trace.
    """

    bandwidth_hz: float
    level: float
    amplitude: float
    noise_std: float
    broadband: bool
    burst_rate_per_day: float
    seed: int

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")
        if self.amplitude < 0 or self.noise_std < 0:
            raise ValueError("amplitude and noise_std must be non-negative")
        if self.burst_rate_per_day < 0:
            raise ValueError("burst_rate_per_day must be non-negative")

    @property
    def true_nyquist_rate(self) -> float:
        """The Nyquist rate of the structured component, ``2 * bandwidth_hz``."""
        return 2.0 * self.bandwidth_hz


#: Role-dependent scaling of the baseline level: core switches run hotter
#: and carry more traffic than ToR switches or servers.
_ROLE_LEVEL_SCALE = {
    DeviceRole.TOR_SWITCH: 0.8,
    DeviceRole.AGGREGATION_SWITCH: 1.0,
    DeviceRole.CORE_SWITCH: 1.3,
    DeviceRole.SERVER: 0.9,
}


def draw_metric_parameters(spec: MetricSpec, profile: DeviceProfile,
                           trace_duration: float,
                           broadband_fraction: float = 0.11,
                           rng: np.random.Generator | None = None) -> MetricParameters:
    """Draw the generative parameters for one (device, metric) pair.

    Parameters
    ----------
    spec:
        The metric being monitored (sets units, level, polling rate).
    profile:
        The device being monitored (sets the seed and the role scaling).
    trace_duration:
        Length of the trace that will be generated, in seconds.  The lowest
        observable frequency is one cycle per trace, so bandwidths are
        drawn at or above (half of) that.
    broadband_fraction:
        Probability that the pair is broadband (will look aliased to the
        estimator); the paper reports ~11 % of pairs in that category.
    """
    if trace_duration <= 0:
        raise ValueError("trace_duration must be positive")
    if not 0 <= broadband_fraction <= 1:
        raise ValueError("broadband_fraction must be in [0, 1]")
    rng = rng or np.random.default_rng(profile.metric_seed(spec.name))

    # The measurable band of the production poller tops out at half its
    # polling rate; the lowest frequency a trace of this length can show is
    # one cycle per trace.
    band_edge = spec.poll_rate / 2.0
    lowest = 1.0 / trace_duration
    low = min(lowest * 0.5, band_edge * 0.5)
    high = band_edge * 0.8
    if high <= low:
        high = low * 2.0
    # Log-spread with a bias towards slow signals: most devices are stable
    # most of the time, which is what produces the orders-of-magnitude
    # per-device variation of Figure 5 and the heavy-tailed reduction
    # ratios of Figure 4 (a sizeable share of pairs reducible by ~1000x).
    position = float(rng.uniform(0.0, 1.0)) ** 2.8
    bandwidth = float(math.exp(math.log(low) + position * (math.log(high) - math.log(low))))

    level_scale = _ROLE_LEVEL_SCALE[profile.role] * float(rng.uniform(0.7, 1.3))
    level = spec.typical_level * level_scale
    amplitude = max(level * float(rng.uniform(0.15, 0.45)), spec.quantization_step)
    # Measurement noise sits well below the structured variation so the
    # 99 % energy threshold can do its job of discarding it.
    noise_std = amplitude * float(rng.uniform(0.002, 0.01))
    broadband = bool(rng.random() < broadband_fraction)
    burst_rate = float(rng.uniform(2.0, 40.0))

    return MetricParameters(
        bandwidth_hz=bandwidth,
        level=level,
        amplitude=amplitude,
        noise_std=noise_std,
        broadband=broadband,
        burst_rate_per_day=burst_rate,
        seed=profile.metric_seed(spec.name),
    )
