"""Streaming ingestion of raw monitoring exports into surveyable fleet directories.

The pipeline so far only reads fleets it exported itself
(:class:`~repro.telemetry.measured.MeasuredFleetDataset` directories).
Production archives are not shaped like that: monitoring systems dump
*streams* -- model-driven (gNMI) telemetry interleaves updates from many
(metric, device) pairs in one append-only log, and SNMP pollers write wide
per-poll tables.  This module converts both into the measured-fleet
directory layout, so ``run_survey``/``run_policy_survey`` (any backend,
worker count or sink) point at real archives unchanged.

Two wire formats are supported, behind the format-sniffing
:func:`open_export` front end:

* **gNMI-style JSON lines** (``gnmi-jsonl``) -- one update per line, a
  JSON object with ``timestamp`` (seconds), ``device``, ``path`` (a
  YANG-ish metric path, see :data:`METRIC_PATHS`) and ``value``.  Updates
  from many pairs interleave arbitrarily in one stream.
* **SNMP-poller wide CSV** (``snmp-csv``) -- header
  ``timestamp,device,<metric...>`` and one row per poll of one device,
  one column per OID/metric path; empty cells are missed polls.

The importer *streams* with bounded memory: a :class:`PairAccumulator`
buffers per-pair samples and, once its in-memory budget is hit, spills the
largest partial series to per-pair scratch files (the spill idiom of
:mod:`repro.records`, applied to raw samples).  Timestamps in real exports
are irregular -- jittered, duplicated, out of order -- so each pair is
finished through the irregular-trace machinery
(:class:`~repro.signals.timeseries.IrregularTimeSeries` ordering/dedupe +
nearest-neighbour regularisation onto the pair's dominant interval, §3.2's
pre-cleaning); the observed gap/jitter statistics are recorded per pair in
the manifest's ``ingest`` annotations.

Determinism: the output depends only on the *set* of updates in the dump,
never on their order -- pairs land in the manifest in canonical
(metric, device) order, each pair's samples are time-sorted, and
conflicting duplicate timestamps (a retried poll reporting a different
value) resolve to the smallest value -- so re-ingesting a shuffled copy
of a dump produces an identical fleet directory.  Malformed input fails
loudly with a ``ValueError`` naming the file and line.  The same
set-determinism is what lets ``ingest_dump(workers=N)`` hand the dump to
the sharded pipeline (:mod:`repro.telemetry.shard`) -- byte ranges parsed
in parallel, updates routed to per-shard accumulators by a stable
sha256 pair hash -- and still publish a byte-identical directory.

:func:`export_gnmi_dump` / :func:`export_snmp_dump` are the round-trip
emitters (also exposed as :class:`~repro.telemetry.source.BaseTraceSource`
methods): they fabricate realistic dumps from any trace source, which is
how the tests, benchmarks and CI exercise the importer end to end --
ingesting an exported synthetic fleet reproduces its survey records
bit for bit (in canonical pair order; ``true_nyquist_rate`` is ``NaN``
for ingested data, as for any genuinely measured fleet).  One column is
reconstructed rather than copied: a raw stream carries no nominal trace
duration, so the manifest's ``trace_duration`` is the longest pair span
(``samples x interval``) -- identical to the source's whenever its
duration is a whole number of polling intervals (true for every
catalogue metric over the paper's one-day traces), one interval short of
the nominal value otherwise.
"""

from __future__ import annotations

import csv
import heapq
import json
import math
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Iterator, Literal, Sequence)

import numpy as np

from ..signals.timeseries import IrregularTimeSeries, TimeSeries
from ..core.resampling import nearest_neighbor_resample
from ..records import FailureRecord, FailureRecordBlock, RecordSink
from .measured import (MANIFEST_FORMAT, MANIFEST_NAME, TRACE_FORMATS,
                       MeasuredFleetDataset, _save_trace_csv, _save_trace_npz)
from .source import TraceSource

if TYPE_CHECKING:
    from ..faults.execution import RetryPolicy

__all__ = [
    "GNMI_FORMAT",
    "SNMP_FORMAT",
    "EXPORT_FORMATS",
    "METRIC_PATHS",
    "PATH_METRICS",
    "metric_from_path",
    "path_for_metric",
    "RawUpdate",
    "TelemetryDump",
    "open_export",
    "sniff_format",
    "PairAccumulator",
    "IngestStats",
    "ShardIngestStats",
    "ingest_dump",
    "export_gnmi_dump",
    "export_snmp_dump",
    "DEFAULT_MEMORY_BUDGET_SAMPLES",
]

#: Wire-format tags accepted by :func:`open_export` and the CLI.
GNMI_FORMAT = "gnmi-jsonl"
SNMP_FORMAT = "snmp-csv"
EXPORT_FORMATS: tuple[str, ...] = (GNMI_FORMAT, SNMP_FORMAT)

#: Default in-memory accumulator budget, in buffered (timestamp, value)
#: samples across all pairs (each costs 16 bytes of array payload, so the
#: default bounds the accumulator around a few MiB).
DEFAULT_MEMORY_BUDGET_SAMPLES: int = 1 << 18

#: YANG-ish telemetry paths for the metric catalogue -- what
#: :func:`export_gnmi_dump` emits and the importers map back to catalogue
#: names.  Paths outside this table are ingested verbatim as their own
#: metric names (measured fleets accept metrics outside the catalogue).
METRIC_PATHS: dict[str, str] = {
    "5-pct CPU util": "/system/cpus/cpu/state/total/p5",
    "Temperature": "/components/component/state/temperature/instant",
    "Memory usage": "/system/memory/state/utilized-percent",
    "Link util": "/interfaces/interface/state/utilization",
    "Unicast bytes": "/interfaces/interface/state/counters/out-unicast-bytes",
    "Multicast bytes": "/interfaces/interface/state/counters/out-multicast-bytes",
    "Unicast drops": "/interfaces/interface/state/counters/out-unicast-drops",
    "Multicast drops": "/interfaces/interface/state/counters/out-multicast-drops",
    "In-bound discards": "/interfaces/interface/state/counters/in-discards",
    "Out-bound discards": "/interfaces/interface/state/counters/out-discards",
    "FCS errors": "/interfaces/interface/ethernet/state/counters/in-fcs-errors",
    "Lossy paths": "/network-instances/network-instance/paths/state/lossy-count",
    "Peak egress BW": "/interfaces/interface/state/counters/peak-egress-bw",
    "Peak ingress BW": "/interfaces/interface/state/counters/peak-ingress-bw",
}

#: Reverse mapping: telemetry path -> catalogue metric name.
PATH_METRICS: dict[str, str] = {path: name for name, path in METRIC_PATHS.items()}


def metric_from_path(token: str) -> str:
    """Resolve a dump's metric path/column token to a metric name.

    Catalogue paths map to their catalogue names; anything else is used
    verbatim (the measured-fleet layer serves unknown metrics with a
    generic gauge spec at the recorded interval).
    """
    return PATH_METRICS.get(token, token)


def path_for_metric(name: str) -> str:
    """The telemetry path emitted for a metric (verbatim if uncatalogued)."""
    return METRIC_PATHS.get(name, name)


# ----------------------------------------------------------------------
# Reading raw exports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RawUpdate:
    """One parsed telemetry update: a (pair, timestamp, value) sample."""

    timestamp: float
    device: str
    metric: str
    value: float

    @property
    def key(self) -> tuple[str, str]:
        return (self.metric, self.device)


def _require_number(raw: object, what: str, path: Path, line_number: int) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ValueError(f"{path}, line {line_number}: {what} must be a number, "
                         f"got {raw!r}")
    value = float(raw)
    if not math.isfinite(value):
        raise ValueError(f"{path}, line {line_number}: {what} must be finite, "
                         f"got {raw!r}")
    return value


def _require_name(raw: object, what: str, path: Path, line_number: int) -> str:
    if not isinstance(raw, str) or not raw.strip():
        raise ValueError(f"{path}, line {line_number}: {what} must be a non-empty "
                         f"string, got {raw!r}")
    return raw.strip()


_GNMI_FIELDS = ("timestamp", "device", "path", "value")

#: Callback invoked with ``(line_number, error)`` for each malformed line a
#: quarantining reader skips instead of raising.
FailureCallback = Callable[[int, ValueError], None]


def _parse_gnmi_line(stripped: str, path: Path, line_number: int) -> RawUpdate:
    """Parse one gNMI JSON-lines update, raising ``ValueError`` with file + line."""
    try:
        update = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}, line {line_number}: malformed gNMI JSON "
                         f"update ({error.msg}): {stripped[:80]!r}") from error
    if not isinstance(update, dict):
        raise ValueError(f"{path}, line {line_number}: expected a JSON object "
                         f"per update, got {type(update).__name__}")
    missing = [field for field in _GNMI_FIELDS if field not in update]
    if missing:
        raise ValueError(f"{path}, line {line_number}: update is missing "
                         f"field(s) {missing}")
    timestamp = _require_number(update["timestamp"], "'timestamp'", path, line_number)
    value = _require_number(update["value"], "'value'", path, line_number)
    device = _require_name(update["device"], "'device'", path, line_number)
    token = _require_name(update["path"], "'path'", path, line_number)
    return RawUpdate(timestamp, device, metric_from_path(token), value)


def _iter_gnmi_updates(path: Path,
                       record_failure: FailureCallback | None = None,
                       ) -> Iterator[RawUpdate]:
    """Parse a gNMI-style JSON-lines dump, failing loudly with file + line.

    With ``record_failure`` (quarantine mode), a malformed line is
    reported to the callback and skipped instead of aborting the stream;
    every healthy line still parses identically.
    """
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                update = _parse_gnmi_line(stripped, path, line_number)
            except ValueError as error:
                if record_failure is None:
                    raise
                record_failure(line_number, error)
                continue
            yield update


def _parse_snmp_row(row: list[str], header: list[str], metrics: list[str],
                    path: Path, line_number: int) -> list[RawUpdate]:
    """Parse one SNMP CSV data row into updates, raising with file + line.

    The whole row is parsed before anything is returned, so a quarantining
    caller drops the row atomically -- a bad cell never leaks the row's
    earlier cells into the stream.
    """
    if len(row) != len(header):
        raise ValueError(f"{path}, line {line_number}: expected "
                         f"{len(header)} columns, got {len(row)}")
    try:
        timestamp = float(row[0])
    except ValueError:
        raise ValueError(f"{path}, line {line_number}: non-numeric "
                         f"timestamp {row[0]!r}") from None
    if not math.isfinite(timestamp):
        raise ValueError(f"{path}, line {line_number}: timestamp must be "
                         f"finite, got {row[0]!r}")
    device = row[1].strip()
    if not device:
        raise ValueError(f"{path}, line {line_number}: empty device id")
    updates = []
    for metric, cell in zip(metrics, row[2:]):
        cell = cell.strip()
        if not cell:
            continue  # missed poll for this metric
        try:
            value = float(cell)
        except ValueError:
            raise ValueError(
                f"{path}, line {line_number}: non-numeric value {cell!r} in "
                f"column {metric!r}") from None
        if not math.isfinite(value):
            raise ValueError(f"{path}, line {line_number}: value in column "
                             f"{metric!r} must be finite, got {cell!r}")
        updates.append(RawUpdate(timestamp, device, metric, value))
    return updates


def _validate_snmp_header(header: list[str], path: Path,
                          header_line: int) -> list[str]:
    """Validate an SNMP header row and resolve its column metric names.

    Shared by the serial reader and the sharded planner (which parses the
    header once in the parent before fanning ranges out), so both paths
    reject a broken header with the same error.
    """
    if (len(header) < 3 or header[0].strip() != "timestamp"
            or header[1].strip() != "device"):
        raise ValueError(
            f"{path}, line {header_line}: SNMP header must be 'timestamp,device' "
            f"followed by at least one metric column, got {','.join(header)!r}")
    metrics = [metric_from_path(cell.strip()) for cell in header[2:]]
    seen: set[str] = set()
    for metric in metrics:
        if metric in seen:
            raise ValueError(f"{path}, line {header_line}: duplicate metric "
                             f"column {metric!r}")
        seen.add(metric)
    return metrics


def _iter_snmp_updates(path: Path,
                       record_failure: FailureCallback | None = None,
                       ) -> Iterator[RawUpdate]:
    """Parse an SNMP-poller wide CSV dump, failing loudly with file + line.

    With ``record_failure`` (quarantine mode), a malformed *data* row is
    reported and skipped as a whole; header problems always raise -- with
    no usable header the rest of the file cannot be interpreted at all.
    """
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        # The header is the first non-blank row (the gNMI reader likewise
        # skips blank lines, so a sniffable file is always ingestible).
        header = None
        for row in reader:
            if row and any(cell.strip() for cell in row):
                header = row
                break
        if header is None:
            raise ValueError(f"{path}, line 1: empty SNMP export (missing "
                             "'timestamp,device,<metric...>' header)")
        metrics = _validate_snmp_header(header, path, reader.line_num)
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            try:
                updates = _parse_snmp_row(row, header, metrics, path, line_number)
            except ValueError as error:
                if record_failure is None:
                    raise
                record_failure(line_number, error)
                continue
            yield from updates


_UPDATE_ITERATORS = {GNMI_FORMAT: _iter_gnmi_updates, SNMP_FORMAT: _iter_snmp_updates}


def sniff_format(path: Path | str) -> str:
    """Guess the wire format of a dump from its first non-empty line."""
    path = Path(path)
    try:
        with path.open() as handle:
            for line in handle:
                stripped = line.strip()
                if stripped:
                    break
            else:
                stripped = ""
    except OSError as error:
        raise ValueError(f"cannot read telemetry export {path}: {error}") from error
    if not stripped:
        raise ValueError(f"{path}: empty file; cannot sniff the export format")
    if stripped.startswith("{"):
        return GNMI_FORMAT
    first_cells = [cell.strip() for cell in stripped.split(",")]
    if first_cells[:2] == ["timestamp", "device"] and len(first_cells) >= 3:
        return SNMP_FORMAT
    raise ValueError(
        f"{path}: unrecognised export format (line 1: {stripped[:80]!r}); expected "
        "gNMI JSON-lines updates or an SNMP 'timestamp,device,<metric...>' CSV "
        f"header -- pass an explicit format ({', '.join(EXPORT_FORMATS)})")


@dataclass(frozen=True)
class TelemetryDump:
    """A raw monitoring export opened for streaming: path + resolved format."""

    path: Path
    format: str

    def updates(self, record_failure: FailureCallback | None = None,
                ) -> Iterator[RawUpdate]:
        """Stream the dump's updates in file order (one pass, O(1) memory).

        ``record_failure`` switches the reader into quarantine mode:
        malformed lines/rows are reported to the callback and skipped
        instead of raising (structural errors -- an unreadable SNMP
        header -- still raise).
        """
        return _UPDATE_ITERATORS[self.format](self.path, record_failure)


def _has_content(path: Path) -> bool:
    """True when ``path`` holds at least one non-whitespace byte."""
    try:
        with path.open("rb") as handle:
            while chunk := handle.read(1 << 16):
                if chunk.strip():
                    return True
    except OSError as error:
        raise ValueError(f"cannot read telemetry export {path}: {error}") from error
    return False


def open_export(path: Path | str, fmt: str | None = None) -> TelemetryDump:
    """Open a raw monitoring export, sniffing the wire format when not given.

    An empty (or whitespace-only) file is rejected up front with a
    ``ValueError`` naming the path, whether the format was sniffed or
    given explicitly -- there is nothing to ingest either way, and the
    eager check beats an obscure downstream parse failure.
    """
    path = Path(path)
    if fmt is None:
        fmt = sniff_format(path)
    elif fmt not in EXPORT_FORMATS:
        raise ValueError(f"unknown export format {fmt!r}; choose one of "
                         f"{EXPORT_FORMATS} (or omit it to sniff)")
    elif not path.is_file():
        raise ValueError(f"cannot read telemetry export {path}: no such file")
    elif not _has_content(path):
        raise ValueError(f"{path}: empty file (or whitespace only); "
                         f"no {fmt} telemetry to ingest")
    return TelemetryDump(path, fmt)


# ----------------------------------------------------------------------
# Bounded-memory accumulation
# ----------------------------------------------------------------------
class PairAccumulator:
    """Per-pair (timestamp, value) buffers with an overall in-memory budget.

    ``add`` appends one sample to its pair's buffer.  Whenever the total
    buffered sample count reaches ``memory_budget_samples``, the largest
    buffers are spilled -- appended to one little-endian float64
    ``(timestamp, value)`` scratch file per pair -- until at most half the
    budget remains buffered, so peak accumulator memory is bounded by the
    budget no matter how many pairs interleave in the stream or how long
    it runs.  ``samples()`` merges a pair's scratch file with its live
    buffer back into arrays (in arrival order; callers sort).
    """

    _SCRATCH_SUFFIX = ".f8"

    def __init__(self, scratch_dir: Path | str,
                 memory_budget_samples: int = DEFAULT_MEMORY_BUDGET_SAMPLES) -> None:
        if memory_budget_samples < 2:
            raise ValueError("memory_budget_samples must be >= 2")
        self.scratch_dir = Path(scratch_dir)
        self.scratch_dir.mkdir(parents=True, exist_ok=True)
        self.memory_budget_samples = int(memory_budget_samples)
        self._times: dict[tuple[str, str], list[float]] = {}
        self._values: dict[tuple[str, str], list[float]] = {}
        self._scratch: dict[tuple[str, str], Path] = {}
        self._index: dict[tuple[str, str], int] = {}
        self.buffered_samples = 0
        self.peak_buffered_samples = 0
        self.spilled_samples = 0
        self.spill_writes = 0
        self.total_samples = 0

    # ------------------------------------------------------------------
    def add(self, key: tuple[str, str], timestamp: float, value: float) -> None:
        times = self._times.get(key)
        if times is None:
            self._index[key] = len(self._index)
            times = self._times[key] = []
            self._values[key] = []
        times.append(timestamp)
        self._values[key].append(value)
        self.buffered_samples += 1
        self.total_samples += 1
        if self.buffered_samples > self.peak_buffered_samples:
            self.peak_buffered_samples = self.buffered_samples
        if self.buffered_samples >= self.memory_budget_samples:
            self._spill_down_to(self.memory_budget_samples // 2)

    def extend(self, key: tuple[str, str], times: Sequence[float] | np.ndarray,
               values: Sequence[float] | np.ndarray) -> None:
        """Append many samples for one pair, honouring the memory budget.

        Equivalent to calling :meth:`add` per sample (same counters, same
        budget-bounded peak) but amortised for the sharded importer's
        part-file chunks: samples are appended in budget-sized slices
        with one spill check per slice instead of per sample.
        """
        chunk_times = np.asarray(times, dtype=np.float64)
        chunk_values = np.asarray(values, dtype=np.float64)
        if chunk_times.shape != chunk_values.shape or chunk_times.ndim != 1:
            raise ValueError("times and values must be equal-length 1-D arrays")
        buffered_times = self._times.get(key)
        if buffered_times is None:
            self._index[key] = len(self._index)
            buffered_times = self._times[key] = []
            self._values[key] = []
        buffered_values = self._values[key]
        position = 0
        count = int(chunk_times.size)
        while position < count:
            room = max(1, self.memory_budget_samples - self.buffered_samples)
            take = min(count - position, room)
            buffered_times.extend(chunk_times[position:position + take].tolist())
            buffered_values.extend(chunk_values[position:position + take].tolist())
            position += take
            self.buffered_samples += take
            self.total_samples += take
            if self.buffered_samples > self.peak_buffered_samples:
                self.peak_buffered_samples = self.buffered_samples
            if self.buffered_samples >= self.memory_budget_samples:
                self._spill_down_to(self.memory_budget_samples // 2)

    def _spill_down_to(self, target: int) -> None:
        # Largest buffers first: fewest files touched per spill round, and
        # each pair's scratch file grows in few big appends.
        for key in sorted(self._times, key=lambda k: len(self._times[k]), reverse=True):
            if self.buffered_samples <= target:
                break
            self._spill_pair(key)

    def _spill_pair(self, key: tuple[str, str]) -> None:
        times = self._times[key]
        count = len(times)
        if count == 0:
            return
        path = self._scratch.get(key)
        if path is None:
            path = self.scratch_dir / f"pair-{self._index[key]:06d}{self._SCRATCH_SUFFIX}"
            self._scratch[key] = path
        chunk = np.empty((count, 2), dtype="<f8")
        chunk[:, 0] = times
        chunk[:, 1] = self._values[key]
        with path.open("ab") as handle:
            handle.write(chunk.tobytes())
        times.clear()
        self._values[key].clear()
        self.buffered_samples -= count
        self.spilled_samples += count
        self.spill_writes += 1

    # ------------------------------------------------------------------
    def keys(self) -> list[tuple[str, str]]:
        """All (metric, device) keys seen so far, in first-seen order."""
        return list(self._index)

    def sample_count(self, key: tuple[str, str]) -> int:
        spilled = 0
        path = self._scratch.get(key)
        if path is not None:
            spilled = path.stat().st_size // 16
        return spilled + len(self._times.get(key, ()))

    def samples(self, key: tuple[str, str]) -> tuple[np.ndarray, np.ndarray]:
        """One pair's accumulated (timestamps, values), in arrival order."""
        if key not in self._index:
            raise KeyError(key)
        buffered_times = np.asarray(self._times[key], dtype=np.float64)
        buffered_values = np.asarray(self._values[key], dtype=np.float64)
        path = self._scratch.get(key)
        if path is None:
            return buffered_times, buffered_values
        raw = np.fromfile(path, dtype="<f8")
        if raw.size % 2:
            raise ValueError(f"corrupt ingest scratch file {path}: odd sample count")
        spilled = raw.reshape(-1, 2)
        return (np.concatenate([spilled[:, 0], buffered_times]),
                np.concatenate([spilled[:, 1], buffered_values]))

    def close(self) -> None:
        """Delete all scratch files (the accumulator is unusable afterwards)."""
        self._times.clear()
        self._values.clear()
        self._scratch.clear()
        shutil.rmtree(self.scratch_dir, ignore_errors=True)

    def __enter__(self) -> "PairAccumulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Finishing pairs: ordering, dedupe, regularisation, stats
# ----------------------------------------------------------------------
def _finish_pair(metric: str, device: str, times: np.ndarray, values: np.ndarray,
                 min_samples: int) -> tuple[TimeSeries | None, dict]:
    """Turn one pair's raw samples into a regular trace + ingest annotations.

    Returns ``(None, stats)`` when the pair has too few distinct samples
    to serve (it is recorded as skipped in the manifest).  Otherwise the
    samples are time-ordered, duplicate timestamps dropped, and -- if the
    observed gaps deviate from the dominant (median) interval --
    re-sampled onto that interval's regular grid with nearest-neighbour
    values, exactly the §3.2 pre-cleaning.  Already regular streams pass
    through bit for bit.

    Duplicates are resolved by *content*, not stream position: samples
    are sorted by (timestamp, value) and the first of each distinct
    timestamp kept, so a retried poll that reports a conflicting value
    deterministically loses to the smaller one no matter how the two
    updates were interleaved -- shuffled copies of a dump ingest
    identically.
    """
    raw = np.asarray(times, dtype=np.float64)
    raw_values = np.asarray(values, dtype=np.float64)
    order = np.lexsort((raw_values, raw))
    sorted_times = raw[order]
    sorted_values = raw_values[order]
    keep = (np.concatenate([[True], np.diff(sorted_times) > 0])
            if sorted_times.size else np.zeros(0, dtype=bool))
    deduped = IrregularTimeSeries(sorted_times[keep], sorted_values[keep],
                                  name=f"{metric}@{device}")
    stats: dict = {"raw_samples": int(raw.size),
                   "duplicates_dropped": int(raw.size - len(deduped))}
    if len(deduped) < min_samples:
        stats["skipped"] = f"only {len(deduped)} distinct samples (< {min_samples})"
        return None, stats
    interval = deduped.median_interval()
    gaps = deduped.intervals()
    jitter_rms = float(np.sqrt(np.mean((gaps / interval - 1.0) ** 2)))
    stats.update({
        "dominant_interval": interval,
        "jitter_rms_fraction": jitter_rms,
        "max_gap_intervals": float(np.max(gaps) / interval),
    })
    regular = bool(np.all(np.abs(gaps - interval) <= 1e-9 * interval))
    if regular:
        trace = TimeSeries(deduped.values, interval, start_time=deduped.start_time,
                           name=deduped.name)
    else:
        trace = nearest_neighbor_resample(deduped, interval)
    stats["resampled"] = not regular
    stats["samples"] = int(len(trace))
    return trace, stats


# ----------------------------------------------------------------------
# Run statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardIngestStats:
    """One shard's accumulator counters from a sharded (``workers > 1``) ingest."""

    shard: int
    updates: int
    pairs: int
    memory_budget_samples: int
    peak_buffered_samples: int
    spilled_samples: int
    spill_writes: int


@dataclass(frozen=True)
class IngestStats:
    """Run statistics of one :func:`ingest_dump` call.

    These are properties of *how* the run executed (buffering peaks,
    spill traffic, worker fan-out), not of the ingested data, so they
    live on the returned dataset's ``ingest_stats`` attribute rather
    than in the manifest -- the manifest stays byte-identical across
    worker counts.  For a sharded run ``peak_buffered_samples`` is the
    largest *per-shard* accumulator peak (each shard gets
    ``memory_budget_samples / workers``) and ``shards`` carries the
    per-shard breakdown; serial runs leave ``shards`` empty.
    """

    workers: int
    memory_budget_samples: int
    updates: int
    peak_buffered_samples: int
    spilled_samples: int
    spill_writes: int
    ranges: int = 1
    shards: tuple[ShardIngestStats, ...] = field(default=())


# ----------------------------------------------------------------------
# The importer
# ----------------------------------------------------------------------
def ingest_dump(dump: Path | str | TelemetryDump, directory: Path | str,
                fmt: str | None = None,
                memory_budget_samples: int = DEFAULT_MEMORY_BUDGET_SAMPLES,
                min_samples: int = 2,
                trace_format: Literal["npz", "csv"] = "npz",
                on_error: Literal["raise", "quarantine"] = "raise",
                failure_sink: RecordSink | None = None,
                workers: int = 1,
                retry: "RetryPolicy | None" = None,
                retry_sleep: Callable[[float], None] = time.sleep,
                ) -> MeasuredFleetDataset:
    """Stream one raw monitoring export into a measured-fleet directory.

    Parameters
    ----------
    dump:
        The export file (or an already-:func:`open_export`-ed dump); the
        wire format is sniffed unless ``fmt`` names one of
        :data:`EXPORT_FORMATS`.
    directory:
        Destination; must not already hold a measured fleet.  On success
        it contains one trace file per ingested pair plus a
        ``manifest.json`` that :class:`MeasuredFleetDataset` (and hence
        ``repro-monitor survey --from-dir``) opens unchanged; ingest
        provenance (per-pair gap/jitter statistics, the update count and
        quarantined lines) is recorded under its ``ingest`` keys.
        Run-dependent counters (buffering peaks, spill traffic) are *not*
        in the manifest -- they come back on the dataset's
        ``ingest_stats`` attribute -- so the directory's bytes depend
        only on the dump's update set and the ingest parameters.

        The build is *atomic*: everything is staged in a sibling
        ``<directory>.partial`` working directory and only published --
        manifest last -- once the whole ingest has succeeded, so a
        crashed or failed run never leaves a half-built fleet at the
        destination (a stale ``.partial`` from an interrupted run is
        reclaimed by the next attempt).
    memory_budget_samples:
        Peak samples buffered in memory across all pairs (16 bytes each);
        the :class:`PairAccumulator` spills partial series to scratch
        files past it, so arbitrarily large dumps ingest in bounded
        memory.
    min_samples:
        Pairs with fewer *distinct-timestamp* samples are skipped (and
        recorded in the manifest) instead of producing degenerate traces;
        must be at least 2, since a lone sample has no interval.
    trace_format:
        Per-pair trace file format (``npz`` default, or ``csv``).
    on_error:
        ``"raise"`` (default) aborts on the first malformed line;
        ``"quarantine"`` skips malformed lines/rows, records each as a
        :class:`~repro.records.FailureRecord` (stage ``"parse"``,
        provenance ``file:line``) and ingests every healthy update.
        Structural errors (unreadable SNMP header, empty dump) always
        raise.  Quarantined line numbers are also listed in the
        manifest's ``ingest`` summary.
    failure_sink:
        Destination for the quarantined-failure blocks (in-memory or
        spilling); pass one to retain per-line failure records beyond
        the manifest's line-number accounting.
    workers:
        ``1`` (default) ingests serially in-process.  ``N > 1`` runs the
        sharded pipeline (:mod:`repro.telemetry.shard`): the dump is
        split into line-aligned byte ranges parsed in parallel, updates
        are routed to ``N`` shards by a stable sha256 hash of their
        ``(metric, device)`` key, and each shard runs its own
        accumulator + finishing pass with a ``memory_budget_samples /
        N`` budget.  The published directory is **byte-identical** to a
        ``workers=1`` run for any worker count.
    retry, retry_sleep:
        Fault policy for the sharded pipeline's process pools (see
        :func:`repro.faults.execution.run_batch_tasks`); ignored when
        ``workers=1``.  ``retry_sleep`` is injectable so tests skip the
        real backoff waits.

    Raises
    ------
    ValueError
        On malformed input (naming the file and line), a used destination
        directory, or a dump with no ingestible pairs.

    The returned dataset carries the run's accumulator counters (peak
    buffered samples, spill traffic, worker fan-out) on its
    ``ingest_stats`` attribute -- see :class:`IngestStats`.
    """
    if not isinstance(dump, TelemetryDump):
        dump = open_export(dump, fmt)
    elif fmt is not None and fmt != dump.format:
        raise ValueError(f"dump was opened as {dump.format!r}; cannot re-read as {fmt!r}")
    if trace_format not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {trace_format!r}; "
                         f"choose one of {TRACE_FORMATS}")
    if min_samples < 2:
        raise ValueError("min_samples must be >= 2 (a lone sample has no interval)")
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"on_error must be 'raise' or 'quarantine', got {on_error!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if failure_sink is not None and failure_sink.rows > 0:
        raise ValueError(
            f"failure_sink already holds {failure_sink.rows} records; ingest_dump "
            "needs an empty failure sink")
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if directory.exists() and not directory.is_dir():
        raise ValueError(f"ingest destination {directory} exists and is not a directory")
    if manifest_path.exists():
        raise ValueError(f"{directory} already holds a measured fleet "
                         f"({MANIFEST_NAME} exists); ingest needs a fresh directory")
    staging = directory.parent / f"{directory.name}.partial"
    if staging.exists():  # stale leftover of an interrupted run
        shutil.rmtree(staging)
    try:
        (staging / "traces").mkdir(parents=True)
    except OSError as error:
        raise ValueError(f"cannot create ingest staging directory {staging}: "
                         f"{error}") from error
    try:
        if workers == 1:
            failures, stats = _ingest_into(dump, staging, staging / MANIFEST_NAME,
                                           memory_budget_samples, min_samples,
                                           trace_format, on_error)
        else:
            from .shard import _sharded_ingest_into
            failures, stats = _sharded_ingest_into(
                dump, staging, staging / MANIFEST_NAME, memory_budget_samples,
                min_samples, trace_format, on_error, workers, retry, retry_sleep)
    except BaseException:
        # A failed ingest (malformed dump, write error) only ever costs
        # the staging directory; the destination is untouched.
        shutil.rmtree(staging, ignore_errors=True)
        raise
    _publish_staging(staging, directory)
    if failure_sink is not None and failures:
        failure_sink.append(FailureRecordBlock.from_failures(failures))
    dataset = MeasuredFleetDataset(directory)
    dataset.ingest_stats = stats
    return dataset


def _publish_staging(staging: Path, directory: Path) -> None:
    """Atomically publish a fully-built staging directory at the destination.

    A fresh destination is a single ``rename``.  A pre-existing
    (manifest-less) destination directory receives the trace files first
    and the manifest last, so the commit point -- the manifest appearing
    -- still happens only after every trace is in place.
    """
    if not directory.exists():
        staging.rename(directory)
        return
    (directory / "traces").mkdir(exist_ok=True)
    for file in sorted((staging / "traces").iterdir()):
        os.replace(file, directory / "traces" / file.name)
    os.replace(staging / MANIFEST_NAME, directory / MANIFEST_NAME)
    shutil.rmtree(staging, ignore_errors=True)


def _ingest_into(dump: TelemetryDump, directory: Path, manifest_path: Path,
                 memory_budget_samples: int, min_samples: int,
                 trace_format: str, on_error: str,
                 ) -> tuple[list[FailureRecord], IngestStats]:
    """The serial accumulate -> finish -> manifest body of :func:`ingest_dump`.

    Builds the fleet into ``directory`` (the staging area) and returns
    the quarantined parse failures (empty in ``raise`` mode, which
    aborts on the first one instead) plus the run statistics.
    """
    save = _save_trace_npz if trace_format == "npz" else _save_trace_csv
    entries: list[dict] = []
    skipped: list[dict] = []
    failures: list[FailureRecord] = []

    def record_failure(line_number: int, error: ValueError) -> None:
        failures.append(FailureRecord(
            metric_name="", device_id="", stage="parse",
            error_type=type(error).__name__, message=str(error),
            provenance=f"{dump.path}:{line_number}"))

    callback = record_failure if on_error == "quarantine" else None
    with PairAccumulator(directory / ".ingest-scratch",
                         memory_budget_samples) as accumulator:
        for update in dump.updates(record_failure=callback):
            accumulator.add(update.key, update.timestamp, update.value)
        if not accumulator.keys():
            raise ValueError(f"{dump.path}: no telemetry updates found "
                             f"(format {dump.format})")
        # Canonical (metric, device) order: the output depends only on the
        # dump's update *set*, so shuffled/merged copies ingest identically,
        # and sorting groups each metric's pairs contiguously as the
        # survey's per-metric iteration requires.
        for key in sorted(accumulator.keys()):
            metric, device = key
            times, values = accumulator.samples(key)
            trace, stats = _finish_pair(metric, device, times, values, min_samples)
            if trace is None:
                skipped.append({"metric": metric, "device": device, **stats})
                continue
            file_name = f"traces/pair-{len(entries):05d}.{trace_format}"
            save(directory / file_name, trace)
            entries.append({"metric": metric, "device": device,
                            "interval": trace.interval, "length": len(trace),
                            "file": file_name, "ingest": stats})
        run_stats = IngestStats(
            workers=1,
            memory_budget_samples=accumulator.memory_budget_samples,
            updates=accumulator.total_samples,
            peak_buffered_samples=accumulator.peak_buffered_samples,
            spilled_samples=accumulator.spilled_samples,
            spill_writes=accumulator.spill_writes)
    _write_manifest(dump, manifest_path, trace_format, entries, skipped,
                    run_stats.updates, memory_budget_samples, failures,
                    min_samples)
    return failures, run_stats


def _write_manifest(dump: TelemetryDump, manifest_path: Path, trace_format: str,
                    entries: list[dict], skipped: list[dict], updates: int,
                    memory_budget_samples: int, failures: list[FailureRecord],
                    min_samples: int) -> None:
    """Write the measured-fleet manifest for a finished ingest.

    Shared by the serial and sharded paths, so the manifest bytes are a
    pure function of the merged pair entries -- every summary field here
    is determined by the dump's update set and the ingest *parameters*,
    never by how the run executed (those counters live in
    :class:`IngestStats`), which is what makes ``workers=N`` output
    byte-identical to serial output.
    """
    if not entries:
        raise ValueError(
            f"{dump.path}: all {len(skipped)} pairs fell below min_samples="
            f"{min_samples}; nothing to ingest")
    metrics: list[str] = []
    for entry in entries:
        if entry["metric"] not in metrics:
            metrics.append(entry["metric"])
    summary = {
        "source": str(dump.path), "format": dump.format,
        "updates": updates,
        "memory_budget_samples": memory_budget_samples,
        "pairs_skipped": skipped,
        "quarantined_lines": [
            int(failure.provenance.rsplit(":", 1)[1]) for failure in failures],
    }
    # A raw stream carries no nominal duration; the longest pair span is
    # the faithful reconstruction (see the module docstring).
    trace_duration = max(entry["interval"] * entry["length"] for entry in entries)
    manifest = {"format": MANIFEST_FORMAT, "trace_format": trace_format,
                "trace_duration": trace_duration, "metrics": metrics,
                "pairs": entries, "ingest": summary}
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")


# ----------------------------------------------------------------------
# Round-trip emitters: fabricate realistic dumps from any trace source
# ----------------------------------------------------------------------
def export_gnmi_dump(source: TraceSource, path: Path | str,
                     metrics: Sequence[str] | None = None) -> Path:
    """Write ``source`` as an interleaved gNMI-style JSON-lines dump.

    Updates are emitted globally time-ordered (ties broken by pair), the
    way a telemetry collector's append-only log interleaves many
    subscriptions into one stream.  Ingesting the dump reproduces every
    trace bit for bit, so synthetic fleets can fabricate arbitrarily
    large, realistic importer workloads.
    """
    path = Path(path)
    metric_names = list(metrics) if metrics is not None else source.metric_names()

    def pair_stream(order: int, pair: Any,
                    trace: TimeSeries) -> Iterator[tuple[float, int, str]]:
        # json.dumps on str adds the quotes/escaping once per pair; the
        # per-line payload is assembled with repr floats (exact round trip).
        device_json = json.dumps(pair.key[1])
        path_json = json.dumps(path_for_metric(pair.key[0]))
        times = trace.times()
        for index in range(len(trace)):
            yield (float(times[index]), order,
                   f'{{"timestamp": {float(times[index])!r}, "device": {device_json}, '
                   f'"path": {path_json}, "value": {float(trace.values[index])!r}}}\n')

    streams = []
    order = 0
    for metric_name in metric_names:
        for pair, trace in source.traces(metric_name):
            streams.append(pair_stream(order, pair, trace))
            order += 1
    with path.open("w") as handle:
        for _, _, line in heapq.merge(*streams):
            handle.write(line)
    return path


def export_snmp_dump(source: TraceSource, path: Path | str,
                     metrics: Sequence[str] | None = None) -> Path:
    """Write ``source`` as an SNMP-poller wide CSV dump.

    One row per (poll time, device) with one column per metric path, the
    way a poller tabulates each scrape; metrics polled at different rates
    leave their cells empty between polls.  Ingesting the dump reproduces
    every trace bit for bit.
    """
    path = Path(path)
    metric_names = list(metrics) if metrics is not None else source.metric_names()
    by_device: dict[str, dict[str, TimeSeries]] = {}
    for metric_name in metric_names:
        for pair, trace in source.traces(metric_name):
            by_device.setdefault(pair.key[1], {})[metric_name] = trace

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "device"]
                        + [path_for_metric(name) for name in metric_names])
        # Canonical device order: dump bytes depend on the trace *set*,
        # not on the metric-major order the traces were gathered in.
        for device, traces in sorted(by_device.items()):
            cells: dict[float, list[str]] = {}
            for column, metric_name in enumerate(metric_names):
                trace = traces.get(metric_name)
                if trace is None:
                    continue
                times = trace.times()
                for index in range(len(trace)):
                    row = cells.setdefault(float(times[index]), [""] * len(metric_names))
                    row[column] = repr(float(trace.values[index]))
            for timestamp in sorted(cells):
                writer.writerow([repr(timestamp), device] + cells[timestamp])
    return path
