"""File-backed measured fleets: surveying recorded telemetry instead of models.

The paper's survey runs over *measured* production traces (1613
metric-device pairs recorded by real monitoring systems), not synthetic
ones.  :class:`MeasuredFleetDataset` serves exactly that workload: a
directory holding one trace file per (metric, device) pair plus a
``manifest.json`` describing them, exposed through the same
:class:`~repro.telemetry.source.TraceSource` protocol the synthetic
:class:`~repro.telemetry.dataset.FleetDataset` implements -- so
``run_survey(backend="batched", workers=N, sink=...)`` runs unchanged on
recorded data.  Multi-worker batch specs address the directory by
file-offset slices of the manifest's pair list instead of regenerating a
config, and a bad address fails loudly against the manifest's pair count.

Directory layout (written by ``FleetDataset.export(dir)`` or
``repro-monitor export-fleet``)::

    fleet-dir/
      manifest.json            # format, trace_format, trace_duration,
                               # metrics (survey order), pairs: one entry
                               # of (metric, device, interval, length,
                               # true_nyquist_rate, file) per pair
      traces/pair-00000.npz    # values + interval + start_time
      traces/pair-00001.npz    # (or .csv: timestamp,value rows)
      ...

Trace files are ``.npz`` (lossless float64, the default) or ``.csv``
(``timestamp,value`` rows with full-precision ``repr`` floats, readable by
``repro-monitor estimate``); both round-trip synthetic fleets to
byte-identical survey records.  For genuinely measured data the manifest's
``true_nyquist_rate`` entries are simply ``NaN`` (no ground truth).
"""

from __future__ import annotations

import csv
import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Literal

import numpy as np

from ..signals.timeseries import TimeSeries
from .metrics import METRIC_CATALOG, MetricFamily, MetricSpec
from .source import BaseTraceSource, TraceSource

if TYPE_CHECKING:
    from .ingest import IngestStats

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
    "TRACE_FORMATS",
    "MeasuredDevice",
    "MeasuredParameters",
    "MeasuredPair",
    "MeasuredSourceSpec",
    "MeasuredFleetDataset",
    "export_traces",
]

#: Name of the manifest file inside a measured-fleet directory.
MANIFEST_NAME = "manifest.json"

#: Manifest format tag (bump on incompatible layout changes).
MANIFEST_FORMAT = "repro-measured-fleet/1"

#: Supported per-pair trace file formats.
TRACE_FORMATS: tuple[str, ...] = ("npz", "csv")

#: Sub-directory holding the per-pair trace files.
_TRACE_DIR = "traces"


@dataclass(frozen=True)
class MeasuredDevice:
    """The device side of a measured pair: an opaque identifier."""

    device_id: str


@dataclass(frozen=True)
class MeasuredParameters:
    """Ground-truth stand-in for measured pairs.

    ``true_nyquist_rate`` is carried through from an exported synthetic
    fleet (so accuracy-vs-truth aggregations keep working on the round
    trip) and is ``NaN`` for genuinely measured traces.
    """

    true_nyquist_rate: float = float("nan")


@dataclass(frozen=True)
class MeasuredPair:
    """One recorded (metric, device) pair: manifest metadata + file address.

    Duck-types the synthetic :class:`~repro.telemetry.dataset.TracePair`
    surface the survey pipeline touches (``key``, ``device.device_id``,
    ``parameters.true_nyquist_rate``).
    """

    metric_name: str
    device: MeasuredDevice
    parameters: MeasuredParameters
    interval: float
    length: int
    file: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.metric_name, self.device.device_id)

    @property
    def metric(self) -> MetricSpec:
        """The catalogue spec for this metric, or a minimal stand-in.

        Measured data may carry metric names outside the synthetic
        catalogue; those get a generic gauge spec whose polling interval
        is the recorded one.
        """
        spec = METRIC_CATALOG.get(self.metric_name)
        if spec is not None:
            return spec
        return MetricSpec(self.metric_name, MetricFamily.GAUGE,
                          poll_interval=self.interval, quantization_step=1.0,
                          minimum=None, maximum=None, units="", typical_level=0.0)


@dataclass(frozen=True)
class MeasuredSourceSpec:
    """Picklable worker address of a measured fleet: its directory on disk."""

    directory: str

    def open(self) -> "MeasuredFleetDataset":
        return MeasuredFleetDataset(self.directory)


# ----------------------------------------------------------------------
# Per-pair trace file round trip
# ----------------------------------------------------------------------
def _save_trace_npz(path: Path, trace: TimeSeries) -> None:
    np.savez_compressed(path, values=trace.values,
                        interval=np.float64(trace.interval),
                        start_time=np.float64(trace.start_time))


def _save_trace_csv(path: Path, trace: TimeSeries) -> None:
    times = trace.times()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("timestamp", "value"))
        for index in range(len(trace)):
            writer.writerow((repr(float(times[index])), repr(float(trace.values[index]))))


def _load_trace_npz(path: Path) -> tuple[np.ndarray, float, float]:
    with np.load(path) as data:
        return (np.asarray(data["values"], dtype=np.float64),
                float(data["interval"]), float(data["start_time"]))


def _load_trace_csv(path: Path, interval: float) -> tuple[np.ndarray, float, float]:
    timestamps: list[float] = []
    values: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"trace file {path} is empty: missing "
                             "timestamp,value header")
        for row in reader:
            timestamps.append(float(row[0]))
            values.append(float(row[1]))
    times = np.asarray(timestamps, dtype=np.float64)
    if len(times) >= 2:
        deltas = np.diff(times)
        if np.any(np.abs(deltas - interval) > 1e-6 * interval):
            raise ValueError(
                f"timestamp spacing ranges {deltas.min():g}..{deltas.max():g} s but the "
                f"manifest promises a regular {interval:g} s interval")
    start_time = float(times[0]) if len(times) else 0.0
    return np.asarray(values, dtype=np.float64), interval, start_time


# ----------------------------------------------------------------------
def export_traces(source: TraceSource, directory: Path | str,
                  fmt: Literal["npz", "csv"] = "npz") -> Path:
    """Write every trace of ``source`` to ``directory`` and return the manifest path.

    The manifest records the pairs in ``source.traces()`` order (grouped
    per metric), so a :class:`MeasuredFleetDataset` opened on the
    directory surveys byte-identically to the original source.  The
    directory must not already hold a measured fleet.
    """
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r}; choose one of {TRACE_FORMATS}")
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        raise ValueError(f"{directory} already holds a measured fleet "
                         f"({MANIFEST_NAME} exists); export needs a fresh directory")
    (directory / _TRACE_DIR).mkdir(parents=True, exist_ok=True)

    save = _save_trace_npz if fmt == "npz" else _save_trace_csv
    metrics: list[str] = []
    entries: list[dict] = []
    for index, (pair, trace) in enumerate(source.traces()):
        metric_name, device_id = pair.key
        if metric_name not in metrics:
            metrics.append(metric_name)
        file_name = f"{_TRACE_DIR}/pair-{index:05d}.{fmt}"
        save(directory / file_name, trace)
        parameters = getattr(pair, "parameters", None)
        true_rate = float(getattr(parameters, "true_nyquist_rate", float("nan")))
        entries.append({"metric": metric_name, "device": device_id,
                        "interval": trace.interval, "length": len(trace),
                        "true_nyquist_rate": true_rate, "file": file_name})

    manifest = {"format": MANIFEST_FORMAT, "trace_format": fmt,
                "trace_duration": source.trace_duration,
                "metrics": metrics, "pairs": entries}
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


class MeasuredFleetDataset(BaseTraceSource):
    """A directory of recorded per-pair traces, served as a :class:`TraceSource`.

    Opening the dataset reads only the manifest; trace files are loaded
    lazily per pair, so iterating a huge recorded fleet stays bounded by
    the survey's ``chunk_size`` exactly like the synthetic path.  Loading
    validates each file against its manifest entry (sample count,
    interval), so truncated or corrupted recordings fail loudly with the
    offending path instead of skewing the survey.
    """

    #: Run statistics attached by :func:`~repro.telemetry.ingest.ingest_dump`
    #: on the dataset it returns (``None`` for datasets opened from disk):
    #: how the run executed -- buffering peaks, spill traffic, worker
    #: fan-out -- which deliberately never lands in the manifest.
    ingest_stats: "IngestStats | None" = None

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ValueError(
                f"no {MANIFEST_NAME} under {self.directory}; not a measured-fleet "
                "directory (create one with FleetDataset.export() or "
                "'repro-monitor export-fleet')")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValueError(f"corrupt manifest {manifest_path}: {error}") from error
        try:
            format_tag = manifest["format"]
            fmt = manifest["trace_format"]
            self._trace_duration = float(manifest["trace_duration"])
            self._metric_order = [str(name) for name in manifest["metrics"]]
            self._pairs = [
                MeasuredPair(metric_name=str(entry["metric"]),
                             device=MeasuredDevice(str(entry["device"])),
                             parameters=MeasuredParameters(
                                 float(entry.get("true_nyquist_rate", float("nan")))),
                             interval=float(entry["interval"]),
                             length=int(entry["length"]),
                             file=str(entry["file"]))
                for entry in manifest["pairs"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"corrupt manifest {manifest_path}: {error}") from error
        if format_tag != MANIFEST_FORMAT:
            raise ValueError(f"unsupported manifest format {format_tag!r} in "
                             f"{manifest_path} (expected {MANIFEST_FORMAT!r})")
        if fmt not in TRACE_FORMATS:
            raise ValueError(f"unknown trace format {fmt!r} in {manifest_path}")
        self.fmt: str = fmt
        # The survey iterates the 'metrics' list, so any pair whose metric is
        # not on it would be silently dropped -- reject such manifests (and
        # duplicates, which would survey pairs twice).
        metric_set = set(self._metric_order)
        if len(metric_set) != len(self._metric_order):
            raise ValueError(f"corrupt manifest {manifest_path}: "
                             "duplicate names in the 'metrics' list")
        unlisted = {pair.metric_name for pair in self._pairs} - metric_set
        if unlisted:
            raise ValueError(
                f"corrupt manifest {manifest_path}: pairs reference metrics missing "
                f"from the 'metrics' list ({sorted(unlisted)}); surveys would "
                "silently drop those pairs")

    # ------------------------------------------------------------------
    @property
    def trace_duration(self) -> float:
        return self._trace_duration

    def pairs(self) -> list[MeasuredPair]:
        return self._pairs

    def pairs_for_metric(self, metric_name: str) -> list[MeasuredPair]:
        return [pair for pair in self._pairs if pair.metric_name == metric_name]

    def metric_names(self) -> list[str]:
        return list(self._metric_order)

    def worker_spec(self) -> MeasuredSourceSpec:
        return MeasuredSourceSpec(str(self.directory))

    def pair_content_token(self, pair: MeasuredPair) -> str:
        """Identity of one recorded trace: a sha256 over its file bytes.

        Measured traces live in mutable files, so the content token hashes
        the bytes themselves (plus the manifest facts the loader validates
        against) -- re-recording a trace invalidates every cached record
        built from it, while renaming the fleet directory does not.
        """
        path = self.directory / pair.file
        digest = hashlib.sha256()
        try:
            with path.open("rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(chunk)
        except OSError as error:
            raise ValueError(
                f"corrupt or truncated trace file {path}: {error}") from error
        return (f"{pair.metric_name}|{pair.device.device_id}|{pair.file}|"
                f"{pair.interval!r}|{pair.length}|sha256:{digest.hexdigest()}")

    # ------------------------------------------------------------------
    def load(self, pair: MeasuredPair, interval: float | None = None) -> TimeSeries:
        """Read one pair's recorded trace, validated against the manifest."""
        if interval is not None and interval != pair.interval:
            raise ValueError(
                f"measured traces have a fixed recorded interval ({pair.interval} s); "
                f"cannot serve interval={interval}")
        path = self.directory / pair.file
        try:
            if self.fmt == "npz":
                values, file_interval, start_time = _load_trace_npz(path)
            else:
                values, file_interval, start_time = _load_trace_csv(path, pair.interval)
        except (OSError, KeyError, ValueError, EOFError, IndexError,
                zipfile.BadZipFile) as error:
            raise ValueError(f"corrupt or truncated trace file {path}: {error}") from error
        if values.ndim != 1 or values.shape[0] != pair.length:
            raise ValueError(
                f"trace file {path} holds {values.shape} samples but the manifest "
                f"promises {pair.length}; the recording is truncated or corrupt")
        if file_interval != pair.interval:
            raise ValueError(
                f"trace file {path} was recorded at interval {file_interval} s but the "
                f"manifest promises {pair.interval} s")
        return TimeSeries(values, pair.interval, start_time=start_time,
                          name=f"{pair.metric_name}@{pair.device.device_id}")
