"""Irregular-sampling artefacts: jitter, dropped polls, duplicated polls.

Section 3.2 notes that "monitoring systems do not produce perfectly sampled
signals -- samples are not always spaced at equi-distant points in time".
These helpers turn a clean regular trace into the messy stream a real
poller produces, so the pre-cleaning path
(:func:`repro.core.resampling.regularize`) can be exercised end to end.
"""

from __future__ import annotations

import numpy as np

from ..signals.timeseries import IrregularTimeSeries, TimeSeries

__all__ = ["add_timing_jitter", "drop_samples", "duplicate_samples", "make_irregular"]


def add_timing_jitter(series: TimeSeries, jitter_std: float,
                      rng: np.random.Generator | None = None) -> IrregularTimeSeries:
    """Perturb each sample's timestamp with Gaussian jitter of ``jitter_std`` seconds.

    Jitter is clipped to +/- 45 % of the polling interval so sample order
    is preserved (a poller never reports samples out of order).
    """
    if jitter_std < 0:
        raise ValueError("jitter_std must be non-negative")
    rng = rng or np.random.default_rng(0)
    times = series.times()
    if jitter_std > 0 and len(series):
        limit = 0.45 * series.interval
        jitter = np.clip(rng.normal(scale=jitter_std, size=len(series)), -limit, limit)
        times = times + jitter
    return IrregularTimeSeries(times, series.values, series.name)


def drop_samples(series: IrregularTimeSeries, drop_fraction: float,
                 rng: np.random.Generator | None = None) -> IrregularTimeSeries:
    """Remove a random ``drop_fraction`` of samples (lost polls).

    The first and last samples are always kept so the trace's time span is
    unchanged (which keeps re-sampling grids comparable).
    """
    if not 0 <= drop_fraction < 1:
        raise ValueError("drop_fraction must be in [0, 1)")
    if drop_fraction == 0 or len(series) <= 2:
        return series
    rng = rng or np.random.default_rng(0)
    keep = rng.random(len(series)) >= drop_fraction
    keep[0] = True
    keep[-1] = True
    return IrregularTimeSeries(series.timestamps[keep], series.values[keep], series.name)


def duplicate_samples(series: IrregularTimeSeries, duplicate_fraction: float,
                      rng: np.random.Generator | None = None) -> IrregularTimeSeries:
    """Duplicate a random fraction of samples (retried polls reported twice)."""
    if not 0 <= duplicate_fraction < 1:
        raise ValueError("duplicate_fraction must be in [0, 1)")
    if duplicate_fraction == 0 or len(series) == 0:
        return series
    rng = rng or np.random.default_rng(0)
    mask = rng.random(len(series)) < duplicate_fraction
    timestamps = np.concatenate([series.timestamps, series.timestamps[mask]])
    values = np.concatenate([series.values, series.values[mask]])
    return IrregularTimeSeries(timestamps, values, series.name)


def make_irregular(series: TimeSeries, jitter_std: float | None = None,
                   drop_fraction: float = 0.02, duplicate_fraction: float = 0.01,
                   rng: np.random.Generator | None = None) -> IrregularTimeSeries:
    """Apply the full set of polling artefacts with sensible defaults.

    ``jitter_std`` defaults to 10 % of the polling interval.
    """
    rng = rng or np.random.default_rng(0)
    jitter = jitter_std if jitter_std is not None else 0.1 * series.interval
    irregular = add_timing_jitter(series, jitter, rng=rng)
    irregular = drop_samples(irregular, drop_fraction, rng=rng)
    irregular = duplicate_samples(irregular, duplicate_fraction, rng=rng)
    return irregular
