"""The metric catalogue: the 14 metric families surveyed in the paper.

Figure 4 / Figure 5 of the paper cover (at least) these production
monitoring systems: 5th-percentile CPU utilisation, FCS errors, in-bound
discards, out-bound discards, link utilisation, lossy paths, memory usage,
multicast bytes, multicast drops, unicast bytes, unicast drops, peak
egress bandwidth, peak ingress bandwidth and temperature.

Each :class:`MetricSpec` records what the library needs to emulate the
corresponding production monitoring system: the family (how the generative
model behaves), the default production polling interval, the quantisation
step of the readings, value bounds, and units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MetricFamily", "MetricSpec", "METRIC_CATALOG", "metric_names", "get_metric"]


class MetricFamily(enum.Enum):
    """Behavioural family of a metric, which selects its generative model."""

    GAUGE = "gauge"            # smooth, diurnal-driven level (temperature, CPU, memory, link util)
    COUNTER_RATE = "counter"   # per-interval traffic volumes (unicast/multicast bytes)
    ERROR_COUNT = "error"      # sparse, bursty error counts (drops, discards, FCS errors)
    PATH_COUNT = "path"        # small integer counts of bad paths
    PEAK_BANDWIDTH = "peak"    # per-interval maxima of a fast underlying process


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one production monitoring system.

    Attributes
    ----------
    name:
        Canonical metric name (matches the paper's figure labels).
    family:
        Behavioural family; selects the generative model in
        :mod:`repro.telemetry.models`.
    poll_interval:
        Production polling interval in seconds (the "current sampling
        rate" of Figures 1 and 4).
    quantization_step:
        Granularity of the reported readings (1.0 for integer counters,
        0.5 degC for temperature sensors, ...).
    minimum / maximum:
        Physical bounds of the metric (None = unbounded).
    units:
        Human-readable units, for reports.
    typical_level:
        Baseline magnitude of the metric; the generative models scale
        their output around this level.
    """

    name: str
    family: MetricFamily
    poll_interval: float
    quantization_step: float
    minimum: float | None
    maximum: float | None
    units: str
    typical_level: float

    @property
    def poll_rate(self) -> float:
        """Production sampling rate in Hz."""
        return 1.0 / self.poll_interval


#: The 14 metric families of the paper's survey.  Poll intervals follow
#: common production practice (SNMP counter scrapes every 30 s - 5 min,
#: temperature every 5 min, path probing every minute); the exact values
#: are substitution choices documented in DESIGN.md.
METRIC_CATALOG: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        MetricSpec("5-pct CPU util", MetricFamily.GAUGE, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=100.0,
                   units="%", typical_level=30.0),
        MetricSpec("Temperature", MetricFamily.GAUGE, poll_interval=300.0,
                   quantization_step=0.5, minimum=10.0, maximum=95.0,
                   units="degC", typical_level=45.0),
        MetricSpec("Memory usage", MetricFamily.GAUGE, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=100.0,
                   units="%", typical_level=55.0),
        MetricSpec("Link util", MetricFamily.GAUGE, poll_interval=30.0,
                   quantization_step=0.1, minimum=0.0, maximum=100.0,
                   units="%", typical_level=35.0),
        MetricSpec("Unicast bytes", MetricFamily.COUNTER_RATE, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="MB/interval", typical_level=2000.0),
        MetricSpec("Multicast bytes", MetricFamily.COUNTER_RATE, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="MB/interval", typical_level=50.0),
        MetricSpec("Unicast drops", MetricFamily.ERROR_COUNT, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="packets/interval", typical_level=5.0),
        MetricSpec("Multicast drops", MetricFamily.ERROR_COUNT, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="packets/interval", typical_level=2.0),
        MetricSpec("In-bound discards", MetricFamily.ERROR_COUNT, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="packets/interval", typical_level=3.0),
        MetricSpec("Out-bound discards", MetricFamily.ERROR_COUNT, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="packets/interval", typical_level=3.0),
        MetricSpec("FCS errors", MetricFamily.ERROR_COUNT, poll_interval=30.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="frames/interval", typical_level=1.0),
        MetricSpec("Lossy paths", MetricFamily.PATH_COUNT, poll_interval=60.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="paths", typical_level=4.0),
        MetricSpec("Peak egress BW", MetricFamily.PEAK_BANDWIDTH, poll_interval=60.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="Gbps", typical_level=12.0),
        MetricSpec("Peak ingress BW", MetricFamily.PEAK_BANDWIDTH, poll_interval=60.0,
                   quantization_step=1.0, minimum=0.0, maximum=None,
                   units="Gbps", typical_level=10.0),
    ]
}

#: Metric names in the order the paper's Figure 5 lists them (left to right).
FIGURE5_ORDER: tuple[str, ...] = (
    "Out-bound discards", "Unicast drops", "Multicast drops", "Multicast bytes",
    "Unicast bytes", "In-bound discards", "Memory usage", "Peak egress BW",
    "Peak ingress BW", "Link util", "Lossy paths", "5-pct CPU util",
    "Temperature", "FCS errors",
)

#: The 12 metrics that get their own CDF panel in Figure 4.
FIGURE4_METRICS: tuple[str, ...] = (
    "5-pct CPU util", "FCS errors", "In-bound discards", "Link util",
    "Lossy paths", "Memory usage", "Multicast bytes", "Multicast drops",
    "Peak egress BW", "Peak ingress BW", "Temperature", "Unicast bytes",
)


def metric_names() -> list[str]:
    """All metric names in the catalogue."""
    return list(METRIC_CATALOG)


def get_metric(name: str) -> MetricSpec:
    """Look up a metric by name, raising ``KeyError`` with a helpful message."""
    try:
        return METRIC_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; known metrics: {sorted(METRIC_CATALOG)}") from None
