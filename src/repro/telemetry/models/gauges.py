"""Gauge metrics: temperature, 5th-percentile CPU utilisation, memory usage, link utilisation.

These metrics track slowly varying physical or load state.  Their model is
a baseline level plus a diurnal load cycle plus band-limited random
variation (whose bandwidth is the device-specific parameter that fixes the
true Nyquist rate), with measurement noise and sensor quantisation on top.
Thermal inertia is why the paper singles out temperature as the canonical
band-limited metric ("the underlying thermodynamics limit the maximum rate
at which temperatures change").
"""

from __future__ import annotations

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters
from .common import (band_limited_component, broadband_component, diurnal_component,
                     finalize_trace, time_grid)

__all__ = ["generate_gauge_trace"]


def generate_gauge_trace(spec: MetricSpec, params: MetricParameters,
                         duration: float, interval: float,
                         rng: np.random.Generator | None = None,
                         device_name: str = "") -> TimeSeries:
    """Generate one gauge trace.

    Parameters
    ----------
    spec / params:
        Metric description and per-device generative parameters.
    duration:
        Trace length in seconds.
    interval:
        Sampling interval of the produced trace in seconds (use the
        metric's production ``poll_interval`` to emulate today's system, or
        something much smaller to produce a ground-truth reference).
    """
    rng = rng or np.random.default_rng(params.seed)
    times = time_grid(duration, interval)
    n = times.shape[0]

    # The diurnal cycle only belongs in the signal when the device's
    # bandwidth actually extends up to (or beyond) one cycle per day;
    # otherwise the metric is slower than a day and the band-limited
    # component alone carries the variation.
    diurnal_amplitude = params.amplitude * 0.6 if params.bandwidth_hz >= 1.0 / 86400.0 else 0.0
    phase = float(rng.uniform(0.0, 2.0 * np.pi))
    values = np.full(n, params.level)
    values = values + diurnal_component(times, diurnal_amplitude, phase=phase)
    values = values + band_limited_component(n, interval, params.bandwidth_hz,
                                             params.amplitude * 0.4 if diurnal_amplitude else params.amplitude,
                                             rng)
    if params.broadband:
        # Fast, unresolved fluctuations (e.g. a fan-speed control loop or a
        # noisy sensor) that make the trace look aliased at any realistic
        # polling rate.
        values = values + broadband_component(n, params.amplitude * 0.8, rng)
    return finalize_trace(values, spec, params, interval, rng, device_name)
