"""Lossy-path counts: how many monitored paths through a device are currently lossy.

Path-probing systems (Pingmesh-style, the paper's reference [7]) report a
small integer: the number of source-destination paths whose probes saw
loss in the last interval.  The count behaves like a birth-death process --
paths become lossy and recover -- so the model is a random telegraph-style
integer process whose transition rate is tied to the device's bandwidth
parameter.
"""

from __future__ import annotations

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters
from .common import broadband_component, finalize_trace, time_grid

__all__ = ["generate_path_count_trace"]


def generate_path_count_trace(spec: MetricSpec, params: MetricParameters,
                              duration: float, interval: float,
                              rng: np.random.Generator | None = None,
                              device_name: str = "") -> TimeSeries:
    """Generate one lossy-path-count trace (a small, slowly jumping integer)."""
    rng = rng or np.random.default_rng(params.seed)
    times = time_grid(duration, interval)
    n = times.shape[0]

    mean_count = max(params.level, 1.0)
    # Per-step transition probability: a path changes state roughly once
    # per 1/bandwidth seconds, so over one polling interval the chance of a
    # change is bandwidth * interval (capped below 1).
    transition_probability = min(params.bandwidth_hz * interval, 0.5)

    values = np.empty(n)
    current = float(rng.poisson(mean_count))
    for i in range(n):
        if rng.random() < transition_probability:
            # A path joins or leaves the lossy set; mild pull towards the
            # long-run mean keeps the count from wandering off.
            direction = 1.0 if rng.random() < 0.5 + 0.5 * (mean_count - current) / (mean_count + 1.0) else -1.0
            current = max(current + direction * float(rng.integers(1, 3)), 0.0)
        values[i] = current

    if params.broadband:
        values = values + np.abs(broadband_component(n, mean_count * 0.5, rng))

    return finalize_trace(values, spec, params, interval, rng, device_name)
