"""Error counters: packet drops, discards and FCS errors per polling interval.

Error counters are sparse: they sit at (or near) zero most of the time and
produce bursts during episodes (congestion events, a flapping or corrupting
link -- the paper's §4.2 uses FCS errors as its running example).  Each
episode is a smooth pulse whose time constant is tied to the device's
bandwidth parameter: fast-recovering devices produce short episodes,
slowly draining ones produce long ones, and in both cases the pulse is
band-limited at (roughly) the device bandwidth.
"""

from __future__ import annotations

import math

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters
from .common import band_limited_component, broadband_component, finalize_trace, time_grid

__all__ = ["generate_error_count_trace", "episode_time_constant"]


def episode_time_constant(bandwidth_hz: float) -> float:
    """Decay time constant (seconds) of an error episode for a given bandwidth.

    An exponential pulse ``exp(-t / tau)`` has a Lorentzian spectrum whose
    half-power corner sits at ``1 / (2 * pi * tau)``; inverting that maps
    the device's bandwidth parameter to the episode decay time.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth_hz must be positive")
    return 1.0 / (2.0 * math.pi * bandwidth_hz)


def generate_error_count_trace(spec: MetricSpec, params: MetricParameters,
                               duration: float, interval: float,
                               rng: np.random.Generator | None = None,
                               device_name: str = "") -> TimeSeries:
    """Generate one sparse error-counter trace (events per interval)."""
    rng = rng or np.random.default_rng(params.seed)
    times = time_grid(duration, interval)
    n = times.shape[0]

    # A small smoothly varying background (e.g. a link with a persistent
    # low-grade problem) keeps the trace from being exactly zero between
    # episodes and carries the band-limited signature the estimator reads.
    background = params.level * 0.3 * (
        1.0 + band_limited_component(n, interval, params.bandwidth_hz, 1.0, rng))
    values = np.maximum(background, 0.0)

    tau = max(episode_time_constant(params.bandwidth_hz), 2.0 * interval)
    expected_episodes = params.burst_rate_per_day * duration / 86400.0
    episode_count = int(rng.poisson(max(expected_episodes, 0.0)))
    for _ in range(episode_count):
        centre_index = int(rng.integers(0, n))
        magnitude = params.level * float(rng.uniform(2.0, 10.0))
        # Episodes build up and drain over the device's characteristic time
        # scale; a Gaussian bell keeps the pulse band-limited to ~1/(2*pi*tau)
        # so the episode does not leak energy above the device bandwidth.
        span = max(int(round(4.0 * tau / interval)), 1)
        start_index = max(centre_index - span, 0)
        stop_index = min(centre_index + span, n)
        pulse_times = times[start_index:stop_index] - times[centre_index]
        values[start_index:stop_index] += magnitude * np.exp(-0.5 * (pulse_times / tau) ** 2)

    if params.broadband:
        values = values + np.abs(broadband_component(n, params.level, rng))

    return finalize_trace(values, spec, params, interval, rng, device_name)
