"""Shared building blocks for the per-family telemetry models.

Every model composes the same ingredients:

* a **structured component** -- band-limited random variation whose highest
  frequency is the device's ``bandwidth_hz`` (this is what determines the
  metric's true Nyquist rate);
* optional **broadband content** -- white, full-band variation used for the
  ~11 % of pairs whose traces should look aliased to the estimator;
* **measurement noise** and **quantisation**, which are the practical
  complications Sections 3.2 and 4.3 of the paper discuss.
"""

from __future__ import annotations

import math

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters

__all__ = [
    "time_grid",
    "band_limited_component",
    "broadband_component",
    "diurnal_component",
    "finalize_trace",
]


def time_grid(duration: float, interval: float) -> np.ndarray:
    """Timestamps (relative to the trace start) for a trace of ``duration`` seconds."""
    if duration <= 0 or interval <= 0:
        raise ValueError("duration and interval must be positive")
    n = max(int(round(duration / interval)), 2)
    return np.arange(n) * interval


def band_limited_component(n: int, interval: float, bandwidth_hz: float,
                           amplitude: float, rng: np.random.Generator) -> np.ndarray:
    """Random variation confined (almost) entirely below ``bandwidth_hz``.

    Built in the frequency domain with random phases.  At least one non-DC
    bin is always populated, so even devices whose bandwidth is below one
    cycle per trace produce *some* slow variation (their estimated Nyquist
    rate then bottoms out at the trace's frequency resolution, which is the
    best any trace-driven estimator can do).
    """
    if n < 2:
        raise ValueError("need at least two samples")
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    freqs = np.fft.rfftfreq(n, d=interval)
    spectrum = np.zeros(freqs.shape, dtype=np.complex128)
    in_band = (freqs > 0) & (freqs <= bandwidth_hz)
    if not np.any(in_band) and len(freqs) > 1:
        in_band[1] = True
    count = int(np.count_nonzero(in_band))
    if count == 0 or amplitude == 0:
        return np.zeros(n)
    # 1/f-flavoured weighting inside the band makes the variation look like
    # real operational metrics (most energy at the slowest scales) while
    # still placing measurable energy near the band edge.
    band_freqs = freqs[in_band]
    weights = 1.0 / np.sqrt(band_freqs / band_freqs[0])
    phases = rng.uniform(0.0, 2.0 * math.pi, size=count)
    spectrum[in_band] = weights * np.exp(1j * phases)
    values = np.fft.irfft(spectrum, n=n)
    peak = float(np.max(np.abs(values)))
    if peak > 0:
        values = values / peak * amplitude
    return values


def broadband_component(n: int, amplitude: float, rng: np.random.Generator) -> np.ndarray:
    """Full-band (white) variation, used for deliberately aliased-looking traces."""
    if amplitude <= 0:
        return np.zeros(n)
    return rng.normal(scale=amplitude, size=n)


def diurnal_component(times: np.ndarray, amplitude: float,
                      phase: float = 0.0, day_seconds: float = 86400.0) -> np.ndarray:
    """A day/night cycle with a mild second harmonic (the load backbone)."""
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    base = 2.0 * math.pi * times / day_seconds
    return amplitude * (np.sin(base + phase) + 0.25 * np.sin(2.0 * base + phase))


def finalize_trace(values: np.ndarray, spec: MetricSpec, params: MetricParameters,
                   interval: float, rng: np.random.Generator,
                   device_name: str = "") -> TimeSeries:
    """Apply measurement noise, physical bounds and quantisation; wrap as a TimeSeries."""
    noisy = values + rng.normal(scale=params.noise_std, size=values.shape[0]) \
        if params.noise_std > 0 else values
    if spec.minimum is not None or spec.maximum is not None:
        noisy = np.clip(noisy, spec.minimum, spec.maximum)
    quantized = np.round(noisy / spec.quantization_step) * spec.quantization_step
    if spec.minimum is not None or spec.maximum is not None:
        quantized = np.clip(quantized, spec.minimum, spec.maximum)
    name = f"{spec.name}@{device_name}" if device_name else spec.name
    return TimeSeries(quantized, interval, name=name)
