"""Peak-bandwidth metrics: per-interval maxima of ingress/egress link throughput.

"Peak ingress/egress BW" reports, for each polling interval, the largest
throughput observed inside that interval.  Taking a maximum over a window
is a non-linear operation that inflates high-frequency content (microbursts
show up as isolated spikes), which is why these metrics sit towards the
faster end of the paper's Figure 5.  The model combines the load backbone
with spiky burst structure whose frequency follows the device's bandwidth
parameter.
"""

from __future__ import annotations

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters
from .common import (band_limited_component, broadband_component, diurnal_component,
                     finalize_trace, time_grid)

__all__ = ["generate_peak_bandwidth_trace"]


def generate_peak_bandwidth_trace(spec: MetricSpec, params: MetricParameters,
                                  duration: float, interval: float,
                                  rng: np.random.Generator | None = None,
                                  device_name: str = "") -> TimeSeries:
    """Generate one peak-bandwidth trace (Gbps maxima per polling interval)."""
    rng = rng or np.random.default_rng(params.seed)
    times = time_grid(duration, interval)
    n = times.shape[0]

    diurnal_amplitude = params.amplitude * 0.5 if params.bandwidth_hz >= 1.0 / 86400.0 else 0.0
    phase = float(rng.uniform(0.0, 2.0 * np.pi))
    baseline = (params.level
                + diurnal_component(times, diurnal_amplitude, phase=phase)
                + band_limited_component(n, interval, params.bandwidth_hz,
                                         params.amplitude * 0.5, rng))

    # Burst periods: the per-interval max rises while a heavy flow (or a
    # burst of flows) is active, then falls back.  The rise/fall happens on
    # the device's characteristic time scale so the trace stays band-limited
    # at the device's bandwidth parameter.
    values = baseline.copy()
    expected_bursts = params.burst_rate_per_day * duration / 86400.0
    burst_count = int(rng.poisson(max(expected_bursts, 0.0)))
    if burst_count:
        sigma = max(1.0 / (2.0 * np.pi * params.bandwidth_hz), 2.0 * interval)
        span = max(int(round(3.0 * sigma / interval)), 1)
        for _ in range(burst_count):
            centre = int(rng.integers(0, n))
            start = max(centre - span, 0)
            stop = min(centre + span, n)
            pulse_times = times[start:stop] - times[centre]
            magnitude = params.amplitude * float(rng.uniform(0.5, 2.0))
            values[start:stop] += magnitude * np.exp(-0.5 * (pulse_times / sigma) ** 2)

    if params.broadband:
        values = values + np.abs(broadband_component(n, params.amplitude, rng))

    return finalize_trace(values, spec, params, interval, rng, device_name)
