"""Traffic-volume counters: unicast/multicast bytes per polling interval.

Switch byte counters report how much traffic crossed an interface in each
polling interval.  Traffic volume follows the datacenter's load (diurnal)
with multiplicative band-limited variation and occasional short surges.
Values are non-negative and quantised to whole units (the SNMP counter
granularity after normalisation).
"""

from __future__ import annotations

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricSpec
from ..profiles import MetricParameters
from .common import (band_limited_component, broadband_component, diurnal_component,
                     finalize_trace, time_grid)

__all__ = ["generate_counter_trace"]


def generate_counter_trace(spec: MetricSpec, params: MetricParameters,
                           duration: float, interval: float,
                           rng: np.random.Generator | None = None,
                           device_name: str = "") -> TimeSeries:
    """Generate one traffic-volume counter trace (bytes per interval)."""
    rng = rng or np.random.default_rng(params.seed)
    times = time_grid(duration, interval)
    n = times.shape[0]

    diurnal_amplitude = 0.5 if params.bandwidth_hz >= 1.0 / 86400.0 else 0.0
    phase = float(rng.uniform(0.0, 2.0 * np.pi))
    # Multiplicative structure: the counter scales with load, it does not
    # add to it.  The modulation is kept above -0.9 so volumes stay positive.
    modulation = (diurnal_component(times, diurnal_amplitude, phase=phase)
                  + band_limited_component(n, interval, params.bandwidth_hz, 0.4, rng))
    if params.broadband:
        modulation = modulation + broadband_component(n, 0.5, rng)
    modulation = np.maximum(modulation, -0.9)
    values = params.level * (1.0 + modulation)

    # Occasional traffic surges (bulk transfers, re-replication).  Surges
    # ramp up and down over a time scale tied to the device's bandwidth so
    # they do not inject energy above it (a surge is load shifting, not an
    # instantaneous step).
    expected_surges = params.burst_rate_per_day * duration / 86400.0
    surge_count = int(rng.poisson(max(expected_surges * 0.25, 0.0)))
    if surge_count:
        surge_width = float(np.clip(1.0 / (2.0 * params.bandwidth_hz), 4.0 * interval, duration / 4.0))
        width_samples = max(int(round(surge_width / interval)), 2)
        bump = np.sin(np.linspace(0.0, np.pi, width_samples)) ** 2
        for _ in range(surge_count):
            start = int(rng.integers(0, n))
            stop = min(start + width_samples, n)
            magnitude = params.level * float(rng.uniform(0.2, 0.6))
            values[start:stop] += magnitude * bump[:stop - start]

    return finalize_trace(values, spec, params, interval, rng, device_name)
