"""Generative models for every metric family, plus the family dispatcher."""

from __future__ import annotations

import numpy as np

from ...signals.timeseries import TimeSeries
from ..metrics import MetricFamily, MetricSpec
from ..profiles import MetricParameters
from .bandwidth import generate_peak_bandwidth_trace
from .counters import generate_counter_trace
from .errorcounts import episode_time_constant, generate_error_count_trace
from .gauges import generate_gauge_trace
from .paths import generate_path_count_trace

__all__ = [
    "generate_trace",
    "generate_gauge_trace",
    "generate_counter_trace",
    "generate_error_count_trace",
    "generate_path_count_trace",
    "generate_peak_bandwidth_trace",
    "episode_time_constant",
]

_FAMILY_GENERATORS = {
    MetricFamily.GAUGE: generate_gauge_trace,
    MetricFamily.COUNTER_RATE: generate_counter_trace,
    MetricFamily.ERROR_COUNT: generate_error_count_trace,
    MetricFamily.PATH_COUNT: generate_path_count_trace,
    MetricFamily.PEAK_BANDWIDTH: generate_peak_bandwidth_trace,
}


def generate_trace(spec: MetricSpec, params: MetricParameters, duration: float,
                   interval: float | None = None,
                   rng: np.random.Generator | None = None,
                   device_name: str = "") -> TimeSeries:
    """Generate one telemetry trace for any metric in the catalogue.

    Parameters
    ----------
    spec:
        The metric to emulate (selects the generative model by family).
    params:
        Per-(device, metric) parameters from
        :func:`repro.telemetry.profiles.draw_metric_parameters`.
    duration:
        Trace length in seconds.
    interval:
        Sampling interval of the produced trace; defaults to the metric's
        production polling interval (i.e. "what today's system collects").
    """
    generator = _FAMILY_GENERATORS[spec.family]
    return generator(spec, params, duration,
                     interval if interval is not None else spec.poll_interval,
                     rng=rng, device_name=device_name)
