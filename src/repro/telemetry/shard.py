"""Sharded multi-process ingest: parallel dump parsing with a deterministic merge.

:func:`~repro.telemetry.ingest.ingest_dump` is single-threaded by
default; this module is the ``workers=N`` engine behind it.  The dump is
split into byte ranges aligned to record (line) boundaries, each range is
parsed in a worker process, and every parsed update is routed to one of
``N`` shards by a stable sha256 hash of its ``(metric, device)`` key --
``PYTHONHASHSEED``-independent, so shard ownership is a pure function of
the pair.  Each shard then runs its own bounded
:class:`~repro.telemetry.ingest.PairAccumulator` + pair-finishing pass in
a worker process, and the parent merges the per-shard outputs into one
canonical-order fleet directory.

The merged output is **byte-identical to a ``workers=1`` ingest** for any
shard count and any update interleaving.  That falls out of two existing
invariants rather than any merge-time cleverness:

* pair ownership depends only on the pair key (the sha256 route), so the
  *set* of updates each pair accumulates is independent of how ranges
  split the file; and
* the serial importer's output already depends only on the update set --
  pairs are finished in canonical ``(metric, device)`` order, each pair's
  samples are ``(timestamp, value)``-sorted with first-wins dedupe, and
  trace files are written with deterministic compression.

Data moves between the two phases through compact ``.npz`` part files in
the staging area (one per (range, shard, flush) triple), so peak memory
in every stage stays bounded by ``memory_budget_samples``: range parsers
flush their routing buffers at ``budget / ranges`` buffered samples, and
every shard accumulator gets a ``budget / shards`` spill budget.

Both phases run on :func:`repro.faults.execution.run_batch_tasks`, so a
crashed worker rebuilds the pool and transient IO errors are retried with
deterministic backoff.  Malformed *lines* follow the serial semantics:
``on_error="raise"`` surfaces the first bad line as a ``ValueError``
naming the file and line; ``on_error="quarantine"`` records each bad line
with file:line provenance and ingests every healthy update.  A whole
*task* that fails after retries in quarantine mode is replayed once in
the parent (deterministic salvage); only a repeat failure aborts.
"""

from __future__ import annotations

import csv
import hashlib
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from ..faults.execution import BatchExecutionError, RetryPolicy, run_batch_tasks
from ..records import FailureRecord
from .measured import _save_trace_csv, _save_trace_npz
from .ingest import (GNMI_FORMAT, SNMP_FORMAT, IngestStats, PairAccumulator,
                     ShardIngestStats, TelemetryDump, _finish_pair,
                     _parse_gnmi_line, _parse_snmp_row, _validate_snmp_header,
                     _write_manifest)

__all__ = ["ByteRange", "plan_byte_ranges", "shard_of_key"]


def shard_of_key(key: tuple[str, str], shards: int) -> int:
    """The shard owning a ``(metric, device)`` pair: a stable sha256 route.

    Pure function of the key bytes (``PYTHONHASHSEED``-independent, unlike
    ``hash()``), so pair ownership is reproducible across processes, runs
    and machines.  The metric and device are joined with a 0x1f unit
    separator before hashing.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    payload = key[0].encode("utf-8") + b"\x1f" + key[1].encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") % shards


# ----------------------------------------------------------------------
# Planning: split the dump into line-aligned byte ranges
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ByteRange:
    """One line-aligned slice of a dump: ``[start, end)`` plus its first line number."""

    start: int
    end: int
    first_line: int


def plan_byte_ranges(path: Path | str, parts: int, data_start: int = 0,
                     first_line: int = 1) -> list[ByteRange]:
    """Split ``path`` into up to ``parts`` line-aligned byte ranges.

    Boundaries are the newlines nearest the equal-size split points, so
    every line belongs to exactly one range.  The single sequential scan
    also counts newlines, so each range knows the absolute line number of
    its first line (error messages and quarantine provenance from range
    workers match the serial reader exactly).  ``data_start`` /
    ``first_line`` skip an already-parsed header (the SNMP CSV case).

    The scan is cheap relative to parsing: it only finds ``\\n`` bytes,
    while the workers run ``json.loads``/``csv`` over the same bytes.
    """
    path = Path(path)
    if parts < 1:
        raise ValueError("parts must be >= 1")
    try:
        size = path.stat().st_size
    except OSError as error:
        raise ValueError(f"cannot read telemetry export {path}: {error}") from error
    if data_start > size:
        raise ValueError(f"telemetry export {path} is shorter ({size} bytes) "
                         f"than its header ({data_start} bytes)")
    if parts == 1 or size == data_start:
        return [ByteRange(data_start, size, first_line)]
    span = size - data_start
    targets = sorted({data_start + span * index // parts for index in range(1, parts)})
    boundaries: list[tuple[int, int]] = []
    with path.open("rb") as handle:
        handle.seek(data_start)
        offset = data_start
        line = first_line
        pending = 0
        while pending < len(targets):
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            search_from = 0
            while pending < len(targets):
                position = chunk.find(b"\n", search_from)
                if position < 0:
                    break
                newline_offset = offset + position
                line += 1
                while pending < len(targets) and newline_offset >= targets[pending]:
                    boundaries.append((newline_offset + 1, line))
                    pending += 1
                search_from = position + 1
            offset += len(chunk)
    ranges: list[ByteRange] = []
    start, start_line = data_start, first_line
    for boundary_offset, boundary_line in boundaries:
        if boundary_offset <= start or boundary_offset >= size:
            continue  # two targets shared a newline, or the file's last one
        ranges.append(ByteRange(start, boundary_offset, start_line))
        start, start_line = boundary_offset, boundary_line
    ranges.append(ByteRange(start, size, start_line))
    return ranges


def _iter_range_lines(path: Path, start: int, end: int) -> Iterator[bytes]:
    """Yield the raw lines of ``path[start:end]``, newlines included.

    Reads in bounded chunks; only the tail of the current chunk (at most
    one partial line) is held between reads.
    """
    with path.open("rb") as handle:
        handle.seek(start)
        remaining = end - start
        tail = b""
        while remaining > 0:
            chunk = handle.read(min(1 << 20, remaining))
            if not chunk:
                break  # the file shrank underneath us; serve what we have
            remaining -= len(chunk)
            pieces = (tail + chunk).split(b"\n")
            tail = pieces.pop()
            for piece in pieces:
                yield piece + b"\n"
        if tail:
            yield tail


# ----------------------------------------------------------------------
# Phase 1: parse byte ranges, route updates to per-shard part files
# ----------------------------------------------------------------------
class _ShardBuffer:
    """One shard's pending updates inside a range parser, key-table encoded."""

    __slots__ = ("ids", "metrics", "devices", "key_index", "times", "values")

    def __init__(self) -> None:
        self.ids: dict[tuple[str, str], int] = {}
        self.metrics: list[str] = []
        self.devices: list[str] = []
        self.key_index: list[int] = []
        self.times: list[float] = []
        self.values: list[float] = []


class _ShardPartWriter:
    """Routes parsed updates to shards and flushes them as ``.npz`` part files.

    A part file holds one flush of one shard's updates from one range:
    unicode key tables (``metric``/``device``), a ``key`` index column and
    the ``t``/``v`` sample columns.  At most ``flush_budget`` samples are
    buffered across all shards, so phase-1 memory is bounded no matter how
    large the range is.
    """

    def __init__(self, scratch_dir: Path, range_index: int, shards: int,
                 flush_budget: int) -> None:
        self.scratch_dir = scratch_dir
        self.range_index = range_index
        self.shards = shards
        self.flush_budget = max(2, flush_budget)
        self.total = 0
        self._buffered = 0
        self._chunks = [0] * shards
        self._buffers = [_ShardBuffer() for _ in range(shards)]

    def add(self, metric: str, device: str, timestamp: float, value: float) -> None:
        buffer = self._buffers[shard_of_key((metric, device), self.shards)]
        index = buffer.ids.get((metric, device))
        if index is None:
            index = buffer.ids[(metric, device)] = len(buffer.metrics)
            buffer.metrics.append(metric)
            buffer.devices.append(device)
        buffer.key_index.append(index)
        buffer.times.append(timestamp)
        buffer.values.append(value)
        self.total += 1
        self._buffered += 1
        if self._buffered >= self.flush_budget:
            self.flush()

    def flush(self) -> None:
        for shard, buffer in enumerate(self._buffers):
            if not buffer.key_index:
                continue
            part = (self.scratch_dir
                    / f"part-r{self.range_index:04d}-s{shard:04d}"
                      f"-c{self._chunks[shard]:05d}.npz")
            np.savez(part,
                     metric=np.asarray(buffer.metrics),
                     device=np.asarray(buffer.devices),
                     key=np.asarray(buffer.key_index, dtype=np.uint32),
                     t=np.asarray(buffer.times, dtype=np.float64),
                     v=np.asarray(buffer.values, dtype=np.float64))
            self._chunks[shard] += 1
            self._buffers[shard] = _ShardBuffer()
        self._buffered = 0


@dataclass(frozen=True)
class _RangeTask:
    """Picklable spec of one phase-1 parse task."""

    dump_path: str
    fmt: str
    start: int
    end: int
    first_line: int
    range_index: int
    shards: int
    scratch_dir: str
    flush_budget: int
    quarantine: bool
    header: tuple[str, ...] | None  # validated SNMP header cells
    metrics: tuple[str, ...] | None  # SNMP column metric names


@dataclass(frozen=True)
class _RangeResult:
    updates: int
    failures: tuple[FailureRecord, ...]


def _parse_range_worker(task: _RangeTask) -> _RangeResult:
    """Process-pool entry point: parse one byte range into shard part files."""
    try:
        return _parse_range(task)
    except Exception as error:
        raise BatchExecutionError.wrap(
            error, f"ingest range {task.range_index} of {task.dump_path} "
                   f"(bytes {task.start}..{task.end})") from error


def _parse_range(task: _RangeTask) -> _RangeResult:
    dump_path = Path(task.dump_path)
    scratch = Path(task.scratch_dir)
    # A retried task starts clean: drop any part files a previous attempt
    # of this range managed to flush before failing.
    for stale in sorted(scratch.glob(f"part-r{task.range_index:04d}-*.npz")):
        stale.unlink()
    failures: list[FailureRecord] = []

    def record_failure(line_number: int, error: ValueError) -> None:
        failures.append(FailureRecord(
            metric_name="", device_id="", stage="parse",
            error_type=type(error).__name__, message=str(error),
            provenance=f"{dump_path}:{line_number}"))

    writer = _ShardPartWriter(scratch, task.range_index, task.shards,
                              task.flush_budget)
    lines = _iter_range_lines(dump_path, task.start, task.end)
    if task.fmt == GNMI_FORMAT:
        for line_number, raw in enumerate(lines, start=task.first_line):
            stripped = raw.decode("utf-8").strip()
            if not stripped:
                continue
            try:
                update = _parse_gnmi_line(stripped, dump_path, line_number)
            except ValueError as error:
                if not task.quarantine:
                    raise
                record_failure(line_number, error)
                continue
            writer.add(update.metric, update.device, update.timestamp, update.value)
    else:
        header = list(task.header or ())
        metrics = list(task.metrics or ())
        reader = csv.reader(raw.decode("utf-8") for raw in lines)
        for row in reader:
            line_number = task.first_line + reader.line_num - 1
            if not row:
                continue
            try:
                updates = _parse_snmp_row(row, header, metrics, dump_path,
                                          line_number)
            except ValueError as error:
                if not task.quarantine:
                    raise
                record_failure(line_number, error)
                continue
            for update in updates:
                writer.add(update.metric, update.device, update.timestamp,
                           update.value)
    writer.flush()
    return _RangeResult(updates=writer.total, failures=tuple(failures))


def _read_snmp_header(path: Path) -> tuple[list[str], list[str], int, int]:
    """Parse + validate the SNMP header in the parent, before any fan-out.

    Returns ``(header cells, column metrics, data byte offset, first data
    line number)``.  Header problems always raise -- with no usable header
    the rest of the file cannot be interpreted at all, exactly the serial
    reader's contract (and its error messages).
    """
    offset = 0
    line_number = 0
    header_text = None
    with path.open("rb") as handle:
        for raw in handle:
            line_number += 1
            offset += len(raw)
            text = raw.decode("utf-8")
            if text.strip():
                header_text = text
                break
    if header_text is None:
        raise ValueError(f"{path}, line 1: empty SNMP export (missing "
                         "'timestamp,device,<metric...>' header)")
    header = next(csv.reader([header_text]))
    metrics = _validate_snmp_header(header, path, line_number)
    return header, metrics, offset, line_number + 1


# ----------------------------------------------------------------------
# Phase 2: one accumulator + finishing pass per shard
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardTask:
    """Picklable spec of one phase-2 shard-finishing task."""

    shard_index: int
    scratch_dir: str
    out_dir: str
    memory_budget_samples: int
    min_samples: int
    trace_format: str


@dataclass(frozen=True)
class _ShardResult:
    shard_index: int
    entries: tuple[dict, ...]
    skipped: tuple[dict, ...]
    updates: int
    peak_buffered_samples: int
    spilled_samples: int
    spill_writes: int


def _finish_shard_worker(task: _ShardTask) -> _ShardResult:
    """Process-pool entry point: accumulate + finish one shard's pairs."""
    try:
        return _finish_shard(task)
    except Exception as error:
        raise BatchExecutionError.wrap(
            error, f"ingest shard {task.shard_index}") from error


def _finish_shard(task: _ShardTask) -> _ShardResult:
    scratch = Path(task.scratch_dir)
    out_dir = Path(task.out_dir) / f"shard-{task.shard_index:04d}"
    acc_dir = scratch / f"acc-s{task.shard_index:04d}"
    # A retried task starts clean: a half-written previous attempt must
    # not leak trace files or scratch appends into this one.
    if out_dir.exists():
        shutil.rmtree(out_dir)
    if acc_dir.exists():
        shutil.rmtree(acc_dir)
    out_dir.mkdir(parents=True)
    save = _save_trace_npz if task.trace_format == "npz" else _save_trace_csv
    entries: list[dict] = []
    skipped: list[dict] = []
    parts = sorted(scratch.glob(f"part-r*-s{task.shard_index:04d}-c*.npz"))
    with PairAccumulator(acc_dir, task.memory_budget_samples) as accumulator:
        for part in parts:
            with np.load(part) as data:
                metrics = data["metric"]
                devices = data["device"]
                key_index = np.asarray(data["key"], dtype=np.int64)
                times = np.asarray(data["t"], dtype=np.float64)
                values = np.asarray(data["v"], dtype=np.float64)
            order = np.argsort(key_index, kind="stable")
            sorted_keys = key_index[order]
            starts = np.searchsorted(sorted_keys, np.arange(len(metrics)))
            ends = np.searchsorted(sorted_keys, np.arange(1, len(metrics) + 1))
            for index in range(len(metrics)):
                rows = order[starts[index]:ends[index]]
                if rows.size:
                    accumulator.extend((str(metrics[index]), str(devices[index])),
                                       times[rows], values[rows])
        # Canonical (metric, device) order within the shard; the parent's
        # merge interleaves the shards back into one globally sorted list.
        for key in sorted(accumulator.keys()):
            metric, device = key
            pair_times, pair_values = accumulator.samples(key)
            trace, stats = _finish_pair(metric, device, pair_times, pair_values,
                                        task.min_samples)
            if trace is None:
                skipped.append({"metric": metric, "device": device, **stats})
                continue
            file_name = f"shard-{task.shard_index:04d}/trace-{len(entries):05d}.{task.trace_format}"
            save(Path(task.out_dir) / file_name, trace)
            entries.append({"metric": metric, "device": device,
                            "interval": trace.interval, "length": len(trace),
                            "file": file_name, "ingest": stats})
        counters = (accumulator.total_samples, accumulator.peak_buffered_samples,
                    accumulator.spilled_samples, accumulator.spill_writes)
    return _ShardResult(shard_index=task.shard_index, entries=tuple(entries),
                        skipped=tuple(skipped), updates=counters[0],
                        peak_buffered_samples=counters[1],
                        spilled_samples=counters[2], spill_writes=counters[3])


# ----------------------------------------------------------------------
# Orchestration: plan -> parse -> shard -> merge
# ----------------------------------------------------------------------
def _run_phase(worker_fn: Callable[[Any], Any], tasks: list[Any], workers: int,
               on_error: str, retry: RetryPolicy,
               sleep: Callable[[float], None]) -> list[Any]:
    """Drive one phase through the fault-isolated pool, in task order.

    ``raise`` mode surfaces the first failed task -- re-raised as a plain
    ``ValueError`` when the worker hit one (a malformed line), keeping
    :func:`ingest_dump`'s error contract worker-count-independent.  In
    ``quarantine`` mode a task that is still failing after the pool's
    retries is replayed once in the parent: transient infrastructure
    faults (a crashed worker, a flaky filesystem) are salvaged
    deterministically, while a genuinely poisoned task fails the run.
    """
    results: list[Any] = []
    for index, outcome in run_batch_tasks(worker_fn, tasks, workers,
                                          retry=retry, sleep=sleep):
        if isinstance(outcome, BatchExecutionError):
            if on_error != "quarantine":
                if outcome.error_type == "ValueError":
                    raise ValueError(str(outcome)) from outcome
                raise outcome
            outcome = worker_fn(tasks[index])
        results.append(outcome)
    return results


def _sharded_ingest_into(dump: TelemetryDump, staging: Path, manifest_path: Path,
                         memory_budget_samples: int, min_samples: int,
                         trace_format: str, on_error: str, workers: int,
                         retry: RetryPolicy | None,
                         sleep: Callable[[float], None],
                         ) -> tuple[list[FailureRecord], IngestStats]:
    """The ``workers > 1`` body of :func:`ingest_dump`: parse, shard, merge.

    Builds the fleet into ``staging`` exactly as the serial
    ``_ingest_into`` would -- same trace bytes, same manifest bytes --
    and returns the quarantined parse failures in file order plus the run
    statistics.
    """
    retry = retry if retry is not None else RetryPolicy()
    if dump.format == SNMP_FORMAT:
        header, metrics, data_start, first_line = _read_snmp_header(dump.path)
    else:
        header, metrics, data_start, first_line = None, None, 0, 1
    ranges = plan_byte_ranges(dump.path, workers, data_start=data_start,
                              first_line=first_line)
    scratch = staging / ".ingest-shards"
    pending = staging / ".ingest-pending"
    scratch.mkdir(parents=True, exist_ok=True)
    pending.mkdir(parents=True, exist_ok=True)

    range_tasks = [
        _RangeTask(dump_path=str(dump.path), fmt=dump.format,
                   start=byte_range.start, end=byte_range.end,
                   first_line=byte_range.first_line, range_index=index,
                   shards=workers, scratch_dir=str(scratch),
                   flush_budget=max(2, memory_budget_samples // len(ranges)),
                   quarantine=on_error == "quarantine",
                   header=tuple(header) if header is not None else None,
                   metrics=tuple(metrics) if metrics is not None else None)
        for index, byte_range in enumerate(ranges)]
    parse_results = _run_phase(_parse_range_worker, range_tasks, workers,
                               on_error, retry, sleep)
    failures = [failure for result in parse_results for failure in result.failures]
    if sum(result.updates for result in parse_results) == 0:
        raise ValueError(f"{dump.path}: no telemetry updates found "
                         f"(format {dump.format})")

    shard_tasks = [
        _ShardTask(shard_index=shard, scratch_dir=str(scratch),
                   out_dir=str(pending),
                   memory_budget_samples=max(2, memory_budget_samples // workers),
                   min_samples=min_samples, trace_format=trace_format)
        for shard in range(workers)]
    shard_results = _run_phase(_finish_shard_worker, shard_tasks, workers,
                               on_error, retry, sleep)

    # Deterministic merge: shard outputs interleave back into the global
    # canonical (metric, device) order, trace files are renumbered into
    # the serial layout, and the manifest is rebuilt from the merged list
    # -- every byte matches a workers=1 run because each shard finished
    # its pairs with the same set-determined pipeline.
    entries = sorted((dict(entry) for result in shard_results
                      for entry in result.entries),
                     key=lambda entry: (entry["metric"], entry["device"]))
    skipped = sorted((dict(entry) for result in shard_results
                      for entry in result.skipped),
                     key=lambda entry: (entry["metric"], entry["device"]))
    for index, entry in enumerate(entries):
        file_name = f"traces/pair-{index:05d}.{trace_format}"
        os.replace(pending / entry["file"], staging / file_name)
        entry["file"] = file_name
    shutil.rmtree(scratch, ignore_errors=True)
    shutil.rmtree(pending, ignore_errors=True)

    stats = IngestStats(
        workers=workers, memory_budget_samples=memory_budget_samples,
        updates=sum(result.updates for result in shard_results),
        peak_buffered_samples=max(result.peak_buffered_samples
                                  for result in shard_results),
        spilled_samples=sum(result.spilled_samples for result in shard_results),
        spill_writes=sum(result.spill_writes for result in shard_results),
        ranges=len(ranges),
        shards=tuple(ShardIngestStats(
            shard=result.shard_index,
            updates=result.updates,
            pairs=len(result.entries),
            memory_budget_samples=max(2, memory_budget_samples // workers),
            peak_buffered_samples=result.peak_buffered_samples,
            spilled_samples=result.spilled_samples,
            spill_writes=result.spill_writes) for result in shard_results))
    _write_manifest(dump, manifest_path, trace_format, entries, skipped,
                    stats.updates, memory_budget_samples, failures, min_samples)
    return failures, stats
