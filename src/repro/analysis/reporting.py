"""Reporting helpers: CDFs, box statistics, ASCII rendering and CSV export.

The paper's figures are CDFs (Figure 4), bar charts (Figure 1) and box
plots (Figure 5).  Because the reproduction environment has no plotting
library, each benchmark prints the figure's underlying data as a text table
or ASCII chart and writes the series to CSV so it can be re-plotted
anywhere.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "empirical_cdf",
    "cdf_at",
    "BoxStats",
    "box_stats",
    "format_table",
    "ascii_bar_chart",
    "ascii_cdf",
    "write_csv",
]


def empirical_cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative fraction) for an empirical CDF."""
    array = np.sort(np.asarray(list(values), dtype=np.float64))
    if array.size == 0:
        return array, array
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def cdf_at(values: Iterable[float], thresholds: Sequence[float]) -> dict[float, float]:
    """Fraction of values at or below each threshold."""
    array = np.asarray(list(values), dtype=np.float64)
    result = {}
    for threshold in thresholds:
        result[threshold] = float((array <= threshold).mean()) if array.size else float("nan")
    return result


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary (plus mean and count) behind one box of a box plot."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum, "p25": self.p25, "median": self.median,
            "p75": self.p75, "max": self.maximum, "mean": self.mean,
            "count": float(self.count),
        }


def box_stats(values: Iterable[float]) -> BoxStats:
    """Compute the box-plot statistics of a sample (NaNs are dropped)."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        nan = float("nan")
        return BoxStats(nan, nan, nan, nan, nan, nan, 0)
    return BoxStats(
        minimum=float(np.min(array)),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        maximum=float(np.max(array)),
        mean=float(np.mean(array)),
        count=int(array.size),
    )


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
                     for line in rendered)
    return "\n".join([header, separator, body])


def ascii_bar_chart(values: Mapping[str, float], width: int = 40,
                    maximum: float | None = None) -> str:
    """Render a labelled horizontal bar chart (used for Figure 1)."""
    if not values:
        return "(no data)"
    numeric = {label: (0.0 if math.isnan(value) else float(value))
               for label, value in values.items()}
    top = maximum if maximum is not None else max(numeric.values(), default=0.0)
    top = top or 1.0
    label_width = max(len(label) for label in numeric)
    lines = []
    for label, value in numeric.items():
        filled = int(round(width * min(value / top, 1.0)))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {values[label]:.3g}")
    return "\n".join(lines)


def ascii_cdf(values: Iterable[float], width: int = 50, height: int = 12,
              log_x: bool = True) -> str:
    """Render a rough ASCII CDF (used for the Figure 4 panels)."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return "(no data)"
    xs, ys = empirical_cdf(array)
    positive = xs[xs > 0]
    if log_x and positive.size:
        x_low, x_high = math.log10(positive[0]), math.log10(positive[-1] + 1e-12)
    else:
        log_x = False
        x_low, x_high = float(xs[0]), float(xs[-1])
    if x_high <= x_low:
        x_high = x_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        position = math.log10(x) if log_x and x > 0 else x
        column = int((position - x_low) / (x_high - x_low) * (width - 1))
        row = int((1.0 - y) * (height - 1))
        column = min(max(column, 0), width - 1)
        row = min(max(row, 0), height - 1)
        grid[row][column] = "*"
    lines = ["".join(row) for row in grid]
    axis = ("log10(x) " if log_x else "x ") + f"from {x_low:.2g} to {x_high:.2g}"
    return "\n".join(lines + [axis])


def write_csv(path: str | Path, rows: Sequence[Mapping[str, object]],
              columns: Sequence[str] | None = None) -> Path:
    """Write dict rows to a CSV file (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        target.write_text("")
        return target
    columns = list(columns) if columns is not None else list(rows[0].keys())
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return target
