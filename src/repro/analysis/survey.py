"""The fleet survey: running the Nyquist estimator over every (metric, device) pair.

This module reproduces the measurement study of Section 3.2: for every pair
of a :class:`~repro.telemetry.source.TraceSource` -- a synthetic
:class:`~repro.telemetry.dataset.FleetDataset` or a recorded
:class:`~repro.telemetry.measured.MeasuredFleetDataset` -- estimate the
Nyquist rate, compare it with the production sampling rate and classify the
pair.
The result object exposes exactly the aggregations the paper's figures
need: the over-sampled fraction per metric (Figure 1), the per-metric
reduction-ratio CDFs (Figure 4), the per-metric Nyquist-rate distributions
(Figure 5) and the headline statistics quoted in the text.

The pipeline is built for fleets far beyond the paper's 1613 pairs:

* **Columnar storage.**  Survey outcomes are stored as struct-of-arrays
  :class:`RecordBlock` chunks rather than one Python object per pair, so
  every aggregation is a handful of vectorised numpy reductions streamed
  block by block.  :class:`PairRecord` remains as a lazily materialised
  per-pair view for API compatibility.
* **Out-of-core results.**  A :class:`RecordSink` receives the blocks as
  they are produced; :class:`MemoryRecordSink` keeps them in RAM while
  :class:`SpillingRecordSink` streams each block to an ``.npz`` (or
  ``.csv``) file, so a 100k+-pair survey holds at most one ``chunk_size``
  block in memory at a time and the aggregations stream back from disk.
* **Multi-worker execution.**  ``run_survey(workers=N)`` fans the whole
  per-pair pipeline -- trace *production* and estimation, not just the
  FFT -- out to a process pool.  Workers receive compact picklable batch
  specs (the source's ``worker_spec()`` plus a pair-slice address),
  re-open the source locally, run the batched engine and return columnar
  blocks; the parent only ever concatenates small result arrays.  For a
  synthetic :class:`FleetDataset` the spec is its config (traces are
  regenerated in the worker); for a
  :class:`~repro.telemetry.measured.MeasuredFleetDataset` it is the
  directory path, and the pair-slice address becomes a file-offset slice
  of the manifest's pair list.  Records are byte-identical to the
  single-process run because workers slice the pair list at the same
  ``chunk_size`` boundaries the sequential iteration flushes at, and a
  batch spec whose offset falls outside the manifest/pair count fails
  loudly instead of dropping records.

Two interchangeable backends drive the estimation:

* ``"batched"`` (the default) groups the dataset's traces by (length,
  interval) shape via :meth:`FleetDataset.trace_batches` and runs the
  batched spectral engine (:mod:`repro.core.batch`) -- one ``rfft`` and
  one vectorised energy cut-off per chunk;
* ``"scalar"`` runs :meth:`NyquistEstimator.estimate` per trace and is
  kept as the reference implementation; the two backends produce
  equivalent records (enforced by tests and
  ``benchmarks/bench_survey_throughput.py``).

:func:`run_windowed_survey` is the fleet-wide Figure 7 loop: the
moving-window Nyquist sweep run over every pair through the vectorised
windowed backend, summarising how much each pair's rate drifts -- the
continuous re-estimation the paper's Section 4 argues for.
"""

from __future__ import annotations

import enum
import math
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Literal, Sequence

import numpy as np

from ..core.nyquist import NyquistEstimate, NyquistEstimator
from ..core.windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS, rate_stability,
                             windowed_nyquist_rates)
from ..faults.execution import (RETRYABLE_EXCEPTIONS, BatchExecutionError, RetryPolicy,
                                run_batch_tasks)
from ..records import (BlockFileRef, BlockSchema, ColumnarBlock, ColumnSpec,
                       FailureRecord, FailureRecordBlock, MemoryRecordSink,
                       RecordSink, RecordStore, ScalarSpec, SpillingRecordSink,
                       fingerprint_slice, register_block_type)
from ..telemetry.dataset import TracePair
from ..telemetry.source import TraceSource, WorkerSpec, batch_offsets

__all__ = [
    "PairCategory",
    "PairRecord",
    "RecordBlock",
    "RecordSink",
    "MemoryRecordSink",
    "SpillingRecordSink",
    "SurveyResult",
    "run_survey",
    "SurveyBackend",
    "OnError",
    "WindowedPairSummary",
    "run_windowed_survey",
]

SurveyBackend = Literal["batched", "scalar"]

#: Failure handling of the fleet pipelines: fail fast (the default, the
#: historical behaviour) or quarantine failing pairs as
#: :class:`~repro.records.FailureRecord` rows and finish the healthy ones.
OnError = Literal["raise", "quarantine"]

#: Conservative reduction ratio assigned to unreliable pairs when they are
#: included in a CDF: an aliased trace's Nyquist rate is at least its
#: sampling rate, so no reduction is achievable.
UNRELIABLE_RATIO: float = 1.0


class PairCategory(enum.Enum):
    """Classification of one (metric, device) pair."""

    OVERSAMPLED = "oversampled"            # reliable estimate, clear headroom
    MARGINAL = "marginal"                  # reliable estimate, little or no headroom
    ALIASED_SUSPECT = "aliased_suspect"    # estimator refused (probably already aliased)


#: Stable integer codes for the columnar ``category`` column (also the
#: on-disk representation, so the order must never be reshuffled).
_CATEGORY_ORDER: tuple[PairCategory, ...] = (
    PairCategory.OVERSAMPLED, PairCategory.MARGINAL, PairCategory.ALIASED_SUSPECT)
_CATEGORY_CODE = {category: code for code, category in enumerate(_CATEGORY_ORDER)}
_OVERSAMPLED_CODE = _CATEGORY_CODE[PairCategory.OVERSAMPLED]
_MARGINAL_CODE = _CATEGORY_CODE[PairCategory.MARGINAL]
_SUSPECT_CODE = _CATEGORY_CODE[PairCategory.ALIASED_SUSPECT]


@dataclass(frozen=True)
class PairRecord:
    """Survey outcome for one (metric, device) pair.

    A per-pair *view*: the survey stores outcomes columnarly in
    :class:`RecordBlock` arrays and materialises these objects lazily
    (``SurveyResult.records``) for callers that want one object per pair.
    """

    metric_name: str
    device_id: str
    current_rate: float
    nyquist_rate: float
    reduction_ratio: float
    category: PairCategory
    reliable: bool
    true_nyquist_rate: float
    trace_duration: float

    @property
    def oversampled(self) -> bool:
        return self.category is PairCategory.OVERSAMPLED


@register_block_type
@dataclass(frozen=True)
class RecordBlock(ColumnarBlock):
    """Struct-of-arrays storage for one chunk of survey outcomes.

    All rows belong to one metric (chunks are produced per metric by both
    the sequential and the multi-worker pipeline), so the metric name is a
    single scalar rather than a per-row column.  Blocks are the unit of
    spilling: each one round-trips losslessly through ``.npz`` or ``.csv``
    behind the sink layer of :mod:`repro.records`, with the layout (and
    hence the on-disk format) declared once in ``_SCHEMA``.
    """

    _SCHEMA = BlockSchema(
        scalars=(ScalarSpec("metric_name", "metric"),),
        columns=(
            ColumnSpec("device_ids", "str", csv_name="device_id"),
            ColumnSpec("current_rate", "float"),
            ColumnSpec("nyquist_rate", "float"),
            ColumnSpec("reduction_ratio", "float"),
            ColumnSpec("category", "int8"),
            ColumnSpec("reliable", "bool"),
            ColumnSpec("true_nyquist_rate", "float"),
            ColumnSpec("trace_duration", "float"),
        ))

    metric_name: str
    device_ids: np.ndarray
    current_rate: np.ndarray
    nyquist_rate: np.ndarray
    reduction_ratio: np.ndarray
    category: np.ndarray
    reliable: np.ndarray
    true_nyquist_rate: np.ndarray
    trace_duration: np.ndarray

    # ------------------------------------------------------------------
    def to_records(self) -> Iterator[PairRecord]:
        """Materialise one :class:`PairRecord` view per row."""
        for index in range(len(self)):
            yield PairRecord(
                metric_name=self.metric_name,
                device_id=str(self.device_ids[index]),
                current_rate=float(self.current_rate[index]),
                nyquist_rate=float(self.nyquist_rate[index]),
                reduction_ratio=float(self.reduction_ratio[index]),
                category=_CATEGORY_ORDER[int(self.category[index])],
                reliable=bool(self.reliable[index]),
                true_nyquist_rate=float(self.true_nyquist_rate[index]),
                trace_duration=float(self.trace_duration[index]),
            )

    @classmethod
    def from_records(cls, metric_name: str, records: Sequence[PairRecord]) -> "RecordBlock":
        """Pack per-pair records (all of one metric) into columnar form."""
        rows = len(records)
        return cls(
            metric_name=metric_name,
            device_ids=np.array([record.device_id for record in records], dtype=np.str_),
            current_rate=np.fromiter((r.current_rate for r in records), np.float64, rows),
            nyquist_rate=np.fromiter((r.nyquist_rate for r in records), np.float64, rows),
            reduction_ratio=np.fromiter((r.reduction_ratio for r in records),
                                        np.float64, rows),
            category=np.fromiter((_CATEGORY_CODE[r.category] for r in records),
                                 np.int8, rows),
            reliable=np.fromiter((r.reliable for r in records), bool, rows),
            true_nyquist_rate=np.fromiter((r.true_nyquist_rate for r in records),
                                          np.float64, rows),
            trace_duration=np.fromiter((r.trace_duration for r in records),
                                       np.float64, rows),
        )

def _blocks_from_records(records: Iterable[PairRecord]) -> Iterator[RecordBlock]:
    """Group an ordered record stream into per-metric-run columnar blocks."""
    buffer: list[PairRecord] = []
    current: str | None = None
    for record in records:
        if current is not None and record.metric_name != current:
            yield RecordBlock.from_records(current, buffer)
            buffer = []
        current = record.metric_name
        buffer.append(record)
    if buffer:
        assert current is not None
        yield RecordBlock.from_records(current, buffer)


class SurveyResult:
    """All pair records of one survey run, with figure-oriented aggregations.

    Outcomes live in columnar :class:`RecordBlock` chunks behind a
    :class:`RecordSink`; every aggregation streams the blocks and reduces
    them with vectorised numpy operations, so a spilled (out-of-core)
    survey aggregates identically to an in-memory one while holding one
    block in memory at a time.  ``records`` materialises the classic
    per-pair :class:`PairRecord` list on demand.
    """

    def __init__(self, records: Iterable[PairRecord] | None = None,
                 oversample_threshold: float = 1.25,
                 sink: RecordSink | None = None,
                 failure_sink: RecordSink | None = None) -> None:
        self.oversample_threshold = oversample_threshold
        #: Pairs served from / recomputed past a RecordStore (both stay 0
        #: on store-less runs); see ``run_survey(store=...)``.
        self.cache_hits = 0
        self.cache_misses = 0
        self._sink = sink if sink is not None else MemoryRecordSink()
        self._failure_sink = failure_sink if failure_sink is not None \
            else MemoryRecordSink()
        self._metric_order: list[str] = []
        for block in self._sink.blocks():  # adopt pre-existing (reopened) sink content
            self._note_metric(block.metric_name)
        if records is not None:
            for block in _blocks_from_records(records):
                self.append_block(block)

    # ------------------------------------------------------------------
    def _note_metric(self, metric_name: str) -> None:
        if metric_name not in self._metric_order:
            self._metric_order.append(metric_name)

    def append_block(self, block: RecordBlock) -> None:
        """Append one columnar chunk of outcomes (the pipeline's feed)."""
        self._sink.append(block)
        self._note_metric(block.metric_name)

    def iter_blocks(self) -> Iterator[RecordBlock]:
        """Stream the stored columnar chunks in survey order."""
        return self._sink.blocks()

    @property
    def sink(self) -> RecordSink:
        return self._sink

    # --------------------- quarantine accounting -----------------------
    def append_failures(self, failures: Sequence[FailureRecord]) -> None:
        """Record one batch slice's quarantined failures (pipeline feed)."""
        if failures:
            self._failure_sink.append(FailureRecordBlock.from_failures(failures))

    def iter_failure_blocks(self) -> Iterator[FailureRecordBlock]:
        """Stream the quarantined-failure chunks in survey order."""
        return self._failure_sink.blocks()

    @property
    def failure_sink(self) -> RecordSink:
        return self._failure_sink

    @property
    def quarantined(self) -> list[FailureRecord]:
        """Per-failure view of the quarantine store, materialised on demand."""
        return [failure for block in self._failure_sink.blocks()
                for failure in block.failures()]

    @property
    def quarantined_count(self) -> int:
        """Number of pairs quarantined during the run."""
        return self._failure_sink.rows

    def __len__(self) -> int:
        return self._sink.rows

    @property
    def records(self) -> list[PairRecord]:
        """Per-pair view of the columnar store, materialised on demand."""
        return [record for block in self._sink.blocks() for record in block.to_records()]

    def metrics(self) -> list[str]:
        """Metric names present in the survey, in first-appearance order."""
        return list(self._metric_order)

    def records_for_metric(self, metric_name: str) -> list[PairRecord]:
        return [record for block in self._sink.blocks() if block.metric_name == metric_name
                for record in block.to_records()]

    # -------------------------- Figure 1 ------------------------------
    def oversampled_fraction_by_metric(self) -> dict[str, float]:
        """Fraction of devices per metric currently sampled above the Nyquist rate."""
        counts: dict[str, list[int]] = {}
        for block in self._sink.blocks():
            entry = counts.setdefault(block.metric_name, [0, 0])
            entry[0] += len(block)
            entry[1] += int(np.count_nonzero(block.category == _OVERSAMPLED_CODE))
        return {metric: (counts[metric][1] / counts[metric][0] if counts[metric][0]
                         else float("nan"))
                for metric in self._metric_order}

    # -------------------------- Figure 4 ------------------------------
    def reduction_ratios(self, metric_name: str | None = None,
                         include_unreliable: bool = False) -> np.ndarray:
        """Reduction ratios (current rate / Nyquist rate) for the CDFs of Figure 4.

        Unreliable pairs ("we do not show the cases where we cannot
        reliably detect the Nyquist rate") are excluded by default, exactly
        as the paper does.  With ``include_unreliable=True`` every pair is
        represented: unreliable pairs enter at the conservative ratio
        :data:`UNRELIABLE_RATIO` (1.0), since a trace the estimator deems
        aliased has a Nyquist rate of at least its sampling rate and hence
        admits no reduction.
        """
        parts: list[np.ndarray] = []
        for block in self._sink.blocks():
            if metric_name is not None and block.metric_name != metric_name:
                continue
            usable = block.reliable & ~np.isnan(block.reduction_ratio)
            mask = usable | (~block.reliable) if include_unreliable else usable
            parts.append(np.where(block.reliable, block.reduction_ratio,
                                  UNRELIABLE_RATIO)[mask])
        return np.concatenate(parts) if parts else np.array([])

    # -------------------------- Figure 5 ------------------------------
    def nyquist_rates(self, metric_name: str) -> np.ndarray:
        """Reliable Nyquist-rate estimates for one metric (the Figure 5 boxes)."""
        parts = [block.nyquist_rate[block.reliable & (block.nyquist_rate > 0)]
                 for block in self._sink.blocks() if block.metric_name == metric_name]
        return np.concatenate(parts) if parts else np.array([])

    # -------------------------- Headline text -------------------------
    def headline(self) -> dict[str, float]:
        """The §3.2 headline statistics.

        Keys mirror the paper's claims: total pairs, distinct metrics, the
        fraction sampled above the Nyquist rate (paper: 89 %), the fraction
        needing closer inspection (paper: ~11 %), and the fraction of
        reliable pairs whose rate could be reduced by at least
        10/100/1000x (paper: ~20 % at 1000x).

        The needs-inspection population is reported split by cause:
        ``aliased_suspect_fraction`` counts the pairs the estimator
        refused (with the calibrated ``aliased_band_fraction`` default
        this is where the paper's "record -1" pairs land), while
        ``marginal_fraction`` counts reliably estimated pairs whose
        cut-off sits essentially at the measurable band edge (reduction
        ratio pinned near 1).  ``undersampled_or_suspect_fraction`` is the
        legacy aggregate of the two (the complement of
        ``oversampled_fraction``); earlier versions reported *only* that
        conflated number, making it impossible to tell how much of the
        ~11 % was refused estimates versus at-the-edge marginal pairs.
        """
        total = len(self)
        if total == 0:
            return {"pairs": 0.0}
        oversampled = marginal = suspect = 0
        for block in self._sink.blocks():
            oversampled += int(np.count_nonzero(block.category == _OVERSAMPLED_CODE))
            marginal += int(np.count_nonzero(block.category == _MARGINAL_CODE))
            suspect += int(np.count_nonzero(block.category == _SUSPECT_CODE))
        ratios = self.reduction_ratios()
        temperature_rates = (self.nyquist_rates("Temperature")
                             if "Temperature" in self._metric_order else np.array([]))
        headline = {
            "pairs": float(total),
            "metrics": float(len(self._metric_order)),
            "oversampled_fraction": oversampled / total,
            "marginal_fraction": marginal / total,
            "aliased_suspect_fraction": suspect / total,
            "undersampled_or_suspect_fraction": (marginal + suspect) / total,
            "reducible_10x_fraction": float((ratios >= 10).mean()) if ratios.size else float("nan"),
            "reducible_100x_fraction": float((ratios >= 100).mean()) if ratios.size else float("nan"),
            "reducible_1000x_fraction": float((ratios >= 1000).mean()) if ratios.size else float("nan"),
            "median_reduction_ratio": float(np.median(ratios)) if ratios.size else float("nan"),
            "quarantined_pairs": float(self._failure_sink.rows),
        }
        if temperature_rates.size:
            headline["temperature_nyquist_min_hz"] = float(np.min(temperature_rates))
            headline["temperature_nyquist_max_hz"] = float(np.max(temperature_rates))
        return headline

    # -------------------------- accuracy vs ground truth ---------------
    def estimation_accuracy(self) -> dict[str, float]:
        """How close the estimated Nyquist rates are to the generators' ground truth.

        Only meaningful for synthetic data (where the true bandwidth is
        known); reported as the median and 90th percentile of the ratio
        ``estimate / true`` over reliable pairs whose true rate is actually
        observable from a trace of this length (at least a couple of cycles
        fit in the trace -- slower signals are necessarily clamped to the
        trace's frequency resolution and would only measure that clamp).
        A ratio near 1 means the §3.2 estimator recovers the planted rate.
        """
        parts: list[np.ndarray] = []
        for block in self._sink.blocks():
            mask = block.reliable & (block.true_nyquist_rate > 0)
            safe_duration = np.where(block.trace_duration > 0, block.trace_duration, 1.0)
            unobservable = (block.trace_duration > 0) & \
                (block.true_nyquist_rate < 4.0 / safe_duration)
            mask &= ~unobservable
            if mask.any():
                parts.append(block.nyquist_rate[mask] / block.true_nyquist_rate[mask])
        if not parts:
            return {"pairs": 0.0}
        array = np.concatenate(parts)
        if array.size == 0:
            return {"pairs": 0.0}
        return {
            "pairs": float(array.size),
            "median_ratio": float(np.median(array)),
            "p10_ratio": float(np.percentile(array, 10)),
            "p90_ratio": float(np.percentile(array, 90)),
        }


# ----------------------------------------------------------------------
def _block_from_estimates(metric_name: str, pairs: Sequence[TracePair],
                          estimates: Sequence[NyquistEstimate], current_rate: float,
                          oversample_threshold: float,
                          trace_duration: float) -> RecordBlock:
    """Compact one batch's estimates into a columnar block (classification included)."""
    rows = len(pairs)
    nyquist = np.fromiter((e.nyquist_rate for e in estimates), np.float64, rows)
    ratio = np.fromiter((e.reduction_ratio for e in estimates), np.float64, rows)
    reliable = np.fromiter((e.reliable for e in estimates), bool, rows)
    # Vectorised _classify: refused -> suspect; reliable with headroom ->
    # oversampled; the rest (including nan ratios) -> marginal.
    category = np.where(~reliable, _SUSPECT_CODE,
                        np.where(ratio > oversample_threshold, _OVERSAMPLED_CODE,
                                 _MARGINAL_CODE)).astype(np.int8)
    return RecordBlock(
        metric_name=metric_name,
        device_ids=np.array([pair.device.device_id for pair in pairs], dtype=np.str_),
        current_rate=np.full(rows, current_rate),
        nyquist_rate=nyquist,
        reduction_ratio=ratio,
        category=category,
        reliable=reliable,
        true_nyquist_rate=np.fromiter((pair.parameters.true_nyquist_rate for pair in pairs),
                                      np.float64, rows),
        trace_duration=np.full(rows, trace_duration),
    )


#: Per-worker-process source cache: re-opening the source once per process
#: instead of once per task keeps tasks cheap (worker specs are hashable
#: frozen dataclasses -- a DatasetConfig or a MeasuredSourceSpec -- so the
#: spec doubles as the cache key).
_WORKER_SOURCES: dict[WorkerSpec, TraceSource] = {}


def _survey_slice_blocks(source: TraceSource, metric_name: str, offset: int,
                         limit: int | None, estimator: NyquistEstimator,
                         oversample_threshold: float, fft_workers: int | None,
                         chunk_size: int, trace_duration: float) -> list[RecordBlock]:
    """Run the batched engine over one pair slice and compact the outcomes."""
    blocks: list[RecordBlock] = []
    for batch in source.trace_batches(metric_name, limit=limit, offset=offset,
                                      chunk_size=chunk_size):
        estimates = estimator.estimate_batch(batch.values, batch.interval,
                                             fft_workers=fft_workers)
        blocks.append(_block_from_estimates(metric_name, batch.pairs, estimates,
                                            batch.sampling_rate, oversample_threshold,
                                            trace_duration))
    return blocks


def _spill_task_blocks(blocks: Sequence[ColumnarBlock], spill: tuple[str, int],
                       prefix: str) -> list[BlockFileRef]:
    """Write a worker's result blocks as scratch rcb files, return the refs.

    The refs are a few dozen bytes each, so the pool's result pipe ships
    pointers instead of pickled column arrays -- the fix for multi-worker
    runs being *slower* than sequential ones when a spilling sink or
    record store (which re-serialises the blocks anyway) is in use.
    """
    scratch, tag = spill
    refs: list[BlockFileRef] = []
    for index, block in enumerate(blocks):
        path = Path(scratch) / f"{prefix}-{tag:05d}-{index:03d}.rcb"
        block.save_rcb(path)
        refs.append(BlockFileRef(str(path)))
    return refs


def _materialise_blocks(outcome: Sequence) -> list:
    """Resolve a worker outcome into blocks, loading spill-file refs.

    Referenced scratch files are unlinked right after the mmap is opened
    (the mapping keeps the data alive), so the scratch directory never
    holds more than the in-flight results.
    """
    blocks = []
    for item in outcome:
        if isinstance(item, BlockFileRef):
            block = item.load()
            Path(item.path).unlink(missing_ok=True)
            blocks.append(block)
        else:
            blocks.append(item)
    return blocks


def _survey_worker(task: tuple) -> list:
    """Process-pool entry point: serve one pair slice, estimate, compact.

    ``task`` is a picklable batch spec ``(worker_spec, metric_name,
    offset, limit, estimator, oversample_threshold, fft_workers,
    chunk_size, spill)``; the worker re-opens the trace source locally
    from the spec (``spec.open()``: a synthetic fleet regenerates from
    its config, a measured fleet re-reads its manifest and serves the
    file-offset slice) and returns compact columnar blocks -- no trace
    data crosses the process boundary.  With ``spill`` set (a
    ``(scratch_dir, task_tag)`` pair, used when the parent re-serialises
    blocks anyway), the blocks are written as scratch ``.rcb`` files and
    only :class:`~repro.records.BlockFileRef` pointers return through the
    pipe.  A slice address outside the source's pair list raises instead
    of silently dropping records.

    Failures surface as :class:`~repro.faults.BatchExecutionError` naming
    the batch spec (source, metric, offset, limit) -- never a bare
    traceback from the pool -- with IO-shaped errors marked retryable.
    """
    (spec, metric_name, offset, limit, estimator,
     oversample_threshold, fft_workers, chunk_size, spill) = task
    context = (f"survey batch (source={spec}, metric={metric_name!r}, "
               f"offset={offset}, limit={limit})")
    try:
        source = _WORKER_SOURCES.get(spec)
        if source is None:
            source = spec.open()
            _WORKER_SOURCES[spec] = source
        blocks = _survey_slice_blocks(source, metric_name, offset, limit, estimator,
                                      oversample_threshold, fft_workers, chunk_size,
                                      source.trace_duration)
        if spill is None:
            return blocks
        return _spill_task_blocks(blocks, spill, "survey")
    except Exception as error:
        raise BatchExecutionError.wrap(error, context) from error


def _quarantine_survey_slice(source: TraceSource, result: SurveyResult,
                             metric_name: str, offset: int, limit: int | None,
                             estimator: NyquistEstimator, oversample_threshold: float,
                             fft_workers: int | None, trace_duration: float) -> None:
    """Per-pair salvage of one failed batch slice.

    Healthy pairs of the slice complete through per-pair estimation
    (estimates are chunk-size invariant, so their records match the
    no-fault run bit for bit) and land in one block in pair order;
    failing pairs become :class:`~repro.records.FailureRecord` rows.
    Both outcomes are pure functions of the slice address, so any worker
    count produces identical record *and* failure blocks.
    """
    pairs = source.pairs_for_metric(metric_name)[offset:offset + limit]
    survivors: list = []
    estimates: list[NyquistEstimate] = []
    failures: list[FailureRecord] = []
    current_rate = 0.0
    for position, pair in enumerate(pairs):
        try:
            trace = source.load(pair)
        except Exception as error:
            failures.append(FailureRecord.from_pair(pair, metric_name, "trace", error,
                                                    offset + position))
            continue
        try:
            estimate = estimator.estimate_batch(trace.values[np.newaxis, :],
                                                trace.interval,
                                                fft_workers=fft_workers)[0]
        except Exception as error:
            failures.append(FailureRecord.from_pair(pair, metric_name, "estimate",
                                                    error, offset + position))
            continue
        survivors.append(pair)
        estimates.append(estimate)
        current_rate = trace.sampling_rate
    if survivors:
        result.append_block(_block_from_estimates(metric_name, survivors, estimates,
                                                  current_rate, oversample_threshold,
                                                  trace_duration))
    result.append_failures(failures)


def _survey_slice_or_quarantine(dataset: TraceSource, result: SurveyResult,
                                metric_name: str, offset: int, limit: int,
                                estimator: NyquistEstimator, fft_workers: int | None,
                                chunk_size: int, trace_duration: float,
                                on_error: OnError, retry: RetryPolicy,
                                sleep: Callable[[float], None]) -> list[RecordBlock] | None:
    """Serve one slice sequentially under the run's error policy.

    With ``on_error="raise"`` the first failure propagates; with
    ``"quarantine"`` a transiently failing slice is retried under the
    policy's budget and, once exhausted -- or immediately for content
    errors -- salvaged pair by pair (returning ``None``: the salvage
    appends its blocks and failures to ``result`` itself).
    """
    if on_error == "raise":
        return _survey_slice_blocks(dataset, metric_name, offset, limit, estimator,
                                    result.oversample_threshold, fft_workers,
                                    chunk_size, trace_duration)
    for attempt in range(1, retry.max_attempts + 1):
        try:
            return _survey_slice_blocks(
                dataset, metric_name, offset, limit, estimator,
                result.oversample_threshold, fft_workers, chunk_size,
                trace_duration)
        except RETRYABLE_EXCEPTIONS:
            if attempt < retry.max_attempts:
                sleep(retry.delay(attempt))
                continue
            _quarantine_survey_slice(dataset, result, metric_name, offset, limit,
                                     estimator, result.oversample_threshold,
                                     fft_workers, trace_duration)
            return None
        except Exception:
            _quarantine_survey_slice(dataset, result, metric_name, offset, limit,
                                     estimator, result.oversample_threshold,
                                     fft_workers, trace_duration)
            return None
    return None


def _run_survey_quarantined(dataset: TraceSource, result: SurveyResult,
                            estimator: NyquistEstimator, metric_names: Sequence[str],
                            limit_per_metric: int | None, chunk_size: int,
                            fft_workers: int | None, retry: RetryPolicy,
                            sleep: Callable[[float], None]) -> None:
    """Sequential quarantine execution: batch isolation at chunk boundaries.

    Works slice by slice at the same ``chunk_size`` boundaries the
    multi-worker batch specs use, so a quarantined run's blocks are
    byte-identical at any worker count.  A slice that fails with a
    transient (IO-shaped) error is retried under the policy's budget;
    once exhausted -- or immediately for content errors -- the slice is
    salvaged pair by pair.
    """
    trace_duration = dataset.trace_duration
    for metric_name in metric_names:
        for offset, limit in batch_offsets(dataset, metric_name, limit_per_metric,
                                           chunk_size):
            blocks = _survey_slice_or_quarantine(
                dataset, result, metric_name, offset, limit, estimator, fft_workers,
                chunk_size, trace_duration, "quarantine", retry, sleep)
            if blocks is None:
                continue
            for block in blocks:
                result.append_block(block)


def _run_survey_parallel(dataset: TraceSource, result: SurveyResult,
                         estimator: NyquistEstimator, metric_names: Sequence[str],
                         limit_per_metric: int | None, chunk_size: int, workers: int,
                         fft_workers: int | None, on_error: OnError,
                         retry: RetryPolicy, sleep: Callable[[float], None],
                         scratch_dir: Path | None = None) -> None:
    """Fan trace production + estimation out to a process pool, in survey order.

    Tasks slice each metric's pair list at ``chunk_size`` boundaries --
    exactly where the sequential ``trace_batches`` iteration flushes -- so
    the reassembled blocks are byte-identical to a ``workers=1`` run.
    Offsets are derived from the source's own pair counts (the manifest,
    for a measured fleet), and the worker-side slice validation rejects
    any address past that count.

    Execution runs through :func:`~repro.faults.run_batch_tasks`:
    transient batch failures are retried with deterministic backoff and a
    crashed worker (``BrokenProcessPool``) costs one batch retry, not the
    run.  A batch that stays failed is raised (``on_error="raise"``) or
    salvaged pair by pair on the parent's own source
    (``on_error="quarantine"``) -- the same salvage the sequential
    quarantine path runs, so blocks stay worker-count independent.
    """
    spec = dataset.worker_spec()
    trace_duration = dataset.trace_duration
    tasks = []
    addresses = []
    for metric_name in metric_names:
        for offset, limit in batch_offsets(dataset, metric_name, limit_per_metric,
                                           chunk_size):
            spill = None if scratch_dir is None else (str(scratch_dir), len(tasks))
            tasks.append((spec, metric_name, offset, limit, estimator,
                          result.oversample_threshold, fft_workers, chunk_size,
                          spill))
            addresses.append((metric_name, offset, limit))
    for index, outcome in run_batch_tasks(_survey_worker, tasks, workers,
                                          retry=retry, sleep=sleep):
        if isinstance(outcome, BatchExecutionError):
            if on_error == "raise":
                raise outcome
            metric_name, offset, limit = addresses[index]
            _quarantine_survey_slice(dataset, result, metric_name, offset, limit,
                                     estimator, result.oversample_threshold,
                                     fft_workers, trace_duration)
            continue
        for block in _materialise_blocks(outcome):
            result.append_block(block)


def _survey_params_token(estimator: NyquistEstimator, result: SurveyResult) -> str:
    """Analysis-parameter half of a survey slice's fingerprint."""
    return (f"{estimator.cache_token()}|"
            f"oversample_threshold={result.oversample_threshold!r}")


def _run_survey_with_store(dataset: TraceSource, result: SurveyResult,
                           store: "RecordStore", estimator: NyquistEstimator,
                           metric_names: Sequence[str], limit_per_metric: int | None,
                           chunk_size: int, workers: int, fft_workers: int | None,
                           on_error: OnError, retry: RetryPolicy,
                           sleep: Callable[[float], None],
                           scratch_dir: Path | None) -> None:
    """Store-backed execution: serve cached slices, recompute only misses.

    Every slice is fingerprinted over its pair contents and analysis
    parameters (:func:`~repro.records.fingerprint_slice`).  Hits are
    appended straight from the store as memory-mapped blocks -- no trace
    generation, no estimator call -- and misses run exactly as a
    store-less run would (fanned out to the process pool when
    ``workers > 1``, sequentially otherwise), then written back.  Blocks
    are appended in survey order regardless of hit/miss interleaving, so
    results stay byte-identical to a cold run at any worker count.
    Quarantined slices are never cached: their salvage blocks depend on
    which pairs failed, not just the slice address.
    """
    trace_duration = dataset.trace_duration
    params_token = _survey_params_token(estimator, result)
    slices: list[tuple[str, int, int]] = []
    fingerprints: list = []
    cached: list = []
    for metric_name in metric_names:
        for offset, limit in batch_offsets(dataset, metric_name, limit_per_metric,
                                           chunk_size):
            fingerprint = fingerprint_slice("survey", dataset, metric_name, offset,
                                            limit, chunk_size, params_token)
            slices.append((metric_name, offset, limit))
            fingerprints.append(fingerprint)
            cached.append(store.get(fingerprint))

    outcomes = None
    if workers > 1:
        spec = dataset.worker_spec()
        tasks = []
        for index, (metric_name, offset, limit) in enumerate(slices):
            if cached[index] is not None:
                continue
            spill = None if scratch_dir is None else (str(scratch_dir), index)
            tasks.append((spec, metric_name, offset, limit, estimator,
                          result.oversample_threshold, fft_workers, chunk_size,
                          spill))
        outcomes = run_batch_tasks(_survey_worker, tasks, workers,
                                   retry=retry, sleep=sleep)

    for index, (metric_name, offset, limit) in enumerate(slices):
        hit = cached[index]
        if hit is not None:
            result.cache_hits += limit
            for block in hit:
                result.append_block(block)
            continue
        result.cache_misses += limit
        if outcomes is not None:
            _, outcome = next(outcomes)
            if isinstance(outcome, BatchExecutionError):
                if on_error == "raise":
                    raise outcome
                _quarantine_survey_slice(dataset, result, metric_name, offset, limit,
                                         estimator, result.oversample_threshold,
                                         fft_workers, trace_duration)
                continue
            blocks = _materialise_blocks(outcome)
        else:
            maybe_blocks = _survey_slice_or_quarantine(
                dataset, result, metric_name, offset, limit, estimator, fft_workers,
                chunk_size, trace_duration, on_error, retry, sleep)
            if maybe_blocks is None:
                continue
            blocks = maybe_blocks
        store.put(fingerprints[index], blocks)
        for block in blocks:
            result.append_block(block)


def run_survey(dataset: TraceSource, estimator: NyquistEstimator | None = None,
               oversample_threshold: float = 1.25,
               metrics: Sequence[str] | None = None,
               limit_per_metric: int | None = None,
               backend: SurveyBackend = "batched",
               chunk_size: int = 1024,
               workers: int | None = None,
               fft_workers: int | None = None,
               sink: RecordSink | None = None,
               on_error: OnError = "raise",
               failure_sink: RecordSink | None = None,
               store: "RecordStore | None" = None,
               retry: RetryPolicy | None = None,
               retry_sleep: Callable[[float], None] = time.sleep) -> SurveyResult:
    """Run the Section 3.2 analysis over a whole dataset.

    Parameters
    ----------
    dataset:
        Any :class:`~repro.telemetry.source.TraceSource`: a synthetic
        :class:`~repro.telemetry.dataset.FleetDataset` or a recorded
        :class:`~repro.telemetry.measured.MeasuredFleetDataset` (a
        directory exported by ``FleetDataset.export`` surveys
        byte-identically to the in-memory dataset it came from).
    estimator:
        Nyquist estimator; defaults to the paper's 99 % configuration.
    oversample_threshold:
        Reduction ratio above which a pair counts as over-sampled.  The
        paper's wording is simply "higher than their Nyquist rate"; a small
        margin (default 1.25x) keeps borderline pairs -- whose estimate sits
        within estimation noise of the sampling rate itself -- out of the
        over-sampled bucket.
    metrics:
        Restrict the survey to these metrics (default: all in the dataset).
    limit_per_metric:
        Cap the number of pairs analysed per metric (useful for quick runs
        and benchmarks).
    backend:
        ``"batched"`` (default) analyses equal-shape trace groups with the
        vectorised engine of :mod:`repro.core.batch`; ``"scalar"`` runs
        the reference per-trace estimator.  Both produce equivalent
        records in the same order.
    chunk_size:
        Maximum traces held in memory at once (memory is bounded at
        ``chunk_size * samples_per_trace`` floats regardless of fleet
        size); also the row count of each columnar result block and the
        slice size of the multi-worker batch specs.
    workers:
        Number of survey worker *processes*.  With ``workers >= 2``,
        trace production and estimation both fan out to a process pool
        (batched backend only): workers receive picklable batch specs
        (``dataset.worker_spec()`` + a pair-slice address), re-open the
        source locally and return compact columnar blocks.  The records
        are byte-identical to a single-process run.  Synthetic fleets
        ship their config and regenerate; measured fleets ship their
        directory and serve file-offset slices of the manifest.
    fft_workers:
        pocketfft thread count for the batched engine's ``rfft`` (see
        :func:`repro.core.batch.batch_estimate`).
    sink:
        Destination for the columnar result blocks.  Default: in-memory.
        Pass a :class:`SpillingRecordSink` to stream records to disk so a
        100k+-pair survey's memory stays bounded by ``chunk_size``.
    on_error:
        ``"raise"`` (default) fails fast on the first broken pair or
        batch, as the pipeline always has.  ``"quarantine"`` (batched
        backend only) isolates failures at the batch boundary: a failing
        slice is salvaged pair by pair, healthy pairs complete with
        records byte-identical to a no-fault run, and every failure is
        recorded as a :class:`~repro.records.FailureRecord` row flowing
        into ``failure_sink`` (see ``SurveyResult.quarantined`` and the
        ``quarantined_pairs`` headline entry).
    failure_sink:
        Destination for the quarantined-failure blocks (default:
        in-memory; pass a :class:`SpillingRecordSink` on its own
        directory for out-of-core runs).
    store:
        A :class:`~repro.records.RecordStore` for incremental reruns
        (batched backend only).  Each ``chunk_size`` slice is
        fingerprinted over its pair contents and analysis parameters;
        fingerprints already in the store are served as memory-mapped
        blocks without generating a trace or calling the estimator, and
        misses are computed exactly as a store-less run would (including
        the multi-worker fan-out) then written back atomically.  Results
        are byte-identical either way; ``SurveyResult.cache_hits`` /
        ``cache_misses`` count the pairs on each path.  Quarantined
        slices are never cached.
    retry:
        Bounded-retry policy for transient (IO-shaped) batch failures
        and crashed workers; defaults to
        :class:`~repro.faults.RetryPolicy` (3 attempts, deterministic
        exponential backoff).  Applies to multi-worker runs in both
        error modes and to sequential quarantine runs.
    retry_sleep:
        Sleep callable for the backoff delays (injectable so tests and
        benchmarks skip the real waits).
    """
    if oversample_threshold < 1:
        raise ValueError("oversample_threshold must be >= 1")
    if backend not in ("batched", "scalar"):
        raise ValueError(f"unknown backend {backend!r}; choose 'batched' or 'scalar'")
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"unknown on_error {on_error!r}; choose 'raise' or 'quarantine'")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers is not None and workers > 1 and backend != "batched":
        raise ValueError("multi-worker execution requires the 'batched' backend")
    if on_error == "quarantine" and backend != "batched":
        raise ValueError("quarantine execution requires the 'batched' backend "
                         "(failures are isolated at its batch boundaries)")
    if store is not None and backend != "batched":
        raise ValueError("store-backed execution requires the 'batched' backend "
                         "(slices are fingerprinted at its batch boundaries)")
    if sink is not None and sink.rows > 0:
        # Appending a fresh survey to leftover records would silently
        # corrupt every aggregation with duplicates; a previous run's spill
        # directory is re-opened with SurveyResult(sink=...) instead.
        raise ValueError(
            f"sink already holds {sink.rows} records; run_survey needs an empty sink "
            "(point SpillingRecordSink at a fresh directory, or re-open the existing "
            "one with SurveyResult(sink=...))")
    if failure_sink is not None and failure_sink.rows > 0:
        raise ValueError(
            f"failure_sink already holds {failure_sink.rows} records; run_survey "
            "needs an empty failure sink (point it at a fresh directory, or re-open "
            "the existing one with SurveyResult(failure_sink=...))")
    estimator = estimator or NyquistEstimator()
    result = SurveyResult(oversample_threshold=oversample_threshold, sink=sink,
                          failure_sink=failure_sink)
    metric_names = list(metrics) if metrics is not None else dataset.metric_names()
    trace_duration = dataset.trace_duration
    retry = retry if retry is not None else RetryPolicy()

    # Workers return .rcb spill-file refs instead of pickled arrays when
    # the parent re-serialises the blocks anyway (store writes, spilling
    # sinks) -- the scratch directory lives next to the destination so the
    # rename-free loads stay on one filesystem.
    worker_count = workers if workers is not None else 1
    scratch_dir: Path | None = None
    if worker_count > 1:
        if store is not None:
            scratch_dir = store.directory / ".scratch"
        elif isinstance(sink, SpillingRecordSink):
            scratch_dir = sink.directory / ".scratch"
    try:
        if scratch_dir is not None:
            scratch_dir.mkdir(parents=True, exist_ok=True)

        if store is not None:
            _run_survey_with_store(dataset, result, store, estimator, metric_names,
                                   limit_per_metric, chunk_size, worker_count,
                                   fft_workers, on_error, retry, retry_sleep,
                                   scratch_dir)
            return result

        if worker_count > 1:
            _run_survey_parallel(dataset, result, estimator, metric_names,
                                 limit_per_metric, chunk_size, worker_count,
                                 fft_workers, on_error, retry, retry_sleep,
                                 scratch_dir)
            return result
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)

    if on_error == "quarantine":
        _run_survey_quarantined(dataset, result, estimator, metric_names,
                                limit_per_metric, chunk_size, fft_workers, retry,
                                retry_sleep)
        return result

    for metric_name in metric_names:
        if backend == "batched":
            for batch in dataset.trace_batches(metric_name, limit=limit_per_metric,
                                               chunk_size=chunk_size):
                estimates = estimator.estimate_batch(batch.values, batch.interval,
                                                     fft_workers=fft_workers)
                result.append_block(_block_from_estimates(
                    metric_name, batch.pairs, estimates, batch.sampling_rate,
                    oversample_threshold, trace_duration))
        else:
            buffer_pairs: list[TracePair] = []
            buffer_estimates: list[NyquistEstimate] = []
            buffer_rate = 0.0

            def flush() -> None:
                if buffer_pairs:
                    result.append_block(_block_from_estimates(
                        metric_name, buffer_pairs, buffer_estimates, buffer_rate,
                        oversample_threshold, trace_duration))
                    buffer_pairs.clear()
                    buffer_estimates.clear()

            for pair, trace in dataset.traces(metric_name, limit=limit_per_metric):
                if buffer_pairs and (trace.sampling_rate != buffer_rate
                                     or len(buffer_pairs) >= chunk_size):
                    flush()
                buffer_rate = trace.sampling_rate
                buffer_pairs.append(pair)
                buffer_estimates.append(estimator.estimate(trace))
            flush()
    return result


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowedPairSummary:
    """Moving-window rate drift of one (metric, device) pair (fleet Figure 7)."""

    metric_name: str
    device_id: str
    windows: int
    reliable_windows: int
    min_rate: float
    max_rate: float
    mean_rate: float
    dynamic_range: float

    @property
    def drifting(self) -> bool:
        """True when the inferred rate moved by more than 2x across windows."""
        return math.isfinite(self.dynamic_range) and self.dynamic_range > 2.0


def run_windowed_survey(dataset: TraceSource,
                        window_seconds: float = FIGURE7_WINDOW_SECONDS,
                        step_seconds: float = FIGURE7_STEP_SECONDS,
                        estimator: NyquistEstimator | None = None,
                        metrics: Sequence[str] | None = None,
                        limit_per_metric: int | None = None) -> list[WindowedPairSummary]:
    """Run the Figure 7 moving-window sweep over every pair of a fleet.

    This is the paper's continuous re-estimation loop at fleet scale: for
    each (metric, device) pair, slide the Figure 7 window over its trace,
    estimate the Nyquist rate in every position through the vectorised
    windowed backend (one ``rfft`` per pair for the whole sweep), and
    summarise how much the rate drifts.  Pairs whose ``dynamic_range``
    exceeds 2x (``drifting``) are the ones a fixed sampling rate cannot
    serve -- the motivation for the Section 4 adaptive controller.

    The default estimator uses the short-window configuration shared by
    every Figure 7 call site (the adaptive controller, the Figure 7
    bench): detrend + Hann taper so slow trends that do not complete a
    cycle inside a 6-hour window do not leak across the spectrum, and the
    paper's strict "all bins needed" aliasing rule (1.0) because the
    calibrated day-length survey default (0.9) would refuse every
    noise-dominated quiet window instead of reporting its small rate.
    """
    estimator = estimator or NyquistEstimator(detrend=True, window="hann",
                                              aliased_band_fraction=1.0)
    summaries: list[WindowedPairSummary] = []
    metric_names = list(metrics) if metrics is not None else dataset.metric_names()
    for metric_name in metric_names:
        for pair, trace in dataset.traces(metric_name, limit=limit_per_metric):
            estimates = windowed_nyquist_rates(trace, window_seconds=window_seconds,
                                               step_seconds=step_seconds,
                                               estimator=estimator)
            stats = rate_stability(estimates)
            summaries.append(WindowedPairSummary(
                metric_name=metric_name,
                device_id=pair.device.device_id,
                windows=len(estimates),
                reliable_windows=int(stats["count"]),
                min_rate=stats["min"],
                max_rate=stats["max"],
                mean_rate=stats["mean"],
                dynamic_range=stats["dynamic_range"],
            ))
    return summaries
