"""The fleet survey: running the Nyquist estimator over every (metric, device) pair.

This module reproduces the measurement study of Section 3.2: for every pair
in a :class:`~repro.telemetry.dataset.FleetDataset`, estimate the Nyquist
rate, compare it with the production sampling rate and classify the pair.
The result object exposes exactly the aggregations the paper's figures
need: the over-sampled fraction per metric (Figure 1), the per-metric
reduction-ratio CDFs (Figure 4), the per-metric Nyquist-rate distributions
(Figure 5) and the headline statistics quoted in the text.

Two interchangeable backends drive the estimation:

* ``"batched"`` (the default) groups the dataset's traces by (length,
  interval) shape via :meth:`FleetDataset.trace_batches` and runs the
  batched spectral engine (:mod:`repro.core.batch`) -- one ``rfft`` and
  one vectorised energy cut-off per chunk, which is what makes
  fleet-scale (10k+ pair) surveys tractable;
* ``"scalar"`` runs :meth:`NyquistEstimator.estimate` per trace and is
  kept as the reference implementation; the two backends produce
  equivalent records (enforced by tests and
  ``benchmarks/bench_survey_throughput.py``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

import numpy as np

from ..core.nyquist import NyquistEstimate, NyquistEstimator
from ..telemetry.dataset import FleetDataset

__all__ = ["PairCategory", "PairRecord", "SurveyResult", "run_survey", "SurveyBackend"]

SurveyBackend = Literal["batched", "scalar"]

#: Conservative reduction ratio assigned to unreliable pairs when they are
#: included in a CDF: an aliased trace's Nyquist rate is at least its
#: sampling rate, so no reduction is achievable.
UNRELIABLE_RATIO: float = 1.0


class PairCategory(enum.Enum):
    """Classification of one (metric, device) pair."""

    OVERSAMPLED = "oversampled"            # reliable estimate, clear headroom
    MARGINAL = "marginal"                  # reliable estimate, little or no headroom
    ALIASED_SUSPECT = "aliased_suspect"    # estimator refused (probably already aliased)


@dataclass(frozen=True)
class PairRecord:
    """Survey outcome for one (metric, device) pair."""

    metric_name: str
    device_id: str
    current_rate: float
    nyquist_rate: float
    reduction_ratio: float
    category: PairCategory
    reliable: bool
    true_nyquist_rate: float
    trace_duration: float

    @property
    def oversampled(self) -> bool:
        return self.category is PairCategory.OVERSAMPLED


@dataclass
class SurveyResult:
    """All pair records of one survey run, with figure-oriented aggregations."""

    records: list[PairRecord] = field(default_factory=list)
    oversample_threshold: float = 1.25

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def metrics(self) -> list[str]:
        """Metric names present in the survey, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.metric_name, None)
        return list(seen)

    def records_for_metric(self, metric_name: str) -> list[PairRecord]:
        return [record for record in self.records if record.metric_name == metric_name]

    # -------------------------- Figure 1 ------------------------------
    def oversampled_fraction_by_metric(self) -> dict[str, float]:
        """Fraction of devices per metric currently sampled above the Nyquist rate."""
        fractions = {}
        for metric in self.metrics():
            records = self.records_for_metric(metric)
            if not records:
                fractions[metric] = float("nan")
                continue
            fractions[metric] = sum(record.oversampled for record in records) / len(records)
        return fractions

    # -------------------------- Figure 4 ------------------------------
    def reduction_ratios(self, metric_name: str | None = None,
                         include_unreliable: bool = False) -> np.ndarray:
        """Reduction ratios (current rate / Nyquist rate) for the CDFs of Figure 4.

        Unreliable pairs ("we do not show the cases where we cannot
        reliably detect the Nyquist rate") are excluded by default, exactly
        as the paper does.  With ``include_unreliable=True`` every pair is
        represented: unreliable pairs enter at the conservative ratio
        :data:`UNRELIABLE_RATIO` (1.0), since a trace the estimator deems
        aliased has a Nyquist rate of at least its sampling rate and hence
        admits no reduction.
        """
        selected: Iterable[PairRecord]
        selected = self.records if metric_name is None else self.records_for_metric(metric_name)
        ratios = []
        for record in selected:
            if record.reliable:
                if not math.isnan(record.reduction_ratio):
                    ratios.append(record.reduction_ratio)
            elif include_unreliable:
                ratios.append(UNRELIABLE_RATIO)
        return np.array(ratios)

    # -------------------------- Figure 5 ------------------------------
    def nyquist_rates(self, metric_name: str) -> np.ndarray:
        """Reliable Nyquist-rate estimates for one metric (the Figure 5 boxes)."""
        return np.array([record.nyquist_rate for record in self.records_for_metric(metric_name)
                         if record.reliable and record.nyquist_rate > 0])

    # -------------------------- Headline text -------------------------
    def headline(self) -> dict[str, float]:
        """The §3.2 headline statistics.

        Keys mirror the paper's claims: total pairs, distinct metrics, the
        fraction sampled above the Nyquist rate (paper: 89 %), the fraction
        needing closer inspection (paper: ~11 %), and the fraction of
        reliable pairs whose rate could be reduced by at least
        10/100/1000x (paper: ~20 % at 1000x).

        The needs-inspection population is reported split by cause:
        ``aliased_suspect_fraction`` counts the pairs the estimator
        refused (any unreliable estimate; for day-length survey traces
        this is the "all bins needed" case, where the paper records -1),
        while ``marginal_fraction`` counts reliably estimated pairs whose
        cut-off sits essentially at the measurable band edge (reduction
        ratio pinned near 1) -- which is where an already-aliased trace
        lands whenever noise keeps the 99 % cut-off one bin short of the
        strict all-bins rule.  ``undersampled_or_suspect_fraction`` is the
        legacy aggregate of the two (the complement of
        ``oversampled_fraction``); earlier versions reported *only* that
        conflated number, making it impossible to tell how much of the
        ~11 % was refused estimates versus at-the-edge marginal pairs.
        """
        total = len(self.records)
        if total == 0:
            return {"pairs": 0.0}
        oversampled = sum(record.category is PairCategory.OVERSAMPLED for record in self.records)
        marginal = sum(record.category is PairCategory.MARGINAL for record in self.records)
        suspect = sum(record.category is PairCategory.ALIASED_SUSPECT for record in self.records)
        ratios = self.reduction_ratios()
        temperature_rates = self.nyquist_rates("Temperature") if "Temperature" in self.metrics() else np.array([])
        headline = {
            "pairs": float(total),
            "metrics": float(len(self.metrics())),
            "oversampled_fraction": oversampled / total,
            "marginal_fraction": marginal / total,
            "aliased_suspect_fraction": suspect / total,
            "undersampled_or_suspect_fraction": (marginal + suspect) / total,
            "reducible_10x_fraction": float((ratios >= 10).mean()) if ratios.size else float("nan"),
            "reducible_100x_fraction": float((ratios >= 100).mean()) if ratios.size else float("nan"),
            "reducible_1000x_fraction": float((ratios >= 1000).mean()) if ratios.size else float("nan"),
            "median_reduction_ratio": float(np.median(ratios)) if ratios.size else float("nan"),
        }
        if temperature_rates.size:
            headline["temperature_nyquist_min_hz"] = float(np.min(temperature_rates))
            headline["temperature_nyquist_max_hz"] = float(np.max(temperature_rates))
        return headline

    # -------------------------- accuracy vs ground truth ---------------
    def estimation_accuracy(self) -> dict[str, float]:
        """How close the estimated Nyquist rates are to the generators' ground truth.

        Only meaningful for synthetic data (where the true bandwidth is
        known); reported as the median and 90th percentile of the ratio
        ``estimate / true`` over reliable pairs whose true rate is actually
        observable from a trace of this length (at least a couple of cycles
        fit in the trace -- slower signals are necessarily clamped to the
        trace's frequency resolution and would only measure that clamp).
        A ratio near 1 means the §3.2 estimator recovers the planted rate.
        """
        ratios = []
        for record in self.records:
            if not record.reliable or record.true_nyquist_rate <= 0:
                continue
            if record.trace_duration > 0 and \
                    record.true_nyquist_rate < 4.0 / record.trace_duration:
                continue
            ratios.append(record.nyquist_rate / record.true_nyquist_rate)
        if not ratios:
            return {"pairs": 0.0}
        array = np.array(ratios)
        return {
            "pairs": float(array.size),
            "median_ratio": float(np.median(array)),
            "p10_ratio": float(np.percentile(array, 10)),
            "p90_ratio": float(np.percentile(array, 90)),
        }


def _classify(estimate: NyquistEstimate, oversample_threshold: float) -> PairCategory:
    if not estimate.reliable:
        return PairCategory.ALIASED_SUSPECT
    if estimate.reduction_ratio > oversample_threshold:
        return PairCategory.OVERSAMPLED
    return PairCategory.MARGINAL


def run_survey(dataset: FleetDataset, estimator: NyquistEstimator | None = None,
               oversample_threshold: float = 1.25,
               metrics: Sequence[str] | None = None,
               limit_per_metric: int | None = None,
               backend: SurveyBackend = "batched",
               chunk_size: int = 1024) -> SurveyResult:
    """Run the Section 3.2 analysis over a whole dataset.

    Parameters
    ----------
    dataset:
        The (synthetic) fleet survey dataset.
    estimator:
        Nyquist estimator; defaults to the paper's 99 % configuration.
    oversample_threshold:
        Reduction ratio above which a pair counts as over-sampled.  The
        paper's wording is simply "higher than their Nyquist rate"; a small
        margin (default 1.25x) keeps borderline pairs -- whose estimate sits
        within estimation noise of the sampling rate itself -- out of the
        over-sampled bucket.
    metrics:
        Restrict the survey to these metrics (default: all in the dataset).
    limit_per_metric:
        Cap the number of pairs analysed per metric (useful for quick runs
        and benchmarks).
    backend:
        ``"batched"`` (default) analyses equal-shape trace groups with the
        vectorised engine of :mod:`repro.core.batch`; ``"scalar"`` runs
        the reference per-trace estimator.  Both produce equivalent
        records in the same order.
    chunk_size:
        Maximum traces held in memory at once by the batched backend
        (memory is bounded at ``chunk_size * samples_per_trace`` floats
        regardless of fleet size).
    """
    if oversample_threshold < 1:
        raise ValueError("oversample_threshold must be >= 1")
    if backend not in ("batched", "scalar"):
        raise ValueError(f"unknown backend {backend!r}; choose 'batched' or 'scalar'")
    estimator = estimator or NyquistEstimator()
    result = SurveyResult(oversample_threshold=oversample_threshold)
    metric_names = list(metrics) if metrics is not None else dataset.metric_names()

    def append(metric_name: str, pair, estimate: NyquistEstimate, current_rate: float) -> None:
        result.records.append(PairRecord(
            metric_name=metric_name,
            device_id=pair.device.device_id,
            current_rate=current_rate,
            nyquist_rate=estimate.nyquist_rate,
            reduction_ratio=estimate.reduction_ratio,
            category=_classify(estimate, oversample_threshold),
            reliable=estimate.reliable,
            true_nyquist_rate=pair.parameters.true_nyquist_rate,
            trace_duration=dataset.config.trace_duration,
        ))

    for metric_name in metric_names:
        if backend == "batched":
            for batch in dataset.trace_batches(metric_name, limit=limit_per_metric,
                                               chunk_size=chunk_size):
                estimates = estimator.estimate_batch(batch.values, batch.interval)
                for pair, estimate in zip(batch.pairs, estimates):
                    append(metric_name, pair, estimate, batch.sampling_rate)
        else:
            for pair, trace in dataset.traces(metric_name, limit=limit_per_metric):
                estimate = estimator.estimate(trace)
                append(metric_name, pair, estimate, trace.sampling_rate)
    return result
