"""Survey driver and reporting utilities for the paper's figures."""

from .reporting import (BoxStats, ascii_bar_chart, ascii_cdf, box_stats, cdf_at,
                        empirical_cdf, format_table, write_csv)
from .survey import PairCategory, PairRecord, SurveyBackend, SurveyResult, run_survey

__all__ = [
    "run_survey", "SurveyResult", "PairRecord", "PairCategory", "SurveyBackend",
    "empirical_cdf", "cdf_at", "BoxStats", "box_stats",
    "format_table", "ascii_bar_chart", "ascii_cdf", "write_csv",
]
