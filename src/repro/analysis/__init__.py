"""Survey drivers and reporting utilities for the paper's figures."""

from .policy_survey import PolicySurveyResult, run_policy_survey
from .reporting import (BoxStats, ascii_bar_chart, ascii_cdf, box_stats, cdf_at,
                        empirical_cdf, format_table, write_csv)
from .survey import (MemoryRecordSink, PairCategory, PairRecord, RecordBlock, RecordSink,
                     SpillingRecordSink, SurveyBackend, SurveyResult, WindowedPairSummary,
                     run_survey, run_windowed_survey)

__all__ = [
    "run_survey", "SurveyResult", "PairRecord", "PairCategory", "SurveyBackend",
    "RecordBlock", "RecordSink", "MemoryRecordSink", "SpillingRecordSink",
    "run_windowed_survey", "WindowedPairSummary",
    "run_policy_survey", "PolicySurveyResult",
    "empirical_cdf", "cdf_at", "BoxStats", "box_stats",
    "format_table", "ascii_bar_chart", "ascii_cdf", "write_csv",
]
