"""The fleet policy survey: cost vs quality for every (metric, device) pair.

This is the paper's headline experiment (the cost/quality sweet spot) run
at survey scale: for every measurement point of a
:class:`~repro.telemetry.source.TraceSource`, evaluate how today's
fixed-rate polling compares against Nyquist-informed sampling policies --
what each policy costs (samples collected, hop-weighted bytes moved,
storage, analysis) and what quality it returns (reconstruction error
against the reference trace).

The pipeline mirrors :func:`repro.analysis.survey.run_survey` feature for
feature:

* **Columnar storage.**  Each (metric batch, policy) produces one
  :class:`~repro.pipeline.evaluation.PolicyRecordBlock`; aggregations are
  streamed numpy reductions over the blocks.
* **Out-of-core results.**  Blocks flow into a
  :class:`~repro.records.RecordSink`; pass a
  :class:`~repro.records.SpillingRecordSink` and a fleet-scale evaluation
  holds one ``chunk_size`` block in memory at a time.  A spilled run
  re-opens later via ``PolicySurveyResult(sink=SpillingRecordSink(dir))``.
* **Multi-worker execution.**  ``run_policy_survey(workers=N)`` fans
  trace production, policy collection, reconstruction *and* cost
  accounting out to a process pool.  Workers receive picklable batch
  specs (the source's ``worker_spec()`` plus a pair-slice address, the
  policy suite recipe and the pricing accountant), re-open the source
  locally and return compact columnar blocks.  Records are byte-identical
  to ``workers=1`` because slices land on the sequential ``chunk_size``
  boundaries, exactly like the Nyquist survey.
* **Vectorised hot loops.**  Policies are evaluated through
  :meth:`~repro.pipeline.policies.SamplingPolicy.evaluate_batch`: the
  fixed-rate baseline and the Nyquist-static policy run as a handful of
  matrix operations (one ``estimate_batch`` calibration call, one batched
  FFT reconstruction per decimation group); pricing is one vectorised
  :meth:`~repro.network.cost.TelemetryCostAccountant.price_sample_block`
  call per block.

Policies are specified as a :class:`~repro.pipeline.policies.PolicySuite`
(rates derived per metric from the production interval -- the right choice
for fleets whose metrics poll at different rates) or an explicit policy
sequence applied to every metric.  With a
:class:`~repro.network.DeploymentTraceSource` and an accountant built on
the same topology, the survey prices every point with real fabric hop
counts -- the end-to-end wiring of :mod:`repro.network`.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from ..faults.execution import (RETRYABLE_EXCEPTIONS, BatchExecutionError, RetryPolicy,
                                run_batch_tasks)
from ..network.cost import TelemetryCostAccountant
from ..pipeline.evaluation import PointEvaluation, PolicyRecordBlock
from ..pipeline.policies import PolicySuite, SamplingPolicy, StaticPolicySuite
from ..records import (FailureRecord, FailureRecordBlock, MemoryRecordSink,
                       RecordSink, RecordStore, SpillingRecordSink, fingerprint_slice)
from ..telemetry.source import TraceBatch, TraceSource, WorkerSpec, batch_offsets
from .survey import OnError, _materialise_blocks, _spill_task_blocks

__all__ = ["PolicySurveyResult", "run_policy_survey", "OnError"]


#: Columns accumulated per policy by the streaming aggregation.
_SUM_COLUMNS = ("collection_cpu_us", "transmission", "storage_bytes", "analysis")


@dataclass
class _PolicyTotals:
    """Streaming accumulator for one policy's aggregate row."""

    points: int = 0
    samples: int = 0
    collection_cpu_us: float = 0.0
    transmission: float = 0.0
    storage_bytes: float = 0.0
    analysis: float = 0.0
    nrmse_sum: float = 0.0
    nrmse_count: int = 0
    worst_nrmse: float = float("nan")

    def add(self, block: PolicyRecordBlock) -> None:
        self.points += len(block)
        self.samples += int(block.samples.sum())
        for column in _SUM_COLUMNS:
            setattr(self, column,
                    getattr(self, column) + float(getattr(block, column).sum()))
        finite = block.nrmse[~np.isnan(block.nrmse)]
        if finite.size:
            self.nrmse_sum += float(finite.sum())
            self.nrmse_count += int(finite.size)
            worst = float(finite.max())
            if not self.worst_nrmse >= worst:  # also replaces the initial nan
                self.worst_nrmse = worst

    @property
    def total_cost(self) -> float:
        return (self.collection_cpu_us + self.transmission
                + self.storage_bytes + self.analysis)

    @property
    def mean_nrmse(self) -> float:
        return self.nrmse_sum / self.nrmse_count if self.nrmse_count else float("nan")


class PolicySurveyResult:
    """All policy-evaluation records of one survey run, with aggregations.

    Outcomes live in columnar
    :class:`~repro.pipeline.evaluation.PolicyRecordBlock` chunks behind a
    :class:`~repro.records.RecordSink`; every aggregation streams the
    blocks, so a spilled (out-of-core) run aggregates identically to an
    in-memory one while holding one block in memory at a time.
    """

    def __init__(self, sink: RecordSink | None = None,
                 failure_sink: RecordSink | None = None) -> None:
        #: Pairs served from / recomputed past a RecordStore (both stay 0
        #: on store-less runs); see ``run_policy_survey(store=...)``.
        self.cache_hits = 0
        self.cache_misses = 0
        self._sink = sink if sink is not None else MemoryRecordSink()
        self._failure_sink = failure_sink if failure_sink is not None \
            else MemoryRecordSink()
        self._metric_order: list[str] = []
        self._policy_order: list[str] = []
        self._totals_cache: tuple[int, dict[str, _PolicyTotals]] | None = None
        for block in self._sink.blocks():  # adopt pre-existing (reopened) sink content
            self._note(block)

    # ------------------------------------------------------------------
    def _note(self, block: PolicyRecordBlock) -> None:
        if block.metric_name not in self._metric_order:
            self._metric_order.append(block.metric_name)
        if block.policy_name not in self._policy_order:
            self._policy_order.append(block.policy_name)

    def append_block(self, block: PolicyRecordBlock) -> None:
        """Append one columnar chunk of outcomes (the pipeline's feed)."""
        self._sink.append(block)
        self._note(block)

    def iter_blocks(self) -> Iterator[PolicyRecordBlock]:
        """Stream the stored columnar chunks in survey order."""
        return self._sink.blocks()

    @property
    def sink(self) -> RecordSink:
        return self._sink

    # --------------------- quarantine accounting -----------------------
    def append_failures(self, failures: Sequence[FailureRecord]) -> None:
        """Record one batch slice's quarantined failures (pipeline feed)."""
        if failures:
            self._failure_sink.append(FailureRecordBlock.from_failures(failures))

    def iter_failure_blocks(self) -> Iterator[FailureRecordBlock]:
        """Stream the quarantined-failure chunks in survey order."""
        return self._failure_sink.blocks()

    @property
    def failure_sink(self) -> RecordSink:
        return self._failure_sink

    @property
    def quarantined(self) -> list[FailureRecord]:
        """Per-failure view of the quarantine store, materialised on demand."""
        return [failure for block in self._failure_sink.blocks()
                for failure in block.failures()]

    @property
    def quarantined_count(self) -> int:
        """Number of pairs quarantined during the run."""
        return self._failure_sink.rows

    def __len__(self) -> int:
        """Total (policy, measurement point) rows stored."""
        return self._sink.rows

    def metrics(self) -> list[str]:
        """Metric names present in the survey, in first-appearance order."""
        return list(self._metric_order)

    def policies(self) -> list[str]:
        """Policy names present in the survey, in first-appearance order."""
        return list(self._policy_order)

    def evaluations(self) -> Iterator[PointEvaluation]:
        """Per-row view of the columnar store, materialised on demand."""
        for block in self._sink.blocks():
            yield from block.to_evaluations()

    # ------------------------------------------------------------------
    def _totals(self) -> dict[str, _PolicyTotals]:
        """Streamed per-policy totals, cached per sink state.

        Reporting typically asks for ``rows()`` *and* ``relative_costs``;
        without the cache each call would re-stream (for a spilled run:
        re-read and decompress) every block.
        """
        if self._totals_cache is not None and self._totals_cache[0] == self._sink.rows:
            return self._totals_cache[1]
        totals = {name: _PolicyTotals() for name in self._policy_order}
        for block in self._sink.blocks():
            totals[block.policy_name].add(block)
        self._totals_cache = (self._sink.rows, totals)
        return totals

    def rows(self) -> list[dict[str, float | str]]:
        """One aggregate cost/quality row per policy -- the paper's table.

        Keys mirror :meth:`~repro.pipeline.evaluation.PolicySummary.as_row`
        (minus the detection columns, which the fleet survey does not
        score): points, samples, the cost components and total, and the
        mean/worst reconstruction nrmse across the fleet.
        """
        rows = []
        for name, totals in self._totals().items():
            rows.append({
                "policy": name,
                "points": float(totals.points),
                "samples": float(totals.samples),
                "total_cost": totals.total_cost,
                "collection_cpu_us": totals.collection_cpu_us,
                "transmission": totals.transmission,
                "storage_bytes": totals.storage_bytes,
                "analysis": totals.analysis,
                "mean_nrmse": totals.mean_nrmse,
                "worst_nrmse": totals.worst_nrmse,
            })
        return rows

    def relative_costs(self, baseline_policy: str) -> dict[str, float]:
        """Total cost of each policy relative to ``baseline_policy``.

        The paper's headline comparison.  Raises :class:`ValueError` when
        the baseline's total cost is zero rather than flooding the report
        with ``nan``.
        """
        totals = self._totals()
        if baseline_policy not in totals:
            raise KeyError(f"unknown policy {baseline_policy!r}")
        baseline = totals[baseline_policy].total_cost
        if baseline == 0:
            raise ValueError(
                f"baseline policy {baseline_policy!r} has zero total cost "
                f"({totals[baseline_policy].points} points evaluated); "
                "relative costs are undefined")
        return {name: entry.total_cost / baseline for name, entry in totals.items()}

    def nrmse_values(self, policy_name: str,
                     metric_name: str | None = None) -> np.ndarray:
        """All finite per-point nrmse values of one policy (quality CDFs)."""
        parts = [block.nrmse[~np.isnan(block.nrmse)]
                 for block in self._sink.blocks()
                 if block.policy_name == policy_name
                 and (metric_name is None or block.metric_name == metric_name)]
        return np.concatenate(parts) if parts else np.array([])


# ----------------------------------------------------------------------
def _coerce_suite(
        policies: PolicySuite | StaticPolicySuite | Sequence[SamplingPolicy],
) -> PolicySuite | StaticPolicySuite:
    """Accept a suite or an explicit policy sequence."""
    if hasattr(policies, "build"):
        return policies
    return StaticPolicySuite(tuple(policies))


def _evaluate_batch_blocks(metric_name: str, batch: TraceBatch,
                           suite: PolicySuite | StaticPolicySuite,
                           accountant: TelemetryCostAccountant
                           ) -> list[PolicyRecordBlock]:
    """Evaluate every policy of the suite on one trace batch and price it."""
    devices = [pair.device.device_id for pair in batch.pairs]
    blocks = []
    for policy in suite.build(batch.interval):
        evaluation = policy.evaluate_batch(batch.values, batch.interval)
        priced = accountant.price_sample_block(devices, evaluation.samples_collected)
        blocks.append(PolicyRecordBlock.from_batch(metric_name, evaluation,
                                                   devices, priced))
    return blocks


#: Per-worker-process source cache, keyed by the hashable worker spec --
#: the same idiom as the Nyquist survey's worker pool.
_WORKER_SOURCES: dict[WorkerSpec, TraceSource] = {}


def _policy_slice_blocks(source: TraceSource, metric_name: str, offset: int,
                         limit: int | None,
                         suite: PolicySuite | StaticPolicySuite,
                         accountant: TelemetryCostAccountant,
                         chunk_size: int) -> list[PolicyRecordBlock]:
    """Evaluate and price one pair slice, compacted into columnar blocks."""
    blocks: list[PolicyRecordBlock] = []
    for batch in source.trace_batches(metric_name, limit=limit, offset=offset,
                                      chunk_size=chunk_size):
        blocks.extend(_evaluate_batch_blocks(metric_name, batch, suite, accountant))
    return blocks


def _policy_worker(task: tuple) -> list:
    """Process-pool entry point: serve one pair slice, evaluate, price, compact.

    ``task`` is a picklable batch spec ``(worker_spec, metric_name,
    offset, limit, suite, accountant, chunk_size, spill)``; the worker
    re-opens the trace source locally from the spec, runs the batched
    policy evaluation and the vectorised pricing, and returns compact
    columnar blocks -- no trace data crosses the process boundary.  With
    ``spill`` set (a ``(scratch_dir, task_tag)`` pair, used when the
    parent re-serialises blocks anyway), the blocks are written as
    scratch ``.rcb`` files and only
    :class:`~repro.records.BlockFileRef` pointers return through the
    pipe.  A slice address outside the source's pair list raises instead
    of silently dropping records.

    Failures surface as :class:`~repro.faults.BatchExecutionError` naming
    the batch spec (source, metric, offset, limit) -- never a bare
    traceback from the pool -- with IO-shaped errors marked retryable.
    """
    (spec, metric_name, offset, limit, suite, accountant, chunk_size, spill) = task
    context = (f"policy batch (source={spec}, metric={metric_name!r}, "
               f"offset={offset}, limit={limit})")
    try:
        source = _WORKER_SOURCES.get(spec)
        if source is None:
            source = spec.open()
            _WORKER_SOURCES[spec] = source
        blocks = _policy_slice_blocks(source, metric_name, offset, limit, suite,
                                      accountant, chunk_size)
        if spill is None:
            return blocks
        return _spill_task_blocks(blocks, spill, "policy")
    except Exception as error:
        raise BatchExecutionError.wrap(error, context) from error


def _quarantine_policy_slice(source: TraceSource, result: PolicySurveyResult,
                             metric_name: str, offset: int, limit: int | None,
                             suite: PolicySuite | StaticPolicySuite,
                             accountant: TelemetryCostAccountant) -> None:
    """Per-pair salvage of one failed batch slice.

    Traces are loaded pair by pair; loadable pairs are re-assembled into
    one survivor batch and evaluated/priced together (policy evaluation
    is row-independent, so survivor records match the no-fault run),
    while unloadable pairs become failure rows.  Should the survivor
    *evaluation* itself fail, the whole survivor batch is quarantined at
    stage ``"evaluate"`` -- the evaluation is batched, so per-pair blame
    is not available there.
    """
    pairs = source.pairs_for_metric(metric_name)[offset:offset + limit]
    survivors: list = []
    values: list[np.ndarray] = []
    failures: list[FailureRecord] = []
    positions: list[int] = []
    interval = 0.0
    for position, pair in enumerate(pairs):
        try:
            trace = source.load(pair)
        except Exception as error:
            failures.append(FailureRecord.from_pair(pair, metric_name, "trace", error,
                                                    offset + position))
            continue
        survivors.append(pair)
        values.append(trace.values)
        positions.append(offset + position)
        interval = trace.interval
    if survivors:
        batch = TraceBatch(tuple(survivors), np.vstack(values), interval)
        try:
            blocks = _evaluate_batch_blocks(metric_name, batch, suite, accountant)
        except Exception as error:
            failures.extend(
                FailureRecord.from_pair(pair, metric_name, "evaluate", error, position)
                for pair, position in zip(survivors, positions))
            blocks = []
        for block in blocks:
            result.append_block(block)
    result.append_failures(sorted(failures, key=lambda f: f.provenance))


def _policy_slice_or_quarantine(source: TraceSource, result: PolicySurveyResult,
                                metric_name: str, offset: int, limit: int,
                                suite: PolicySuite | StaticPolicySuite,
                                accountant: TelemetryCostAccountant,
                                chunk_size: int, on_error: OnError,
                                retry: RetryPolicy,
                                sleep: Callable[[float], None]
                                ) -> list[PolicyRecordBlock] | None:
    """Serve one slice sequentially under the run's error policy.

    With ``on_error="raise"`` the first failure propagates; with
    ``"quarantine"`` a transiently failing slice is retried under the
    policy's budget and, once exhausted -- or immediately for content
    errors -- salvaged pair by pair (returning ``None``: the salvage
    appends its blocks and failures to ``result`` itself).
    """
    if on_error == "raise":
        return _policy_slice_blocks(source, metric_name, offset, limit, suite,
                                    accountant, chunk_size)
    for attempt in range(1, retry.max_attempts + 1):
        try:
            return _policy_slice_blocks(source, metric_name, offset, limit,
                                        suite, accountant, chunk_size)
        except RETRYABLE_EXCEPTIONS:
            if attempt < retry.max_attempts:
                sleep(retry.delay(attempt))
                continue
            _quarantine_policy_slice(source, result, metric_name, offset, limit,
                                     suite, accountant)
            return None
        except Exception:
            _quarantine_policy_slice(source, result, metric_name, offset, limit,
                                     suite, accountant)
            return None
    return None


def _run_policy_survey_quarantined(source: TraceSource, result: PolicySurveyResult,
                                   suite: PolicySuite | StaticPolicySuite,
                                   accountant: TelemetryCostAccountant,
                                   metric_names: Sequence[str],
                                   limit_per_metric: int | None, chunk_size: int,
                                   retry: RetryPolicy,
                                   sleep: Callable[[float], None]) -> None:
    """Sequential quarantine execution: batch isolation at chunk boundaries.

    The policy-survey mirror of the Nyquist survey's quarantine loop:
    identical slice addresses at any worker count, bounded retry for
    transient errors, per-pair salvage once a slice stays failed.
    """
    for metric_name in metric_names:
        for offset, limit in batch_offsets(source, metric_name, limit_per_metric,
                                           chunk_size):
            blocks = _policy_slice_or_quarantine(
                source, result, metric_name, offset, limit, suite, accountant,
                chunk_size, "quarantine", retry, sleep)
            if blocks is None:
                continue
            for block in blocks:
                result.append_block(block)


def _run_policy_survey_parallel(source: TraceSource, result: PolicySurveyResult,
                                suite: PolicySuite | StaticPolicySuite,
                                accountant: TelemetryCostAccountant,
                                metric_names: Sequence[str],
                                limit_per_metric: int | None, chunk_size: int,
                                workers: int, on_error: OnError,
                                retry: RetryPolicy,
                                sleep: Callable[[float], None],
                                scratch_dir: Path | None = None) -> None:
    """Fan policy evaluation out to a process pool, in survey order.

    Tasks slice each metric's pair list at ``chunk_size`` boundaries --
    exactly where the sequential ``trace_batches`` iteration flushes --
    so the reassembled blocks are byte-identical to a ``workers=1`` run.
    This assumes every trace within one metric shares a (length,
    interval) shape, which holds for all shipped sources (synthetic
    fleets, their exports, deployment sources); a hand-written measured
    manifest mixing shapes inside a metric would still evaluate every
    row identically but flush blocks at the shape changes when
    sequential, so its spill-file boundaries would differ from a pooled
    run.

    Execution runs through :func:`~repro.faults.run_batch_tasks`
    (bounded retry, broken-pool resubmit); a batch that stays failed is
    raised or salvaged pair by pair on the parent's source, mirroring
    the Nyquist survey.
    """
    spec = source.worker_spec()
    tasks = []
    addresses = []
    for metric_name in metric_names:
        for offset, limit in batch_offsets(source, metric_name, limit_per_metric,
                                           chunk_size):
            spill = None if scratch_dir is None else (str(scratch_dir), len(tasks))
            tasks.append((spec, metric_name, offset, limit, suite, accountant,
                          chunk_size, spill))
            addresses.append((metric_name, offset, limit))
    for index, outcome in run_batch_tasks(_policy_worker, tasks, workers,
                                          retry=retry, sleep=sleep):
        if isinstance(outcome, BatchExecutionError):
            if on_error == "raise":
                raise outcome
            metric_name, offset, limit = addresses[index]
            _quarantine_policy_slice(source, result, metric_name, offset, limit,
                                     suite, accountant)
            continue
        for block in _materialise_blocks(outcome):
            result.append_block(block)


def _policy_params_token(suite: PolicySuite | StaticPolicySuite,
                         accountant: TelemetryCostAccountant) -> str:
    """Analysis-parameter half of a policy slice's fingerprint."""
    token = getattr(suite, "cache_token", None)
    if token is None:
        raise ValueError(
            f"policy suite {type(suite).__name__} does not define cache_token(); "
            "store-backed policy surveys need a deterministic parameter fingerprint")
    return f"{token()}|{accountant.cache_token()}"


def _run_policy_survey_with_store(source: TraceSource, result: PolicySurveyResult,
                                  store: RecordStore,
                                  suite: PolicySuite | StaticPolicySuite,
                                  accountant: TelemetryCostAccountant,
                                  metric_names: Sequence[str],
                                  limit_per_metric: int | None, chunk_size: int,
                                  workers: int, on_error: OnError,
                                  retry: RetryPolicy,
                                  sleep: Callable[[float], None],
                                  scratch_dir: Path | None) -> None:
    """Store-backed execution: serve cached slices, recompute only misses.

    The policy-survey mirror of the Nyquist survey's store runner: each
    ``chunk_size`` slice is fingerprinted over its pair contents, the
    suite's and accountant's ``cache_token()``; hits are appended as
    memory-mapped blocks without loading a trace, misses run exactly as a
    store-less run would (pooled or sequential) then written back.
    Quarantined slices are never cached.
    """
    params_token = _policy_params_token(suite, accountant)
    slices: list[tuple[str, int, int]] = []
    fingerprints: list = []
    cached: list = []
    for metric_name in metric_names:
        for offset, limit in batch_offsets(source, metric_name, limit_per_metric,
                                           chunk_size):
            fingerprint = fingerprint_slice("policy", source, metric_name, offset,
                                            limit, chunk_size, params_token)
            slices.append((metric_name, offset, limit))
            fingerprints.append(fingerprint)
            cached.append(store.get(fingerprint))

    outcomes = None
    if workers > 1:
        spec = source.worker_spec()
        tasks = []
        for index, (metric_name, offset, limit) in enumerate(slices):
            if cached[index] is not None:
                continue
            spill = None if scratch_dir is None else (str(scratch_dir), index)
            tasks.append((spec, metric_name, offset, limit, suite, accountant,
                          chunk_size, spill))
        outcomes = run_batch_tasks(_policy_worker, tasks, workers,
                                   retry=retry, sleep=sleep)

    for index, (metric_name, offset, limit) in enumerate(slices):
        hit = cached[index]
        if hit is not None:
            result.cache_hits += limit
            for block in hit:
                result.append_block(block)
            continue
        result.cache_misses += limit
        if outcomes is not None:
            _, outcome = next(outcomes)
            if isinstance(outcome, BatchExecutionError):
                if on_error == "raise":
                    raise outcome
                _quarantine_policy_slice(source, result, metric_name, offset, limit,
                                         suite, accountant)
                continue
            blocks = _materialise_blocks(outcome)
        else:
            maybe_blocks = _policy_slice_or_quarantine(
                source, result, metric_name, offset, limit, suite, accountant,
                chunk_size, on_error, retry, sleep)
            if maybe_blocks is None:
                continue
            blocks = maybe_blocks
        store.put(fingerprints[index], blocks)
        for block in blocks:
            result.append_block(block)


def run_policy_survey(source: TraceSource,
                      policies: PolicySuite | StaticPolicySuite | Sequence[SamplingPolicy],
                      accountant: TelemetryCostAccountant | None = None,
                      metrics: Sequence[str] | None = None,
                      limit_per_metric: int | None = None,
                      chunk_size: int = 256,
                      workers: int | None = None,
                      sink: RecordSink | None = None,
                      on_error: OnError = "raise",
                      failure_sink: RecordSink | None = None,
                      store: RecordStore | None = None,
                      retry: RetryPolicy | None = None,
                      retry_sleep: Callable[[float], None] = time.sleep,
                      ) -> PolicySurveyResult:
    """Evaluate sampling policies over every pair of a trace source.

    Parameters
    ----------
    source:
        Any :class:`~repro.telemetry.source.TraceSource`: a synthetic
        :class:`~repro.telemetry.dataset.FleetDataset`, a recorded
        :class:`~repro.telemetry.measured.MeasuredFleetDataset` (a
        directory exported by ``repro-monitor export-fleet``), or a
        :class:`~repro.network.DeploymentTraceSource` over a monitored
        fabric.  The source's traces are the *references* the policies
        sample from.
    policies:
        A :class:`~repro.pipeline.policies.PolicySuite` (per-metric
        policies derived from the production rate) or an explicit policy
        sequence applied to every metric.
    accountant:
        Prices each point's collected samples; build it on the same
        topology as a deployment source so transmission is weighted by
        real hop counts.  Defaults to the topology-less accountant
        (every device at ``default_hops``).
    metrics / limit_per_metric:
        Restrict the survey (same semantics as ``run_survey``).
    chunk_size:
        Traces held in memory at once; also the row count of each result
        block and the slice size of the multi-worker batch specs.
    workers:
        Worker processes; ``>= 2`` fans the whole per-batch pipeline out
        via picklable specs, byte-identical to a single-process run (for
        sources whose traces share one shape per metric -- true of every
        shipped source; see ``_run_policy_survey_parallel``).
    sink:
        Destination for the columnar result blocks (default: in-memory;
        pass a :class:`~repro.records.SpillingRecordSink` for
        out-of-core runs).
    on_error:
        ``"raise"`` (default) fails fast on the first bad pair;
        ``"quarantine"`` isolates failures instead: each failed batch
        slice is salvaged pair by pair, healthy pairs keep their
        records (byte-identical to a no-fault run at any worker count)
        and failed pairs become
        :class:`~repro.records.FailureRecord` rows in ``failure_sink``.
    failure_sink:
        Destination for the quarantined-failure blocks (default:
        in-memory; pass a :class:`~repro.records.SpillingRecordSink`
        rooted elsewhere than ``sink``).
    store:
        A :class:`~repro.records.RecordStore` for incremental reruns.
        Slices already fingerprinted in the store (pair contents + the
        suite's and accountant's ``cache_token()``) are served as
        memory-mapped blocks without loading a trace; misses run exactly
        as a store-less run would, then are written back atomically.
        ``PolicySurveyResult.cache_hits`` / ``cache_misses`` count the
        pairs on each path; quarantined slices are never cached.
    retry:
        :class:`~repro.faults.RetryPolicy` bounding attempts per batch
        for transient (IO-shaped) failures and crashed workers.
        Defaults to ``RetryPolicy()``.
    retry_sleep:
        Injectable backoff sleep (tests/benchmarks pass a no-op).
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"on_error must be 'raise' or 'quarantine', got {on_error!r}")
    if sink is not None and sink.rows > 0:
        raise ValueError(
            f"sink already holds {sink.rows} records; run_policy_survey needs an "
            "empty sink (point SpillingRecordSink at a fresh directory, or re-open "
            "the existing one with PolicySurveyResult(sink=...))")
    if failure_sink is not None and failure_sink.rows > 0:
        raise ValueError(
            f"failure_sink already holds {failure_sink.rows} records; "
            "run_policy_survey needs an empty failure sink (point "
            "SpillingRecordSink at a fresh directory, or re-open the existing "
            "one with PolicySurveyResult(failure_sink=...))")
    suite = _coerce_suite(policies)
    accountant = accountant or TelemetryCostAccountant()
    result = PolicySurveyResult(sink=sink, failure_sink=failure_sink)
    metric_names = list(metrics) if metrics is not None else source.metric_names()
    retry = retry if retry is not None else RetryPolicy()

    # Workers return .rcb spill-file refs instead of pickled arrays when
    # the parent re-serialises the blocks anyway (store writes, spilling
    # sinks); see run_survey for the layout rationale.
    worker_count = workers if workers is not None else 1
    scratch_dir: Path | None = None
    if worker_count > 1:
        if store is not None:
            scratch_dir = store.directory / ".scratch"
        elif isinstance(sink, SpillingRecordSink):
            scratch_dir = sink.directory / ".scratch"
    try:
        if scratch_dir is not None:
            scratch_dir.mkdir(parents=True, exist_ok=True)

        if store is not None:
            _run_policy_survey_with_store(source, result, store, suite, accountant,
                                          metric_names, limit_per_metric, chunk_size,
                                          worker_count, on_error, retry, retry_sleep,
                                          scratch_dir)
            return result

        if worker_count > 1:
            _run_policy_survey_parallel(source, result, suite, accountant,
                                        metric_names, limit_per_metric, chunk_size,
                                        worker_count, on_error, retry, retry_sleep,
                                        scratch_dir)
            return result
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)

    if on_error == "quarantine":
        _run_policy_survey_quarantined(source, result, suite, accountant,
                                       metric_names, limit_per_metric, chunk_size,
                                       retry, retry_sleep)
        return result

    for metric_name in metric_names:
        for batch in source.trace_batches(metric_name, limit=limit_per_metric,
                                          chunk_size=chunk_size):
            for block in _evaluate_batch_blocks(metric_name, batch, suite, accountant):
                result.append_block(block)
    return result
