"""Developer tooling that ships with the library.

:mod:`repro.devtools.lint` is the project-invariant static analyser
(``repro-lint``): the reproducibility guarantees the pipelines rely on --
seeded RNG threading, no wall-clock reads in library code, errors that
name the offending file, picklable worker specs, schema-complete record
blocks, deterministic iteration in record-emitting code -- enforced
mechanically over the whole tree instead of only where a runtime test
happens to look.
"""

# No eager submodule import: ``python -m repro.devtools.lint`` would warn
# about double-importing the module it is about to execute.
__all__ = ["lint"]
