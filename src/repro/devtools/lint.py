"""``repro-lint``: AST-based static analysis of this project's own invariants.

The runtime test suites enforce the repository's reproducibility
guarantees *after the fact* -- byte-identical records at any worker
count, picklable worker specs, canonical deterministic ordering,
``ValueError``-names-the-path error discipline.  This module enforces
the code patterns those guarantees rest on *statically*, so a violation
is caught in any module, including paths no test exercises yet.

Rule catalogue
--------------

======  ======================  ==============================================
ID      Name                    Protects
======  ======================  ==============================================
RL001   no-unseeded-randomness  Same config => same records.  RNG must be a
                                seeded ``numpy.random.Generator`` threaded
                                through explicitly; module-level ``np.random``
                                draws, stdlib ``random`` calls and argless
                                ``default_rng()`` all smuggle in process-
                                global nondeterminism.
RL002   no-wallclock-in-library Library results must be a function of their
                                inputs.  ``time.time()``/``datetime.now()``
                                belong in the CLI, benchmarks and examples --
                                never in ``src/repro`` library modules.
RL003   error-discipline        No bare ``except:``; no silently swallowed
                                ``except Exception: pass``; content errors in
                                the IO modules must interpolate the offending
                                path into the ``ValueError`` message.
RL004   picklable-worker-specs  Classes returned by ``worker_spec()`` cross
                                process boundaries; storing lambdas, local
                                closures or open handles in them breaks the
                                multi-worker survey at pickle time.
RL005   schema-completeness     Every :class:`~repro.records.ColumnarBlock`
                                subclass must be a registered dataclass whose
                                fields match its ``BlockSchema`` exactly, or
                                spill files silently lose columns.
RL006   deterministic-iteration Record-emitting modules must not iterate
                                set/dict accumulators without ``sorted(...)``:
                                output order would depend on hash seeds or
                                insertion history instead of on the data.
RL007   quarantine-discipline   Every except handler in the quarantining
                                pipeline modules must re-raise or call the
                                failure-record/retry machinery; a handler that
                                silently continues would drop pairs from the
                                survey without a failure record.
RL008   content-addressed-keys  Store/cache modules must derive cache keys
                                from hashed content only: no ``id()``, no
                                wall-clock or uuid calls, and no filesystem-
                                order iteration (``glob``/``iterdir``/
                                ``os.listdir``/``os.scandir``) outside
                                ``sorted(...)`` -- any of these would make a
                                cache hit depend on process or disk state
                                instead of on the inputs.
======  ======================  ==============================================

Suppression: append ``# repro-lint: disable=RL001`` (comma-separate for
several rules, bare ``disable`` for all) to the offending line.  Use it
only with a justification comment -- the analyser exists to make silent
exceptions loud.

Run as ``repro-lint`` (console script), ``python -m repro.devtools.lint``,
or programmatically via :func:`lint_paths` / :func:`lint_sources`.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import inspect
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Violation",
    "Rule",
    "RULES",
    "rule_catalogue",
    "lint_paths",
    "lint_sources",
    "check_block_schemas",
    "find_repo_root",
    "main",
]

#: Directories linted when no explicit paths are given.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")

#: Library modules that read/write files on behalf of callers; RL003's
#: name-the-path discipline applies to their content errors.
IO_MODULES = frozenset({
    "src/repro/records/blocks.py",
    "src/repro/records/rcb.py",
    "src/repro/records/sinks.py",
    "src/repro/records/store.py",
    "src/repro/telemetry/measured.py",
    "src/repro/telemetry/ingest.py",
    "src/repro/telemetry/shard.py",
    "src/repro/scenarios/backfill.py",
})

#: Modules whose code computes cache/store keys; RL008's hashed-content-
#: only discipline applies to them.
STORE_MODULES = frozenset({
    "src/repro/records/store.py",
})

#: Modules that emit survey/policy/ingest records; RL006's deterministic
#: iteration discipline applies to them.
RECORD_MODULES = frozenset(IO_MODULES | {
    "src/repro/analysis/survey.py",
    "src/repro/analysis/policy_survey.py",
    "src/repro/pipeline/evaluation.py",
    "src/repro/scenarios/matrix.py",
    "src/repro/scenarios/transforms.py",
})

#: Pipeline modules whose except handlers isolate batch/parse failures;
#: RL007's record-or-raise discipline applies to every handler in them.
QUARANTINE_MODULES = frozenset({
    "src/repro/analysis/survey.py",
    "src/repro/analysis/policy_survey.py",
    "src/repro/telemetry/ingest.py",
    "src/repro/telemetry/shard.py",
    "src/repro/faults/execution.py",
})


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class SourceFile:
    """A parsed file plus the classification the rules scope on."""

    path: str  # repo-relative posix path (drives rule applicability)
    source: str
    tree: ast.Module
    #: line -> frozenset of disabled rule ids, or None meaning "all rules".
    disabled: Mapping[int, frozenset[str] | None]

    @property
    def is_library(self) -> bool:
        """A ``src/repro`` module that is not the CLI or devtools."""
        return (self.path.startswith("src/repro/")
                and self.path != "src/repro/cli.py"
                and not self.path.startswith("src/repro/devtools/"))

    @property
    def is_io_module(self) -> bool:
        return self.path in IO_MODULES

    @property
    def is_record_module(self) -> bool:
        return self.path in RECORD_MODULES

    @property
    def is_quarantine_module(self) -> bool:
        return self.path in QUARANTINE_MODULES

    @property
    def is_store_module(self) -> bool:
        return self.path in STORE_MODULES


@dataclass(frozen=True)
class ProjectContext:
    """Cross-file facts shared by the rules (built once per lint run)."""

    #: Names of classes returned by some ``worker_spec()`` implementation.
    spec_class_names: frozenset[str]


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?")


def _parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line numbers to the rule ids a trailing comment disables there."""
    disabled: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            line = token.start[0]
            if rules is None:
                disabled[line] = None
            elif line not in disabled:
                disabled[line] = frozenset(part.strip()
                                           for part in rules.split(","))
            elif disabled[line] is not None:  # None already disables all
                ids = frozenset(part.strip() for part in rules.split(","))
                disabled[line] = ids | (disabled[line] or frozenset())
    except tokenize.TokenError:  # unterminated string etc.; ast caught it first
        pass
    return disabled


def _parse_source(path: str, source: str) -> SourceFile:
    tree = ast.parse(source, filename=path)
    return SourceFile(path=path, source=source, tree=tree,
                      disabled=_parse_suppressions(source))


# ----------------------------------------------------------------------
# Name resolution: local alias -> dotted module path
# ----------------------------------------------------------------------
def _dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _ImportTable:
    """Resolves local names to the dotted import paths they are bound to."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted path of an attribute chain, if importable."""
        parts = _dotted_parts(node)
        if parts is None or parts[0] not in self.aliases:
            return None
        return ".".join((self.aliases[parts[0]], *parts[1:]))


# ----------------------------------------------------------------------
# Rule machinery
# ----------------------------------------------------------------------
class Rule:
    """One named, documented invariant check."""

    id: ClassVar[str]
    name: ClassVar[str]
    rationale: ClassVar[str]

    def applies(self, file: SourceFile) -> bool:
        return True

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, file: SourceFile, node: ast.AST, message: str) -> Violation:
        return Violation(rule=self.id, path=file.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message)


# ----------------------------------------------------------------------
# RL001 no-unseeded-randomness
# ----------------------------------------------------------------------
#: numpy.random names that are fine to reference (seeded construction and
#: the generator machinery itself).
_NUMPY_RANDOM_TYPES = frozenset({
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})
#: Constructors that are fine *with* a seed but unseeded without arguments.
_NUMPY_RANDOM_CONSTRUCTORS = frozenset({"default_rng", "RandomState"})


def _is_unseeded(call: ast.Call) -> bool:
    """True when an RNG constructor call passes no seed (or an explicit None)."""
    if not call.args and not call.keywords:
        return True
    return (len(call.args) == 1 and not call.keywords
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None)


class NoUnseededRandomness(Rule):
    id = "RL001"
    name = "no-unseeded-randomness"
    rationale = ("records must be a pure function of the dataset config; all "
                 "randomness is threaded as a seeded numpy Generator")

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        imports = _ImportTable(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            full = imports.resolve(node.func)
            if full is None:
                continue
            if full.startswith("numpy.random."):
                attr = full[len("numpy.random."):]
                if attr in _NUMPY_RANDOM_CONSTRUCTORS:
                    if _is_unseeded(node):
                        yield self.violation(
                            file, node,
                            f"argless {attr}() draws an OS-entropy seed; pass an "
                            "explicit seed or thread a Generator through")
                elif attr not in _NUMPY_RANDOM_TYPES:
                    yield self.violation(
                        file, node,
                        f"numpy.random.{attr}() uses the process-global legacy "
                        "RNG; use a seeded numpy.random.Generator instead")
            elif full == "random.Random":
                if _is_unseeded(node):
                    yield self.violation(
                        file, node,
                        "argless random.Random() seeds from OS entropy; pass an "
                        "explicit seed")
            elif full == "random" or full.startswith("random."):
                yield self.violation(
                    file, node,
                    f"stdlib {full}() uses the process-global RNG; use a seeded "
                    "random.Random(seed) or numpy.random.Generator instead")


# ----------------------------------------------------------------------
# RL002 no-wallclock-in-library
# ----------------------------------------------------------------------
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class NoWallclockInLibrary(Rule):
    id = "RL002"
    name = "no-wallclock-in-library"
    rationale = ("library outputs must depend only on their inputs; timing "
                 "belongs in the CLI, benchmarks and examples")

    def applies(self, file: SourceFile) -> bool:
        return file.is_library

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        imports = _ImportTable(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            full = imports.resolve(node.func)
            if full in _WALLCLOCK_CALLS:
                yield self.violation(
                    file, node,
                    f"{full}() reads the wall clock inside a library module; "
                    "accept timestamps as parameters instead")


# ----------------------------------------------------------------------
# RL003 error-discipline
# ----------------------------------------------------------------------
#: Message vocabulary that marks a ValueError as a file-content error.
_CONTENT_ERROR_WORDS = ("corrupt", "truncated", "malformed", "missing",
                        "unexpected", "unreadable")
_PATHISH_NAME = re.compile(r"path|file|dir|directory|manifest|dump|scratch|archive",
                           re.IGNORECASE)


def _message_text_and_names(node: ast.expr) -> tuple[str, list[str], bool]:
    """Constant text, interpolated terminal names, and an "opaque" flag.

    The flag is True when the message interpolates something we cannot
    name statically (a call result, a subscript ...); RL003 then gives
    the benefit of the doubt.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, [], False
    if isinstance(node, ast.JoinedStr):
        text_parts: list[str] = []
        names: list[str] = []
        opaque = False
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                text_parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts = _dotted_parts(value.value)
                if parts is None:
                    opaque = True
                else:
                    names.append(parts[-1])
        return "".join(text_parts), names, opaque
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        left = _message_text_and_names(node.left)
        right = _message_text_and_names(node.right)
        return left[0] + right[0], left[1] + right[1], left[2] or right[2]
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"):
        base_text, base_names, base_opaque = _message_text_and_names(node.func.value)
        names = list(base_names)
        opaque = base_opaque
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            parts = _dotted_parts(arg)
            if parts is None:
                opaque = True
            else:
                names.append(parts[-1])
        return base_text, names, opaque
    return "", [], True


class ErrorDiscipline(Rule):
    id = "RL003"
    name = "error-discipline"
    rationale = ("failures must be loud and actionable: no bare/silenced "
                 "excepts, and IO content errors must name the path")

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(file, node)
            elif isinstance(node, ast.Raise) and file.is_io_module:
                yield from self._check_raise(file, node)

    def _check_handler(self, file: SourceFile,
                       node: ast.ExceptHandler) -> Iterator[Violation]:
        if node.type is None:
            yield self.violation(
                file, node, "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exceptions this code can actually handle")
            return
        names = []
        if isinstance(node.type, (ast.Name, ast.Attribute)):
            parts = _dotted_parts(node.type)
            names = [parts[-1]] if parts else []
        elif isinstance(node.type, ast.Tuple):
            for element in node.type.elts:
                parts = _dotted_parts(element)
                if parts:
                    names.append(parts[-1])
        if not any(name in ("Exception", "BaseException") for name in names):
            return
        swallowed = all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in node.body)
        if swallowed:
            yield self.violation(
                file, node, "'except Exception' that swallows the error hides "
                "real failures; handle, log or re-raise it")

    def _check_raise(self, file: SourceFile, node: ast.Raise) -> Iterator[Violation]:
        exc = node.exc
        if not (isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name)
                and exc.func.id == "ValueError" and exc.args):
            return
        text, names, opaque = _message_text_and_names(exc.args[0])
        lowered = text.lower()
        if not any(word in lowered for word in _CONTENT_ERROR_WORDS):
            return
        if opaque or any(_PATHISH_NAME.search(name) for name in names):
            return
        yield self.violation(
            file, node, "file-content ValueError must interpolate the offending "
            "path into its message (the fleet pipelines promise "
            "'ValueError naming the path')")


# ----------------------------------------------------------------------
# RL004 picklable-worker-specs
# ----------------------------------------------------------------------
def _spec_class_names(files: Iterable[SourceFile]) -> frozenset[str]:
    """Class names returned by any ``worker_spec()`` implementation."""
    names: set[str] = set()
    for file in files:
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.FunctionDef) and node.name == "worker_spec"):
                continue
            if node.returns is not None:
                parts = _dotted_parts(node.returns)
                if parts:
                    names.add(parts[-1])
            for child in ast.walk(node):
                if (isinstance(child, ast.Return)
                        and isinstance(child.value, ast.Call)):
                    parts = _dotted_parts(child.value.func)
                    if parts:
                        names.add(parts[-1])
    return frozenset(names)


class PicklableWorkerSpecs(Rule):
    id = "RL004"
    name = "picklable-worker-specs"
    rationale = ("worker specs are pickled to the survey's process pool; "
                 "lambdas, closures and open handles do not survive the trip")

    def applies(self, file: SourceFile) -> bool:
        return file.path.startswith("src/repro/")

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name in context.spec_class_names):
                yield from self._check_spec_class(file, node)

    def _check_spec_class(self, file: SourceFile,
                          node: ast.ClassDef) -> Iterator[Violation]:
        # Class-level field defaults (dataclass fields included).
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None:
                yield from self._check_stored_value(file, node, value,
                                                    "a field default")
        # Values stored onto self inside methods.
        for method in (stmt for stmt in node.body
                       if isinstance(stmt, ast.FunctionDef)):
            local_defs = {child.name for child in ast.walk(method)
                          if isinstance(child, ast.FunctionDef)
                          and child is not method}
            for child in ast.walk(method):
                stored: ast.expr | None = None
                if isinstance(child, ast.Assign) and any(
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        for target in child.targets):
                    stored = child.value
                elif (isinstance(child, ast.Call)
                      and _dotted_parts(child.func) == ("object", "__setattr__")
                      and len(child.args) == 3):
                    stored = child.args[2]
                if stored is None:
                    continue
                yield from self._check_stored_value(file, node, stored,
                                                    "an instance field")
                if isinstance(stored, ast.Name) and stored.id in local_defs:
                    yield self.violation(
                        file, stored,
                        f"worker spec {node.name} stores local closure "
                        f"{stored.id!r} in an instance field; closures cannot "
                        "be pickled to the worker pool")

    def _check_stored_value(self, file: SourceFile, cls: ast.ClassDef,
                            value: ast.expr, where: str) -> Iterator[Violation]:
        for child in ast.walk(value):
            if isinstance(child, ast.Lambda):
                yield self.violation(
                    file, child,
                    f"worker spec {cls.name} stores a lambda in {where}; "
                    "lambdas cannot be pickled to the worker pool")
            elif isinstance(child, ast.Call):
                parts = _dotted_parts(child.func)
                if parts and parts[-1] == "open":
                    yield self.violation(
                        file, child,
                        f"worker spec {cls.name} stores an open handle in "
                        f"{where}; store the path and re-open in the worker")


# ----------------------------------------------------------------------
# RL005 schema-completeness (import-time introspection)
# ----------------------------------------------------------------------
def check_block_schemas(block_classes: Sequence[type] | None = None
                        ) -> list[Violation]:
    """RL005: every ColumnarBlock subclass is a registered dataclass whose
    fields match its declared ``BlockSchema`` exactly.

    This check is introspective rather than syntactic: it imports the
    block modules and compares ``dataclasses.fields`` against
    ``_SCHEMA.member_names``, so a drifting schema fails even when the
    drift spans files.  ``block_classes`` overrides discovery (used by
    the self-tests to check deliberately broken classes).
    """
    from ..records import ColumnarBlock, _ensure_registry, registered_block_types

    def _location(cls: type) -> tuple[str, int]:
        try:
            path = inspect.getsourcefile(cls) or "<unknown>"
            line = inspect.getsourcelines(cls)[1]
        except (OSError, TypeError):
            path, line = "<unknown>", 1
        return path, line

    def _subclasses(cls: type) -> Iterator[type]:
        for sub in cls.__subclasses__():
            yield sub
            yield from _subclasses(sub)

    if block_classes is None:
        _ensure_registry()
        block_classes = list(_subclasses(ColumnarBlock))

    violations: list[Violation] = []

    def report(cls: type, message: str) -> None:
        path, line = _location(cls)
        violations.append(Violation(rule="RL005", path=path, line=line, col=0,
                                    message=message))

    for cls in block_classes:
        schema = getattr(cls, "_SCHEMA", None)
        if schema is None:
            report(cls, f"block class {cls.__name__} declares no _SCHEMA; "
                        "spill files cannot round-trip it")
            continue
        if not dataclasses.is_dataclass(cls):
            report(cls, f"block class {cls.__name__} is not a dataclass; the "
                        "schema-driven serialiser requires dataclass fields")
            continue
        fields = tuple(field.name for field in dataclasses.fields(cls))
        members = tuple(schema.member_names)
        if fields != members:
            report(cls, f"block class {cls.__name__} fields {fields} do not "
                        f"match its BlockSchema members {members}; spill "
                        "round trips would drop or misplace columns")
        if (fields == members and cls not in registered_block_types()
                and cls.__module__.startswith("repro.")):
            report(cls, f"block class {cls.__name__} is not registered via "
                        "register_block_type; spill directories holding it "
                        "cannot be re-opened by sniffing")
    return violations


# ----------------------------------------------------------------------
# RL006 deterministic-iteration
# ----------------------------------------------------------------------
def _is_empty_accumulator(value: ast.expr | None) -> bool:
    """True for ``{}``, ``dict()``, ``set()``, ``frozenset()``, ``defaultdict(...)``."""
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    if isinstance(value, ast.Call):
        parts = _dotted_parts(value.func)
        if parts is None:
            return False
        name = parts[-1]
        if name in ("dict", "set", "frozenset") and not value.args:
            return True
        if name == "defaultdict":
            return True
    return False


def _is_set_expression(node: ast.expr) -> bool:
    """True for set displays/comprehensions and ``set(...)``/``frozenset(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = _dotted_parts(node.func)
        return parts is not None and parts[-1] in ("set", "frozenset")
    return False


class DeterministicIteration(Rule):
    id = "RL006"
    name = "deterministic-iteration"
    rationale = ("record output must depend only on the data *set*, not on "
                 "hash seeds or insertion history; iterate accumulators via "
                 "sorted(...)")

    def applies(self, file: SourceFile) -> bool:
        return file.is_record_module

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        scopes: list[ast.AST] = [file.tree]
        scopes.extend(node for node in ast.walk(file.tree)
                      if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)))
        for scope in scopes:
            yield from self._check_scope(file, scope)

    def _scope_statements(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function scopes."""
        body = scope.body if hasattr(scope, "body") else []
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, file: SourceFile, scope: ast.AST) -> Iterator[Violation]:
        accumulators: set[str] = set()
        for node in self._scope_statements(scope):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if _is_empty_accumulator(value) or _is_set_expression(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        accumulators.add(target.id)

        def iteration_sites() -> Iterator[ast.expr]:
            for node in self._scope_statements(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    yield node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    for generator in node.generators:
                        yield generator.iter

        for iterable in iteration_sites():
            yield from self._check_iterable(file, iterable, accumulators)

    def _check_iterable(self, file: SourceFile, iterable: ast.expr,
                        accumulators: set[str]) -> Iterator[Violation]:
        if _is_set_expression(iterable):
            yield self.violation(
                file, iterable,
                "iterating a set in a record-emitting module follows hash "
                "order, which varies across processes; wrap it in sorted(...)")
            return
        name: str | None = None
        if isinstance(iterable, ast.Name):
            name = iterable.id
        elif (isinstance(iterable, ast.Call)
              and isinstance(iterable.func, ast.Attribute)
              and iterable.func.attr in ("keys", "values", "items")
              and isinstance(iterable.func.value, ast.Name)):
            name = iterable.func.value.id
        if name is not None and name in accumulators:
            yield self.violation(
                file, iterable,
                f"iterating accumulator {name!r} in insertion order makes "
                "record output depend on arrival history; wrap the iteration "
                "in sorted(...)")


# ----------------------------------------------------------------------
# RL007 quarantine-discipline
# ----------------------------------------------------------------------
#: Dotted-name fragments that mark a call as part of the failure-recording
#: / retry machinery (``record_failure``, ``append_failures``,
#: ``_quarantine_*``, ``retry.delay``, ``_needs_resubmit``, ...).
_QUARANTINE_CALL_WORDS = ("failure", "retry", "quarantine", "resubmit")


class QuarantineDiscipline(Rule):
    id = "RL007"
    name = "quarantine-discipline"
    rationale = ("an isolated failure must be recorded or re-raised, never "
                 "silently dropped; quarantining except handlers must call "
                 "the failure-record/retry machinery")

    def applies(self, file: SourceFile) -> bool:
        return file.is_quarantine_module

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ExceptHandler) and not self._accounted(node):
                yield self.violation(
                    file, node,
                    "except handler in a quarantining pipeline module neither "
                    "re-raises nor records the failure (no raise statement, no "
                    "failure/retry/quarantine/resubmit call); a silently "
                    "continued handler drops pairs without a failure record")

    @staticmethod
    def _accounted(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or reaches the failure machinery."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                parts = _dotted_parts(node.func)
                if parts and any(word in part.lower() for part in parts
                                 for word in _QUARANTINE_CALL_WORDS):
                    return True
        return False


# ----------------------------------------------------------------------
# RL008 content-addressed-keys
# ----------------------------------------------------------------------
#: Method names that enumerate a directory in filesystem order.
_FS_ITERATION_ATTRS = frozenset({"glob", "rglob", "iterdir"})

#: Fully-qualified callables that enumerate a directory in filesystem order.
_FS_ITERATION_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob",
                                 "glob.iglob"})


class ContentAddressedKeys(Rule):
    id = "RL008"
    name = "content-addressed-keys"
    rationale = ("store/cache keys must derive from hashed content only; "
                 "id(), wall-clock/uuid calls and unsorted filesystem "
                 "iteration would key the cache on process or disk state")

    def applies(self, file: SourceFile) -> bool:
        return file.is_store_module

    def check(self, file: SourceFile, context: ProjectContext) -> Iterator[Violation]:
        imports = _ImportTable(file.tree)
        wrapped = self._sorted_wrapped_calls(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                yield self.violation(
                    file, node,
                    "id() is a process-lifetime address, not an identity; "
                    "derive cache keys from hashed content instead")
                continue
            full = imports.resolve(node.func)
            if full in _WALLCLOCK_CALLS or (full or "").startswith("uuid."):
                yield self.violation(
                    file, node,
                    f"{full}() injects process state into a store/cache "
                    "module; cache identity must come from hashed content")
                continue
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if (attr in _FS_ITERATION_ATTRS or full in _FS_ITERATION_CALLS) \
                    and node not in wrapped:
                yield self.violation(
                    file, node,
                    f"{attr or full}() enumerates the filesystem in on-disk "
                    "order; wrap the listing in sorted(...) so store contents "
                    "do not depend on directory state")

    @staticmethod
    def _sorted_wrapped_calls(tree: ast.Module) -> set[ast.Call]:
        """Calls that appear inside the arguments of a ``sorted(...)`` call."""
        wrapped: set[ast.Call] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                for argument in node.args:
                    wrapped.update(child for child in ast.walk(argument)
                                   if isinstance(child, ast.Call))
        return wrapped


#: The registered rules, in id order.  RL005 is import-time introspection
#: (see :func:`check_block_schemas`) and runs when ``src/repro`` is linted.
RULES: tuple[Rule, ...] = (
    NoUnseededRandomness(),
    NoWallclockInLibrary(),
    ErrorDiscipline(),
    PicklableWorkerSpecs(),
    DeterministicIteration(),
    QuarantineDiscipline(),
    ContentAddressedKeys(),
)


def rule_catalogue() -> list[tuple[str, str, str]]:
    """(id, name, rationale) triples for every rule, RL005 included."""
    triples = [(rule.id, rule.name, rule.rationale) for rule in RULES]
    triples.append(("RL005", "schema-completeness",
                    "ColumnarBlock subclasses must be registered dataclasses "
                    "whose fields match their BlockSchema exactly"))
    return sorted(triples)


# ----------------------------------------------------------------------
# Running the analyser
# ----------------------------------------------------------------------
def _suppressed(file: SourceFile, violation: Violation) -> bool:
    if violation.line not in file.disabled:
        return False
    rules = file.disabled[violation.line]
    return rules is None or violation.rule in rules


def lint_sources(sources: Mapping[str, str],
                 select: Sequence[str] | None = None) -> list[Violation]:
    """Lint a mapping of repo-relative path -> source text.

    The path classifies each file (library / CLI / IO module / record
    module), exactly as on disk; the self-tests use virtual paths to
    place fixture snippets in any zone.  RL005 is not run here (it is
    introspective, not per-source); call :func:`check_block_schemas`.
    """
    files = [_parse_source(path, text) for path, text in sorted(sources.items())]
    context = ProjectContext(spec_class_names=_spec_class_names(files))
    violations: list[Violation] = []
    for file in files:
        for rule in RULES:
            if select is not None and rule.id not in select:
                continue
            if not rule.applies(file):
                continue
            violations.extend(v for v in rule.check(file, context)
                              if not _suppressed(file, v))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def find_repo_root(start: Path | None = None) -> Path:
    """Locate the repository root by walking up to ``pyproject.toml``."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    raise ValueError(f"no pyproject.toml above {here}; pass explicit paths or "
                     "--root to repro-lint")


def _collect_files(root: Path, paths: Sequence[Path]) -> dict[str, str]:
    sources: dict[str, str] = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise ValueError(f"not a python file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            try:
                rel = candidate.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            sources[rel] = candidate.read_text()
    return sources


def lint_paths(paths: Sequence[Path], root: Path | None = None,
               select: Sequence[str] | None = None,
               import_checks: bool = True) -> list[Violation]:
    """Lint files/directories on disk; adds RL005 when src/repro is in scope."""
    root = root if root is not None else find_repo_root(
        paths[0] if paths else None)
    sources = _collect_files(root, paths)
    violations = lint_sources(sources, select=select)
    lints_library = any(rel.startswith("src/repro/") for rel in sources)
    if import_checks and lints_library and (select is None or "RL005" in select):
        violations.extend(check_block_schemas())
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point (``repro-lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis of this repository's own invariants "
                    "(seeded RNG, no wall clock in the library, error and "
                    "iteration discipline, picklable worker specs, complete "
                    "block schemas).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: the "
                             "repository's src/, tests/, benchmarks/ and "
                             "examples/ trees)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root for path classification "
                             "(default: walk up to pyproject.toml)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-import-checks", action="store_true",
                        help="skip the import-time RL005 schema check")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name, rationale in rule_catalogue():
            print(f"{rule_id}  {name}: {rationale}")
        return 0

    try:
        root = (args.root.resolve() if args.root is not None
                else find_repo_root(args.paths[0] if args.paths else None))
        paths = list(args.paths) if args.paths else [
            root / part for part in DEFAULT_ROOTS if (root / part).is_dir()]
        select = args.select.split(",") if args.select else None
        violations = lint_paths(paths, root=root, select=select,
                                import_checks=not args.no_import_checks)
    except (ValueError, SyntaxError) as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
