"""Operational events and detection scoring.

The reason operators over-sample is fear of missing events ("admins often
express concern that collecting less information could lead to missing out
on important insights").  To quantify that fear, this module injects the
kinds of events §4.2 discusses -- fail-stop level shifts, link flaps
(bursts of FCS errors), transient spikes -- into reference traces and
scores how quickly each sampling policy's collected stream reveals them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from ..signals.timeseries import TimeSeries

__all__ = ["EventKind", "InjectedEvent", "inject_event", "ThresholdDetector",
           "DetectionOutcome", "score_detection"]


class EventKind(enum.Enum):
    """Kinds of operational events the simulator can inject."""

    STEP = "step"          # fail-stop: the metric jumps to a new level and stays
    SPIKE = "spike"        # transient: a short excursion that returns to normal
    BURST = "burst"        # link-flap style: repeated excursions over a period


@dataclass(frozen=True)
class InjectedEvent:
    """Description of an event injected into a trace."""

    kind: EventKind
    start_time: float
    magnitude: float
    duration: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


def inject_event(series: TimeSeries, kind: EventKind, start_time: float,
                 magnitude: float, duration: float | None = None,
                 rng: np.random.Generator | None = None) -> tuple[TimeSeries, InjectedEvent]:
    """Inject an event into ``series`` and return (modified trace, event record).

    ``magnitude`` is expressed in the trace's own units (add it to the
    affected samples).  ``duration`` defaults to 5 % of the trace for steps
    (which then persist to the end), one sample for spikes, and 2 % of the
    trace for bursts.
    """
    if len(series) == 0:
        raise ValueError("cannot inject an event into an empty trace")
    if not series.start_time <= start_time < series.end_time:
        raise ValueError("start_time must fall inside the trace")
    rng = rng or np.random.default_rng(0)
    values = series.values.copy()
    times = series.times()
    if kind == EventKind.STEP:
        duration = series.end_time - start_time if duration is None else duration
        mask = times >= start_time
        values[mask] += magnitude
    elif kind == EventKind.SPIKE:
        duration = series.interval if duration is None else duration
        mask = (times >= start_time) & (times < start_time + duration)
        if not np.any(mask):
            mask[np.argmin(np.abs(times - start_time))] = True
        values[mask] += magnitude
    elif kind == EventKind.BURST:
        duration = 0.02 * series.duration if duration is None else duration
        mask = (times >= start_time) & (times < start_time + duration)
        count = int(np.count_nonzero(mask))
        if count == 0:
            mask[np.argmin(np.abs(times - start_time))] = True
            count = 1
        # A flapping link produces an on/off pattern, not a clean plateau.
        pattern = (rng.random(count) < 0.6).astype(float)
        values[mask] += magnitude * pattern
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown event kind {kind!r}")
    event = InjectedEvent(kind=kind, start_time=start_time, magnitude=magnitude,
                          duration=float(duration))
    return series.with_values(values), event


class ThresholdDetector:
    """Detect an event as the first collected sample exceeding a threshold.

    The threshold is expressed as ``baseline + k * sigma`` computed on the
    pre-event part of the collected stream, which is how simple production
    alerting rules work.
    """

    def __init__(self, sigma_multiplier: float = 4.0, min_threshold: float = 0.0) -> None:
        if sigma_multiplier <= 0:
            raise ValueError("sigma_multiplier must be positive")
        self.sigma_multiplier = sigma_multiplier
        self.min_threshold = min_threshold

    def detection_time(self, collected: TimeSeries, event: InjectedEvent) -> float | None:
        """Time at which the event becomes visible in ``collected`` (None = missed)."""
        if len(collected) == 0:
            return None
        times = collected.times()
        pre_mask = times < event.start_time
        pre_values = collected.values[pre_mask]
        if pre_values.size >= 2:
            baseline = float(np.mean(pre_values))
            sigma = float(np.std(pre_values))
        else:
            baseline = float(collected.values[0])
            sigma = 0.0
        threshold = baseline + max(self.sigma_multiplier * sigma, self.min_threshold,
                                   0.5 * abs(event.magnitude))
        post_mask = times >= event.start_time
        post_times = times[post_mask]
        post_values = collected.values[post_mask]
        exceeding = np.nonzero(post_values > threshold)[0]
        if exceeding.size == 0:
            return None
        return float(post_times[exceeding[0]])


@dataclass(frozen=True)
class DetectionOutcome:
    """How one policy fared against one injected event."""

    policy_name: str
    detected: bool
    latency: float

    @property
    def missed(self) -> bool:
        return not self.detected


def score_detection(policy_name: str, collected: TimeSeries, event: InjectedEvent,
                    detector: ThresholdDetector | None = None) -> DetectionOutcome:
    """Score one policy's collected stream against one injected event."""
    detector = detector or ThresholdDetector()
    when = detector.detection_time(collected, event)
    if when is None:
        return DetectionOutcome(policy_name, detected=False, latency=math.inf)
    return DetectionOutcome(policy_name, detected=True,
                            latency=max(when - event.start_time, 0.0))
