"""Operational events and detection scoring.

The reason operators over-sample is fear of missing events ("admins often
express concern that collecting less information could lead to missing out
on important insights").  To quantify that fear, this module injects the
kinds of events §4.2 discusses -- fail-stop level shifts, link flaps
(bursts of FCS errors), transient spikes -- into reference traces and
scores how quickly each sampling policy's collected stream reveals them.

The adaptive controller is itself an event source: its probe/settle mode
changes (:class:`~repro.core.adaptive.ModeTransition`, re-exported here)
are how the scenario matrix *measures* re-probe latency after a regime
shift -- :func:`reprobe_latency` and :func:`resettle_latency` score the
transition stream against the known shift time, instead of inferring the
controller's reaction from nrmse drift.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.adaptive import ModeTransition
from ..signals.timeseries import TimeSeries

__all__ = ["EventKind", "InjectedEvent", "inject_event", "ThresholdDetector",
           "DetectionOutcome", "score_detection", "ModeTransition",
           "reprobe_latency", "resettle_latency"]


class EventKind(enum.Enum):
    """Kinds of operational events the simulator can inject."""

    STEP = "step"          # fail-stop: the metric jumps to a new level and stays
    SPIKE = "spike"        # transient: a short excursion that returns to normal
    BURST = "burst"        # link-flap style: repeated excursions over a period


@dataclass(frozen=True)
class InjectedEvent:
    """Description of an event injected into a trace."""

    kind: EventKind
    start_time: float
    magnitude: float
    duration: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


def inject_event(series: TimeSeries, kind: EventKind, start_time: float,
                 magnitude: float, duration: float | None = None,
                 rng: np.random.Generator | None = None) -> tuple[TimeSeries, InjectedEvent]:
    """Inject an event into ``series`` and return (modified trace, event record).

    ``magnitude`` is expressed in the trace's own units (add it to the
    affected samples).  ``duration`` defaults to 5 % of the trace for steps
    (which then persist to the end), one sample for spikes, and 2 % of the
    trace for bursts.
    """
    if len(series) == 0:
        raise ValueError("cannot inject an event into an empty trace")
    if not series.start_time <= start_time < series.end_time:
        raise ValueError("start_time must fall inside the trace")
    rng = rng or np.random.default_rng(0)
    values = series.values.copy()
    times = series.times()
    if kind == EventKind.STEP:
        duration = series.end_time - start_time if duration is None else duration
        mask = times >= start_time
        values[mask] += magnitude
    elif kind == EventKind.SPIKE:
        duration = series.interval if duration is None else duration
        mask = (times >= start_time) & (times < start_time + duration)
        if not np.any(mask):
            mask[np.argmin(np.abs(times - start_time))] = True
        values[mask] += magnitude
    elif kind == EventKind.BURST:
        duration = 0.02 * series.duration if duration is None else duration
        mask = (times >= start_time) & (times < start_time + duration)
        count = int(np.count_nonzero(mask))
        if count == 0:
            mask[np.argmin(np.abs(times - start_time))] = True
            count = 1
        # A flapping link produces an on/off pattern, not a clean plateau.
        pattern = (rng.random(count) < 0.6).astype(float)
        values[mask] += magnitude * pattern
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown event kind {kind!r}")
    event = InjectedEvent(kind=kind, start_time=start_time, magnitude=magnitude,
                          duration=float(duration))
    return series.with_values(values), event


class ThresholdDetector:
    """Detect an event as the first collected sample exceeding a threshold.

    The threshold is expressed as ``baseline + k * sigma`` computed on the
    pre-event part of the collected stream, which is how simple production
    alerting rules work.
    """

    def __init__(self, sigma_multiplier: float = 4.0, min_threshold: float = 0.0) -> None:
        if sigma_multiplier <= 0:
            raise ValueError("sigma_multiplier must be positive")
        self.sigma_multiplier = sigma_multiplier
        self.min_threshold = min_threshold

    def detection_time(self, collected: TimeSeries, event: InjectedEvent) -> float | None:
        """Time at which the event becomes visible in ``collected`` (None = missed)."""
        if len(collected) == 0:
            return None
        times = collected.times()
        pre_mask = times < event.start_time
        pre_values = collected.values[pre_mask]
        if pre_values.size >= 2:
            baseline = float(np.mean(pre_values))
            sigma = float(np.std(pre_values))
        else:
            baseline = float(collected.values[0])
            sigma = 0.0
        threshold = baseline + max(self.sigma_multiplier * sigma, self.min_threshold,
                                   0.5 * abs(event.magnitude))
        post_mask = times >= event.start_time
        post_times = times[post_mask]
        post_values = collected.values[post_mask]
        exceeding = np.nonzero(post_values > threshold)[0]
        if exceeding.size == 0:
            return None
        return float(post_times[exceeding[0]])


@dataclass(frozen=True)
class DetectionOutcome:
    """How one policy fared against one injected event."""

    policy_name: str
    detected: bool
    latency: float

    @property
    def missed(self) -> bool:
        return not self.detected


def score_detection(policy_name: str, collected: TimeSeries, event: InjectedEvent,
                    detector: ThresholdDetector | None = None) -> DetectionOutcome:
    """Score one policy's collected stream against one injected event."""
    detector = detector or ThresholdDetector()
    when = detector.detection_time(collected, event)
    if when is None:
        return DetectionOutcome(policy_name, detected=False, latency=math.inf)
    return DetectionOutcome(policy_name, detected=True,
                            latency=max(when - event.start_time, 0.0))


# ----------------------------------------------------------------------
# Adaptive-controller transition scoring
# ----------------------------------------------------------------------
def reprobe_latency(transitions: Sequence[ModeTransition],
                    shift_time: float) -> float | None:
    """Seconds from a regime shift to the controller's first re-probe.

    The latency is measured to the first steady -> probe transition at or
    after ``shift_time``; ``None`` means the controller never noticed
    (it stayed steady for the rest of the run -- either the shift was
    invisible at its settled rate, or the run ended first).  A controller
    still in its initial probe phase at ``shift_time`` has latency 0: it
    is already probing.
    """
    for transition in transitions:
        if transition.kind == "re-probe" and transition.time >= shift_time:
            return transition.time - shift_time
    return None


def resettle_latency(transitions: Sequence[ModeTransition],
                     shift_time: float) -> float | None:
    """Seconds from a regime shift to the controller settling again.

    Measured to the first probe -> steady transition *after* the first
    post-shift re-probe: the full disruption window during which the
    controller pays dual-stream probing cost.  ``None`` when the
    controller never re-probed or never re-settled before the run ended.
    """
    noticed = reprobe_latency(transitions, shift_time)
    if noticed is None:
        return None
    reprobe_time = shift_time + noticed
    for transition in transitions:
        if transition.kind == "settle" and transition.time > reprobe_time:
            return transition.time - shift_time
    return None
