"""A-posteriori storage reduction: keep only Nyquist-rate samples of collected data.

Section 4 of the paper: "the actual measurement may be inexpensive relative
to the cost to store the metric or the cost of downstream analysis; in such
cases, we can use the above techniques a posteriori, i.e., measure at a
high rate, compute the nyquist rate over the measurements and store or
present for later analysis only the measurements that are re-sampled at the
lower nyquist rate."

:class:`AposterioriRetention` packages that workflow for a batch of already
collected traces: estimate each trace's Nyquist rate, re-sample it to that
rate (plus headroom), and report the storage saving together with the
fidelity that a later reader would see after reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.nyquist import NyquistEstimator
from ..core.quantization import UniformQuantizer
from ..core.reconstruction import RoundTripResult, nyquist_round_trip
from ..network.cost import CostModel
from ..signals.timeseries import TimeSeries

__all__ = ["RetentionDecision", "RetentionReport", "AposterioriRetention"]


@dataclass(frozen=True)
class RetentionDecision:
    """What the retention pass decided for one collected trace."""

    name: str
    samples_collected: int
    samples_retained: int
    storage_saving: float
    nyquist_rate: float
    nrmse_after_reconstruction: float
    kept_full_rate: bool

    @property
    def retained_fraction(self) -> float:
        if self.samples_collected == 0:
            return float("nan")
        return self.samples_retained / self.samples_collected


@dataclass
class RetentionReport:
    """Aggregate outcome of a retention pass over many traces."""

    decisions: list[RetentionDecision]
    bytes_per_sample: float

    @property
    def total_collected(self) -> int:
        return sum(decision.samples_collected for decision in self.decisions)

    @property
    def total_retained(self) -> int:
        return sum(decision.samples_retained for decision in self.decisions)

    @property
    def storage_saving(self) -> float:
        """Overall storage reduction factor (collected bytes / retained bytes)."""
        retained = self.total_retained
        if retained == 0:
            return float("inf")
        return self.total_collected / retained

    @property
    def bytes_saved(self) -> float:
        return (self.total_collected - self.total_retained) * self.bytes_per_sample

    @property
    def worst_nrmse(self) -> float:
        errors = [decision.nrmse_after_reconstruction for decision in self.decisions
                  if not np.isnan(decision.nrmse_after_reconstruction)]
        return float(np.max(errors)) if errors else float("nan")

    def as_rows(self) -> list[dict[str, float | str]]:
        """Per-trace rows for tables / CSV export."""
        return [{
            "trace": decision.name,
            "collected": float(decision.samples_collected),
            "retained": float(decision.samples_retained),
            "saving": decision.storage_saving,
            "nyquist_rate_hz": decision.nyquist_rate,
            "nrmse": decision.nrmse_after_reconstruction,
            "kept_full_rate": decision.kept_full_rate,
        } for decision in self.decisions]


class AposterioriRetention:
    """Re-sample already-collected traces down to their Nyquist rate before storing.

    Parameters
    ----------
    estimator:
        Nyquist estimator to use (defaults to the paper's 99 % setting).
    headroom:
        Multiplier (>= 1) on the estimated rate; keeps a margin so the
        stored data remains robust to mild rate drift.
    max_nrmse:
        Quality guard: if reconstructing the retained samples would exceed
        this NRMSE against the collected data, the trace is kept at full
        rate instead (no saving, no loss).  Set to ``None`` to disable.
    cost_model:
        Used only for the per-sample byte size in the report.
    """

    def __init__(self, estimator: NyquistEstimator | None = None,
                 headroom: float = 1.25,
                 max_nrmse: float | None = 0.1,
                 cost_model: CostModel | None = None) -> None:
        if headroom < 1:
            raise ValueError("headroom must be >= 1")
        if max_nrmse is not None and max_nrmse <= 0:
            raise ValueError("max_nrmse must be positive (or None)")
        self.estimator = estimator or NyquistEstimator()
        self.headroom = headroom
        self.max_nrmse = max_nrmse
        self.cost_model = cost_model or CostModel()

    # ------------------------------------------------------------------
    def process_trace(self, trace: TimeSeries,
                      quantizer: UniformQuantizer | None = None) -> tuple[RetentionDecision, TimeSeries]:
        """Decide what to retain for one trace; returns (decision, retained series)."""
        result: RoundTripResult = nyquist_round_trip(trace, estimator=self.estimator,
                                                     headroom=self.headroom,
                                                     quantizer=quantizer)
        nrmse = result.error.nrmse
        keep_full = (not result.estimate.reliable
                     or (self.max_nrmse is not None and not np.isnan(nrmse)
                         and nrmse > self.max_nrmse))
        retained = trace if keep_full else result.downsampled
        decision = RetentionDecision(
            name=trace.name or "trace",
            samples_collected=len(trace),
            samples_retained=len(retained),
            storage_saving=len(trace) / len(retained) if len(retained) else float("inf"),
            nyquist_rate=result.estimate.nyquist_rate,
            nrmse_after_reconstruction=0.0 if keep_full else nrmse,
            kept_full_rate=keep_full,
        )
        return decision, retained

    def process(self, traces: list[TimeSeries],
                quantizer: UniformQuantizer | None = None) -> RetentionReport:
        """Run the retention pass over a batch of traces."""
        if not traces:
            raise ValueError("traces must not be empty")
        decisions = [self.process_trace(trace, quantizer=quantizer)[0] for trace in traces]
        return RetentionReport(decisions=decisions,
                               bytes_per_sample=self.cost_model.bytes_per_sample)
