"""Sampling policies: today's fixed-rate polling and the paper's alternatives.

A policy decides which samples of the underlying signal a monitoring system
actually collects.  Three policies are provided:

* :class:`FixedRatePolicy` -- poll at a fixed, ad-hoc rate.  This is
  "today's system" (§3.1): the rate is whatever the operator configured.
* :class:`NyquistStaticPolicy` -- spend a calibration prefix measuring at
  the production rate, estimate the Nyquist rate with the §3.2 method once,
  then poll at that rate (plus headroom) for the rest of the trace.
* :class:`AdaptiveDualRatePolicy` -- the §4 dynamic controller: probe with
  dual-frequency sampling, detect aliasing, settle at the Nyquist rate and
  keep adapting.

Two execution paths share these semantics:

* :meth:`SamplingPolicy.collect` runs a policy over one reference
  :class:`~repro.signals.timeseries.TimeSeries` and returns a
  :class:`PolicyResult` with the collected samples, a reconstruction of
  the full-rate signal (the paper's low-pass interpolator) and
  bookkeeping for cost accounting -- the reference implementation, and
  the one event-detection scoring needs (it sees the collected stream).
* :meth:`SamplingPolicy.evaluate_batch` runs a policy over a whole
  ``(rows, n)`` matrix of equal-shape reference traces and returns
  columnar per-trace outcome arrays (:class:`PolicyBatchEvaluation`).
  :class:`FixedRatePolicy` and :class:`NyquistStaticPolicy` override it
  with vectorised implementations (batched decimation, one
  ``estimate_batch`` call for the whole calibration matrix, one FFT pair
  for all reconstructions); the adaptive controller is inherently
  sequential per trace and uses the row-loop default.  This is the feed
  of the fleet-scale policy survey
  (:func:`repro.analysis.policy_survey.run_policy_survey`).

:class:`PolicySuite` builds the paper's three-policy comparison for a
metric's production interval, so fleets whose metrics poll at different
rates can be evaluated with one configuration object.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.adaptive import AdaptiveRun, AdaptiveSamplingController, ControllerConfig
from ..core.errors import compare, compare_batch
from ..core.nyquist import NyquistEstimator
from ..core.reconstruction import reconstruct, reconstruct_batch
from ..core.resampling import decimation_factor, resample_to_rate
from ..signals.timeseries import TimeSeries

__all__ = ["PolicyResult", "PolicyBatchEvaluation", "SamplingPolicy", "FixedRatePolicy",
           "NyquistStaticPolicy", "AdaptiveDualRatePolicy", "PolicySuite",
           "StaticPolicySuite"]


@dataclass(frozen=True)
class PolicyResult:
    """What a sampling policy produced for one measurement point."""

    policy_name: str
    samples_collected: int
    collected: TimeSeries
    reconstructed: TimeSeries
    mean_sampling_rate: float
    detail: dict[str, float]

    @property
    def samples_per_hour(self) -> float:
        duration = self.reconstructed.duration
        if duration <= 0:
            return float("nan")
        return self.samples_collected / (duration / 3600.0)


@dataclass(frozen=True)
class PolicyBatchEvaluation:
    """Columnar outcome of one policy over a batch of reference traces.

    One entry per row of the evaluated ``(rows, n)`` matrix, in row
    order.  This is the per-point record the fleet policy survey stores;
    the reconstruction itself is never materialised outside the batch
    call (only its error against the reference is).
    """

    policy_name: str
    samples_collected: np.ndarray
    mean_sampling_rate: np.ndarray
    nrmse: np.ndarray
    max_abs_error: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "samples_collected",
                           np.asarray(self.samples_collected, dtype=np.int64))
        for column in ("mean_sampling_rate", "nrmse", "max_abs_error"):
            object.__setattr__(self, column,
                               np.asarray(getattr(self, column), dtype=np.float64))
        rows = self.samples_collected.shape[0]
        for column in ("mean_sampling_rate", "nrmse", "max_abs_error"):
            if getattr(self, column).shape != (rows,):
                raise ValueError(f"column {column!r} must be 1-D with {rows} rows")

    def __len__(self) -> int:
        return int(self.samples_collected.shape[0])


class SamplingPolicy(abc.ABC):
    """Interface every sampling policy implements."""

    #: Human-readable policy name used in reports.
    name: str = "policy"

    def cache_token(self) -> str:
        """Canonical parameter string for content-addressed record caching.

        The default serialises every instance attribute in sorted order,
        which is exact for the built-in policies (their attributes are
        floats, strings and frozen dataclasses).  Policies holding
        attributes without deterministic reprs must override this.
        """
        fields = ", ".join(f"{key}={value!r}"
                           for key, value in sorted(vars(self).items()))
        return f"{type(self).__name__}({fields})"

    @abc.abstractmethod
    def collect(self, reference: TimeSeries) -> PolicyResult:
        """Collect samples from the underlying signal ``reference``.

        ``reference`` is a high-rate trace standing in for the continuous
        underlying metric; a policy may only *read* the samples it decides
        to collect, and its ``samples_collected`` must reflect every sample
        it read (including probe traffic).
        """

    def evaluate_batch(self, values: np.ndarray, interval: float) -> PolicyBatchEvaluation:
        """Run the policy over every row of a ``(rows, n)`` reference matrix.

        All rows share one sampling ``interval`` (group heterogeneous
        fleets with :meth:`~repro.telemetry.source.BaseTraceSource.trace_batches`).
        Returns columnar per-row outcomes: samples collected, achieved
        mean rate, and the reconstruction error against the reference.

        The default implementation loops :meth:`collect` row by row (used
        by the sequential adaptive controller); vectorisable policies
        override it with batched implementations that produce the same
        numbers without per-trace Python overhead.
        """
        if values.ndim != 2:
            raise ValueError(f"values must be a (rows, n) matrix, got shape {values.shape}")
        rows = values.shape[0]
        samples = np.zeros(rows, dtype=np.int64)
        mean_rate = np.zeros(rows)
        nrmse = np.zeros(rows)
        max_abs = np.zeros(rows)
        for index in range(rows):
            reference = TimeSeries(values[index], interval)
            outcome = self.collect(reference)
            error = compare(reference, outcome.reconstructed)
            samples[index] = outcome.samples_collected
            mean_rate[index] = outcome.mean_sampling_rate
            nrmse[index] = error.nrmse
            max_abs[index] = error.max_abs
        return PolicyBatchEvaluation(self.name, samples, mean_rate, nrmse, max_abs)

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(name: str, reference: TimeSeries, collected: TimeSeries,
                samples_collected: int, detail: dict[str, float] | None = None) -> PolicyResult:
        """Shared epilogue: reconstruct at the reference rate and bundle the result."""
        if len(collected) < 2:
            # A policy that collected fewer than two samples has no signal
            # to reconstruct from; silently reporting a constant (formerly
            # 0.0 for an empty stream) produced a bogus-but-plausible
            # nrmse that skewed whole-fleet quality aggregates.
            raise ValueError(
                f"policy {name!r} collected only {len(collected)} sample(s) from "
                f"{reference.name or 'the reference trace'} "
                f"({len(reference)} samples over {reference.duration:g}s); "
                "at least 2 are needed to reconstruct")
        reconstructed = reconstruct(collected, reference.sampling_rate)
        duration = reference.duration
        mean_rate = samples_collected / duration if duration > 0 else float("nan")
        return PolicyResult(
            policy_name=name,
            samples_collected=samples_collected,
            collected=collected,
            reconstructed=reconstructed,
            mean_sampling_rate=mean_rate,
            detail=dict(detail or {}),
        )


class FixedRatePolicy(SamplingPolicy):
    """Poll at a fixed rate -- the ad-hoc baseline of §3.1.

    Parameters
    ----------
    interval:
        Polling interval in seconds (e.g. the production default for the
        metric).
    """

    def __init__(self, interval: float, name: str | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.name = name or f"fixed@{interval:g}s"

    def collect(self, reference: TimeSeries) -> PolicyResult:
        rate = min(1.0 / self.interval, reference.sampling_rate)
        collected = resample_to_rate(reference, rate, anti_alias=False)
        return self._finish(self.name, reference, collected, len(collected),
                            detail={"rate_hz": rate})

    def evaluate_batch(self, values: np.ndarray, interval: float) -> PolicyBatchEvaluation:
        """Vectorised path: one decimation + one batched FFT reconstruction.

        Every row polls at the same fixed rate, so the whole batch shares
        one decimation factor and one reconstruction shape -- the entire
        evaluation is three matrix operations.
        """
        if values.ndim != 2:
            raise ValueError(f"values must be a (rows, n) matrix, got shape {values.shape}")
        rows, n = values.shape
        reference_rate = 1.0 / interval
        rate = min(1.0 / self.interval, reference_rate)
        factor = decimation_factor(reference_rate, rate)
        collected = values[:, ::factor]
        m = collected.shape[1]
        if m < 2:
            raise ValueError(
                f"policy {self.name!r} collected only {m} sample(s) per trace "
                f"({n} reference samples at {interval:g}s); at least 2 are needed "
                "to reconstruct")
        reconstructed = reconstruct_batch(collected, interval * factor, reference_rate)
        nrmse, max_abs = compare_batch(values, reconstructed)
        duration = n * interval
        return PolicyBatchEvaluation(
            policy_name=self.name,
            samples_collected=np.full(rows, m, dtype=np.int64),
            mean_sampling_rate=np.full(rows, m / duration),
            nrmse=nrmse,
            max_abs_error=max_abs,
        )


class NyquistStaticPolicy(SamplingPolicy):
    """Calibrate once with the §3.2 estimator, then poll at the Nyquist rate.

    Parameters
    ----------
    production_interval:
        Interval used during the calibration prefix (today's rate).
    calibration_fraction:
        Fraction of the trace spent calibrating at the production rate.
    headroom:
        Multiplier (>= 1) applied to the estimated rate before polling.
    """

    def __init__(self, production_interval: float, calibration_fraction: float = 0.25,
                 headroom: float = 1.2, estimator: NyquistEstimator | None = None,
                 name: str | None = None) -> None:
        if production_interval <= 0:
            raise ValueError("production_interval must be positive")
        if not 0 < calibration_fraction < 1:
            raise ValueError("calibration_fraction must be in (0, 1)")
        if headroom < 1:
            raise ValueError("headroom must be >= 1")
        self.production_interval = production_interval
        self.calibration_fraction = calibration_fraction
        self.headroom = headroom
        self.estimator = estimator or NyquistEstimator()
        self.name = name or "nyquist-static"

    def collect(self, reference: TimeSeries) -> PolicyResult:
        production_rate = min(1.0 / self.production_interval, reference.sampling_rate)
        split_time = reference.start_time + reference.duration * self.calibration_fraction
        calibration_window = reference.window(reference.start_time, split_time)
        remainder_window = reference.window(split_time, reference.end_time)

        calibration = resample_to_rate(calibration_window, production_rate, anti_alias=False)
        estimate = self.estimator.estimate(calibration) if len(calibration) >= 2 else None

        if estimate is not None and estimate.reliable:
            target_rate = min(estimate.nyquist_rate * self.headroom, production_rate)
        else:
            # Calibration could not produce a usable rate: fall back to the
            # production rate (no saving, no loss).
            target_rate = production_rate
        steady = resample_to_rate(remainder_window, target_rate, anti_alias=False) \
            if len(remainder_window) >= 2 else remainder_window

        # The calibration prefix and the steady-state suffix were collected
        # at different rates; merge them into one stream at the finest
        # common interval (the calibration interval) for reconstruction.
        if len(steady):
            repeat = max(int(round(steady.interval / calibration.interval)), 1)
            merged_values = np.concatenate([calibration.values,
                                            np.repeat(steady.values, repeat)])
        else:
            merged_values = calibration.values
        collected = TimeSeries(merged_values, calibration.interval,
                               start_time=reference.start_time, name=reference.name)

        samples = len(calibration) + len(steady)
        detail = {
            "calibration_samples": float(len(calibration)),
            "steady_samples": float(len(steady)),
            "target_rate_hz": float(target_rate),
            "nyquist_rate_hz": float(estimate.nyquist_rate) if estimate and estimate.reliable else float("nan"),
        }
        return self._finish(self.name, reference, collected, samples, detail)

    def evaluate_batch(self, values: np.ndarray, interval: float) -> PolicyBatchEvaluation:
        """Vectorised path: one ``estimate_batch`` calibration for the whole batch.

        The calibration prefix of every row is estimated with a single
        batched spectral call, rows are then grouped by their resulting
        steady-state decimation factor, and each group's merged
        calibration + steady stream is reconstructed with one batched FFT
        pair.  Numbers match :meth:`collect` row for row.
        """
        if values.ndim != 2:
            raise ValueError(f"values must be a (rows, n) matrix, got shape {values.shape}")
        rows, n = values.shape
        reference_rate = 1.0 / interval
        production_rate = min(1.0 / self.production_interval, reference_rate)
        duration = n * interval

        # Calibration prefix: same index arithmetic as TimeSeries.window on
        # a start_time-0 trace, then the same decimation resample_to_rate
        # would apply.
        cal_stop = min(max(int(np.ceil(duration * self.calibration_fraction / interval)),
                           0), n)
        factor_c = decimation_factor(reference_rate, production_rate)
        calibration = values[:, :cal_stop:factor_c]
        cal_m = calibration.shape[1]
        cal_interval = interval * factor_c

        nyquist = np.full(rows, np.nan)
        reliable = np.zeros(rows, dtype=bool)
        if cal_m >= 2:
            estimates = self.estimator.estimate_batch(calibration, cal_interval)
            reliable = np.fromiter((e.reliable for e in estimates), bool, rows)
            nyquist = np.fromiter((e.nyquist_rate for e in estimates), np.float64, rows)
        target = np.where(reliable, np.minimum(nyquist * self.headroom, production_rate),
                          production_rate)

        remainder = values[:, cal_stop:]
        rem_m = remainder.shape[1]
        if rem_m >= 2:
            with np.errstate(divide="ignore"):
                raw = np.ceil(reference_rate / target - 1e-12)
            factor_s = np.where(target >= reference_rate, 1,
                                np.maximum(raw, 1)).astype(np.int64)
        else:
            # Too short to resample: the scalar path keeps the remainder
            # as-is at the reference interval.
            factor_s = np.ones(rows, dtype=np.int64)

        samples = np.zeros(rows, dtype=np.int64)
        nrmse = np.zeros(rows)
        max_abs = np.zeros(rows)
        for factor in np.unique(factor_s):
            group = np.nonzero(factor_s == factor)[0]
            steady = remainder[group, ::factor] if rem_m >= 2 else remainder[group]
            steady_interval = interval * factor if rem_m >= 2 else interval
            steady_m = steady.shape[1]
            if steady_m:
                repeat = max(int(round(steady_interval / cal_interval)), 1)
                merged = np.concatenate(
                    [calibration[group], np.repeat(steady, repeat, axis=1)], axis=1)
            else:
                merged = calibration[group]
            if merged.shape[1] < 2:
                raise ValueError(
                    f"policy {self.name!r} collected only {merged.shape[1]} sample(s) "
                    f"per trace ({n} reference samples at {interval:g}s); at least 2 "
                    "are needed to reconstruct")
            reconstructed = reconstruct_batch(merged, cal_interval, reference_rate)
            nrmse[group], max_abs[group] = compare_batch(values[group], reconstructed)
            samples[group] = cal_m + steady_m
        return PolicyBatchEvaluation(
            policy_name=self.name,
            samples_collected=samples,
            mean_sampling_rate=samples / duration,
            nrmse=nrmse,
            max_abs_error=max_abs,
        )


class AdaptiveDualRatePolicy(SamplingPolicy):
    """The §4 dynamic sampling controller wrapped as a policy.

    Parameters
    ----------
    window_duration:
        Adaptation window in seconds (the controller re-evaluates its rate
        once per window).
    config:
        Controller configuration; the initial rate defaults to the
        production rate divided by ``initial_backoff`` so the controller
        has to *earn* its way up via probing rather than starting from the
        over-sampled default.
    """

    def __init__(self, window_duration: float = 6 * 3600.0,
                 config: ControllerConfig | None = None,
                 name: str | None = None) -> None:
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        self.window_duration = window_duration
        self.config = config or ControllerConfig()
        self.name = name or "adaptive-dual-rate"

    def run_controller(self, reference: TimeSeries) -> AdaptiveRun:
        """Run a fresh controller over ``reference`` and return the full record.

        This is the policy's underlying state-machine run, including the
        probe/settle :class:`~repro.core.adaptive.ModeTransition` stream
        (``run.transitions``) that re-probe latency after a regime shift
        is measured from.  :meth:`collect` uses exactly this run, so the
        transitions correspond sample-for-sample to the policy's cost.
        """
        controller = AdaptiveSamplingController(config=self.config)
        return controller.run(reference, self.window_duration)

    def collect(self, reference: TimeSeries) -> PolicyResult:
        run: AdaptiveRun = self.run_controller(reference)
        collected = run.collected_series()
        samples = run.total_samples_collected
        rates = [decision.sampling_rate for decision in run.decisions]
        detail = {
            "windows": float(len(run.decisions)),
            "mean_rate_hz": float(np.mean(rates)) if rates else float("nan"),
            "max_rate_hz": float(np.max(rates)) if rates else float("nan"),
            "min_rate_hz": float(np.min(rates)) if rates else float("nan"),
            "aliased_windows": float(sum(decision.aliased for decision in run.decisions)),
        }
        return self._finish(self.name, reference, collected, samples, detail)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicySuite:
    """Builds the paper's three-policy comparison for one reference interval.

    Fleet surveys evaluate metrics whose production polling rates differ
    (Link util every 30 s, Temperature every 300 s, ...), so the policies
    themselves must be derived per metric rather than fixed up front.  A
    suite is a small picklable recipe the policy survey ships to its
    worker processes: given the interval of a reference trace batch it
    instantiates the fixed-rate baseline, the Nyquist-static policy and
    the adaptive dual-rate controller with rates expressed relative to
    the metric's production rate.

    Attributes
    ----------
    production_oversample:
        How much faster the reference traces are sampled than production
        polls (the ``oversample_factor`` the trace source was built with).
        1.0 means the traces *are* the production stream -- the right
        setting for measured fleets recorded at today's rates.
    calibration_fraction / headroom:
        Passed to :class:`NyquistStaticPolicy`.
    adaptive_window:
        Adaptation window of :class:`AdaptiveDualRatePolicy`, in seconds.
    adaptive_backoff:
        The adaptive controller starts probing at ``production_rate /
        adaptive_backoff`` so it has to earn its way up.
    adaptive_max_rate_factor:
        Rate ceiling of the adaptive controller, as a multiple of the
        production rate.  The default (1.0) holds the controller to
        today's polling rate: the cost comparison of the paper's title is
        about spending *less* than the fixed baseline, so a broadband
        (already-aliased) metric should cost at most what it costs today
        rather than ramping to the full reference rate.  Raise it to let
        the controller probe above production (the §4.1 aliasing hunt).
    """

    production_oversample: float = 1.0
    calibration_fraction: float = 0.25
    headroom: float = 1.2
    adaptive_window: float = 4 * 3600.0
    adaptive_backoff: float = 8.0
    adaptive_max_rate_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.production_oversample < 1:
            raise ValueError("production_oversample must be >= 1")
        if self.adaptive_window <= 0:
            raise ValueError("adaptive_window must be positive")
        if self.adaptive_backoff < 1:
            raise ValueError("adaptive_backoff must be >= 1")
        if self.adaptive_max_rate_factor <= 0:
            raise ValueError("adaptive_max_rate_factor must be positive")

    def build(self, reference_interval: float) -> list[SamplingPolicy]:
        """The three policies for traces sampled every ``reference_interval`` s."""
        if reference_interval <= 0:
            raise ValueError("reference_interval must be positive")
        production_interval = reference_interval * self.production_oversample
        production_rate = 1.0 / production_interval
        return [
            FixedRatePolicy(production_interval, name="fixed"),
            NyquistStaticPolicy(production_interval=production_interval,
                                calibration_fraction=self.calibration_fraction,
                                headroom=self.headroom),
            AdaptiveDualRatePolicy(
                window_duration=self.adaptive_window,
                config=ControllerConfig(
                    initial_rate=production_rate / self.adaptive_backoff,
                    max_rate=production_rate * self.adaptive_max_rate_factor,
                    headroom=self.headroom)),
        ]

    def cache_token(self) -> str:
        """Canonical parameter string for content-addressed record caching."""
        return repr(self)


@dataclass(frozen=True)
class StaticPolicySuite:
    """A fixed set of policies served for every metric, suite-style.

    Wraps an explicit policy list in the :class:`PolicySuite` interface so
    ``run_policy_survey`` can treat "the same policies everywhere" and
    "per-metric policies" uniformly.  The policies must be picklable for
    multi-worker runs (the built-in ones are).
    """

    policies: tuple[SamplingPolicy, ...]

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("need at least one policy")
        names = [policy.name for policy in self.policies]
        if len(set(names)) != len(names):
            raise ValueError("policy names must be unique")

    def build(self, reference_interval: float) -> list[SamplingPolicy]:
        return list(self.policies)

    def cache_token(self) -> str:
        """Canonical parameter string for content-addressed record caching.

        Composed from the per-policy tokens rather than ``repr(self)``:
        plain policy objects repr with memory addresses, which would make
        every run a cache miss.
        """
        tokens = ", ".join(policy.cache_token() for policy in self.policies)
        return f"{type(self).__name__}({tokens})"
