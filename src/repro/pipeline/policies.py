"""Sampling policies: today's fixed-rate polling and the paper's alternatives.

A policy decides which samples of the underlying signal a monitoring system
actually collects.  Three policies are provided:

* :class:`FixedRatePolicy` -- poll at a fixed, ad-hoc rate.  This is
  "today's system" (§3.1): the rate is whatever the operator configured.
* :class:`NyquistStaticPolicy` -- spend a calibration prefix measuring at
  the production rate, estimate the Nyquist rate with the §3.2 method once,
  then poll at that rate (plus headroom) for the rest of the trace.
* :class:`AdaptiveDualRatePolicy` -- the §4 dynamic controller: probe with
  dual-frequency sampling, detect aliasing, settle at the Nyquist rate and
  keep adapting.

Every policy returns a :class:`PolicyResult` containing the samples it
collected, a reconstruction of the full-rate signal (the paper's low-pass
interpolator) and bookkeeping for cost accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.adaptive import AdaptiveRun, AdaptiveSamplingController, ControllerConfig
from ..core.nyquist import NyquistEstimator
from ..core.reconstruction import reconstruct
from ..core.resampling import resample_to_rate
from ..signals.timeseries import TimeSeries

__all__ = ["PolicyResult", "SamplingPolicy", "FixedRatePolicy",
           "NyquistStaticPolicy", "AdaptiveDualRatePolicy"]


@dataclass(frozen=True)
class PolicyResult:
    """What a sampling policy produced for one measurement point."""

    policy_name: str
    samples_collected: int
    collected: TimeSeries
    reconstructed: TimeSeries
    mean_sampling_rate: float
    detail: dict[str, float]

    @property
    def samples_per_hour(self) -> float:
        duration = self.reconstructed.duration
        if duration <= 0:
            return float("nan")
        return self.samples_collected / (duration / 3600.0)


class SamplingPolicy(abc.ABC):
    """Interface every sampling policy implements."""

    #: Human-readable policy name used in reports.
    name: str = "policy"

    @abc.abstractmethod
    def collect(self, reference: TimeSeries) -> PolicyResult:
        """Collect samples from the underlying signal ``reference``.

        ``reference`` is a high-rate trace standing in for the continuous
        underlying metric; a policy may only *read* the samples it decides
        to collect, and its ``samples_collected`` must reflect every sample
        it read (including probe traffic).
        """

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(name: str, reference: TimeSeries, collected: TimeSeries,
                samples_collected: int, detail: dict[str, float] | None = None) -> PolicyResult:
        """Shared epilogue: reconstruct at the reference rate and bundle the result."""
        if len(collected) >= 2:
            reconstructed = reconstruct(collected, reference.sampling_rate)
        else:
            # Degenerate case: a single sample reconstructs to a constant.
            value = collected.values[0] if len(collected) else 0.0
            reconstructed = reference.with_values(np.full(len(reference), value))
        duration = reference.duration
        mean_rate = samples_collected / duration if duration > 0 else float("nan")
        return PolicyResult(
            policy_name=name,
            samples_collected=samples_collected,
            collected=collected,
            reconstructed=reconstructed,
            mean_sampling_rate=mean_rate,
            detail=dict(detail or {}),
        )


class FixedRatePolicy(SamplingPolicy):
    """Poll at a fixed rate -- the ad-hoc baseline of §3.1.

    Parameters
    ----------
    interval:
        Polling interval in seconds (e.g. the production default for the
        metric).
    """

    def __init__(self, interval: float, name: str | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.name = name or f"fixed@{interval:g}s"

    def collect(self, reference: TimeSeries) -> PolicyResult:
        rate = min(1.0 / self.interval, reference.sampling_rate)
        collected = resample_to_rate(reference, rate, anti_alias=False)
        return self._finish(self.name, reference, collected, len(collected),
                            detail={"rate_hz": rate})


class NyquistStaticPolicy(SamplingPolicy):
    """Calibrate once with the §3.2 estimator, then poll at the Nyquist rate.

    Parameters
    ----------
    production_interval:
        Interval used during the calibration prefix (today's rate).
    calibration_fraction:
        Fraction of the trace spent calibrating at the production rate.
    headroom:
        Multiplier (>= 1) applied to the estimated rate before polling.
    """

    def __init__(self, production_interval: float, calibration_fraction: float = 0.25,
                 headroom: float = 1.2, estimator: NyquistEstimator | None = None,
                 name: str | None = None) -> None:
        if production_interval <= 0:
            raise ValueError("production_interval must be positive")
        if not 0 < calibration_fraction < 1:
            raise ValueError("calibration_fraction must be in (0, 1)")
        if headroom < 1:
            raise ValueError("headroom must be >= 1")
        self.production_interval = production_interval
        self.calibration_fraction = calibration_fraction
        self.headroom = headroom
        self.estimator = estimator or NyquistEstimator()
        self.name = name or "nyquist-static"

    def collect(self, reference: TimeSeries) -> PolicyResult:
        production_rate = min(1.0 / self.production_interval, reference.sampling_rate)
        split_time = reference.start_time + reference.duration * self.calibration_fraction
        calibration_window = reference.window(reference.start_time, split_time)
        remainder_window = reference.window(split_time, reference.end_time)

        calibration = resample_to_rate(calibration_window, production_rate, anti_alias=False)
        estimate = self.estimator.estimate(calibration) if len(calibration) >= 2 else None

        if estimate is not None and estimate.reliable:
            target_rate = min(estimate.nyquist_rate * self.headroom, production_rate)
        else:
            # Calibration could not produce a usable rate: fall back to the
            # production rate (no saving, no loss).
            target_rate = production_rate
        steady = resample_to_rate(remainder_window, target_rate, anti_alias=False) \
            if len(remainder_window) >= 2 else remainder_window

        # The calibration prefix and the steady-state suffix were collected
        # at different rates; merge them into one stream at the finest
        # common interval (the calibration interval) for reconstruction.
        if len(steady):
            repeat = max(int(round(steady.interval / calibration.interval)), 1)
            merged_values = np.concatenate([calibration.values,
                                            np.repeat(steady.values, repeat)])
        else:
            merged_values = calibration.values
        collected = TimeSeries(merged_values, calibration.interval,
                               start_time=reference.start_time, name=reference.name)

        samples = len(calibration) + len(steady)
        detail = {
            "calibration_samples": float(len(calibration)),
            "steady_samples": float(len(steady)),
            "target_rate_hz": float(target_rate),
            "nyquist_rate_hz": float(estimate.nyquist_rate) if estimate and estimate.reliable else float("nan"),
        }
        return self._finish(self.name, reference, collected, samples, detail)


class AdaptiveDualRatePolicy(SamplingPolicy):
    """The §4 dynamic sampling controller wrapped as a policy.

    Parameters
    ----------
    window_duration:
        Adaptation window in seconds (the controller re-evaluates its rate
        once per window).
    config:
        Controller configuration; the initial rate defaults to the
        production rate divided by ``initial_backoff`` so the controller
        has to *earn* its way up via probing rather than starting from the
        over-sampled default.
    """

    def __init__(self, window_duration: float = 6 * 3600.0,
                 config: ControllerConfig | None = None,
                 name: str | None = None) -> None:
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        self.window_duration = window_duration
        self.config = config or ControllerConfig()
        self.name = name or "adaptive-dual-rate"

    def collect(self, reference: TimeSeries) -> PolicyResult:
        controller = AdaptiveSamplingController(config=self.config)
        run: AdaptiveRun = controller.run(reference, self.window_duration)
        collected = run.collected_series()
        samples = run.total_samples_collected
        rates = [decision.sampling_rate for decision in run.decisions]
        detail = {
            "windows": float(len(run.decisions)),
            "mean_rate_hz": float(np.mean(rates)) if rates else float("nan"),
            "max_rate_hz": float(np.max(rates)) if rates else float("nan"),
            "min_rate_hz": float(np.min(rates)) if rates else float("nan"),
            "aliased_windows": float(sum(decision.aliased for decision in run.decisions)),
        }
        return self._finish(self.name, reference, collected, samples, detail)
