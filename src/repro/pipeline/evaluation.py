"""Cost-vs-quality evaluation of sampling policies.

This is the experiment behind the paper's title: for each sampling policy,
what does monitoring cost (samples collected, bytes moved and stored) and
what quality do we get back (reconstruction fidelity, event-detection
latency)?  The evaluator runs a set of policies over a set of measurement
points, prices every policy with the network cost model, and produces one
comparable row per policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.errors import compare
from ..network.cost import CostBreakdown, TelemetryCostAccountant
from ..signals.timeseries import TimeSeries
from .events import DetectionOutcome, InjectedEvent, ThresholdDetector, score_detection
from .policies import PolicyResult, SamplingPolicy

__all__ = ["PointEvaluation", "PolicySummary", "CostQualityEvaluator"]


@dataclass(frozen=True)
class PointEvaluation:
    """One (policy, measurement point) outcome."""

    policy_name: str
    point_name: str
    metric_name: str
    samples_collected: int
    cost: CostBreakdown
    nrmse: float
    max_abs_error: float
    detection: DetectionOutcome | None

    @property
    def detected(self) -> bool | None:
        return None if self.detection is None else self.detection.detected


@dataclass
class PolicySummary:
    """Aggregate cost and quality of one policy across all evaluated points."""

    policy_name: str
    evaluations: list[PointEvaluation] = field(default_factory=list)

    @property
    def total_samples(self) -> int:
        return sum(entry.samples_collected for entry in self.evaluations)

    @property
    def total_cost(self) -> CostBreakdown:
        total = CostBreakdown()
        for entry in self.evaluations:
            total.add(entry.cost)
        return total

    @property
    def mean_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.mean(values)) if values else float("nan")

    @property
    def worst_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.max(values)) if values else float("nan")

    @property
    def detection_rate(self) -> float:
        scored = [entry for entry in self.evaluations if entry.detection is not None]
        if not scored:
            return float("nan")
        return float(np.mean([entry.detection.detected for entry in scored]))

    @property
    def mean_detection_latency(self) -> float:
        latencies = [entry.detection.latency for entry in self.evaluations
                     if entry.detection is not None and entry.detection.detected]
        return float(np.mean(latencies)) if latencies else float("nan")

    def as_row(self) -> dict[str, float | str]:
        """Flat row for tables / CSV export."""
        cost = self.total_cost
        return {
            "policy": self.policy_name,
            "points": float(len(self.evaluations)),
            "samples": float(self.total_samples),
            "total_cost": cost.total,
            "storage_bytes": cost.storage_bytes,
            "transmission": cost.transmission,
            "mean_nrmse": self.mean_nrmse,
            "worst_nrmse": self.worst_nrmse,
            "detection_rate": self.detection_rate,
            "mean_detection_latency_s": self.mean_detection_latency,
        }


class CostQualityEvaluator:
    """Run several sampling policies over the same measurement points and compare them."""

    def __init__(self, policies: Sequence[SamplingPolicy],
                 accountant: TelemetryCostAccountant | None = None,
                 detector: ThresholdDetector | None = None) -> None:
        if not policies:
            raise ValueError("need at least one policy")
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ValueError("policy names must be unique")
        self.policies = list(policies)
        self.accountant = accountant or TelemetryCostAccountant()
        self.detector = detector or ThresholdDetector()
        self.summaries: dict[str, PolicySummary] = {
            policy.name: PolicySummary(policy.name) for policy in self.policies}

    # ------------------------------------------------------------------
    def evaluate_point(self, point_name: str, metric_name: str, reference: TimeSeries,
                       event: InjectedEvent | None = None) -> list[PointEvaluation]:
        """Run every policy on one measurement point's reference trace."""
        results = []
        for policy in self.policies:
            outcome: PolicyResult = policy.collect(reference)
            error = compare(reference, outcome.reconstructed)
            cost = self.accountant.price_samples(point_name, outcome.samples_collected)
            detection = None
            if event is not None:
                detection = score_detection(policy.name, outcome.collected, event,
                                            detector=self.detector)
            evaluation = PointEvaluation(
                policy_name=policy.name,
                point_name=point_name,
                metric_name=metric_name,
                samples_collected=outcome.samples_collected,
                cost=cost,
                nrmse=error.nrmse,
                max_abs_error=error.max_abs,
                detection=detection,
            )
            self.summaries[policy.name].evaluations.append(evaluation)
            results.append(evaluation)
        return results

    def rows(self) -> list[dict[str, float | str]]:
        """One aggregate row per policy (in the order policies were given)."""
        return [self.summaries[policy.name].as_row() for policy in self.policies]

    def relative_costs(self, baseline_policy: str) -> dict[str, float]:
        """Total cost of each policy relative to ``baseline_policy``."""
        if baseline_policy not in self.summaries:
            raise KeyError(f"unknown policy {baseline_policy!r}")
        baseline = self.summaries[baseline_policy].total_cost.total
        result = {}
        for name, summary in self.summaries.items():
            total = summary.total_cost.total
            result[name] = total / baseline if baseline else float("nan")
        return result
