"""Cost-vs-quality evaluation of sampling policies.

This is the experiment behind the paper's title: for each sampling policy,
what does monitoring cost (samples collected, bytes moved and stored) and
what quality do we get back (reconstruction fidelity, event-detection
latency)?

Outcomes are stored columnarly: every evaluated (policy, measurement
point) row lands in a :class:`PolicyRecordBlock` -- a struct-of-arrays
chunk behind the shared :class:`~repro.records.RecordSink` abstraction --
so fleet-scale runs stream their results to disk
(:class:`~repro.records.SpillingRecordSink`) and aggregate with vectorised
numpy reductions, exactly like the Nyquist survey's
:class:`~repro.analysis.survey.RecordBlock`.  :class:`PointEvaluation`
remains as a lazily materialised per-row view.

Two drivers feed these blocks:

* :class:`CostQualityEvaluator` -- the per-point driver: runs every policy
  on one reference trace at a time, scores injected-event detection, and
  keeps the classic ``summaries`` / ``rows`` reporting surface.
* :func:`repro.analysis.policy_survey.run_policy_survey` -- the
  fleet-scale driver: batched policy evaluation over any trace source,
  priced with the same accountant, multi-worker and out-of-core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.errors import compare
from ..network.cost import CostBreakdown, TelemetryCostAccountant
from ..records import (BlockSchema, ColumnarBlock, ColumnSpec, MemoryRecordSink,
                       RecordSink, ScalarSpec, register_block_type)
from ..signals.timeseries import TimeSeries
from .events import DetectionOutcome, InjectedEvent, ThresholdDetector, score_detection
from .policies import PolicyBatchEvaluation, PolicyResult, SamplingPolicy

__all__ = ["PointEvaluation", "PolicyRecordBlock", "PolicySummary",
           "CostQualityEvaluator"]


@dataclass(frozen=True)
class PointEvaluation:
    """One (policy, measurement point) outcome.

    A per-row *view*: evaluations are stored columnarly in
    :class:`PolicyRecordBlock` arrays and materialised into these objects
    on demand.
    """

    policy_name: str
    point_name: str
    metric_name: str
    samples_collected: int
    cost: CostBreakdown
    nrmse: float
    max_abs_error: float
    detection: DetectionOutcome | None

    @property
    def detected(self) -> bool | None:
        return None if self.detection is None else self.detection.detected


#: Codes of the int8 ``detected`` column.
DETECTION_UNSCORED: int = -1
DETECTION_MISSED: int = 0
DETECTION_DETECTED: int = 1


@register_block_type
@dataclass(frozen=True)
class PolicyRecordBlock(ColumnarBlock):
    """Struct-of-arrays storage for one chunk of policy-evaluation outcomes.

    All rows belong to one (metric, policy) pair -- chunks are produced
    per metric batch and per policy by both the per-point evaluator and
    the fleet policy survey -- so both names are block-level scalars.
    Rows carry the evaluated measurement point (``device_ids``), the
    policy's collection volume and achieved rate, the reconstruction
    error, the priced cost components (hop-weighted transmission
    included), and the optional event-detection outcome.  Blocks are the
    unit of spilling: each round-trips losslessly through ``.npz`` or
    ``.csv`` behind the sink layer of :mod:`repro.records`, with the
    layout (and hence the on-disk format) declared once in ``_SCHEMA``.
    """

    _SCHEMA = BlockSchema(
        scalars=(ScalarSpec("metric_name", "metric"),
                 ScalarSpec("policy_name", "policy")),
        columns=(
            ColumnSpec("device_ids", "str", csv_name="device_id"),
            ColumnSpec("samples", "int"),
            ColumnSpec("mean_rate_hz", "float"),
            ColumnSpec("nrmse", "float"),
            ColumnSpec("max_abs_error", "float"),
            ColumnSpec("hops", "int"),
            ColumnSpec("collection_cpu_us", "float"),
            ColumnSpec("transmission", "float"),
            ColumnSpec("storage_bytes", "float"),
            ColumnSpec("analysis", "float"),
            ColumnSpec("detected", "int8"),
            ColumnSpec("detection_latency", "float"),
        ))

    metric_name: str
    policy_name: str
    device_ids: np.ndarray
    samples: np.ndarray
    mean_rate_hz: np.ndarray
    nrmse: np.ndarray
    max_abs_error: np.ndarray
    hops: np.ndarray
    collection_cpu_us: np.ndarray
    transmission: np.ndarray
    storage_bytes: np.ndarray
    analysis: np.ndarray
    detected: np.ndarray
    detection_latency: np.ndarray

    @property
    def total_cost(self) -> np.ndarray:
        """Per-row unit-weighted cost total (the :attr:`CostBreakdown.total` sum)."""
        return (self.collection_cpu_us + self.transmission
                + self.storage_bytes + self.analysis)

    # ------------------------------------------------------------------
    @classmethod
    def from_batch(cls, metric_name: str, evaluation: PolicyBatchEvaluation,
                   device_ids: Sequence[str],
                   priced: dict[str, np.ndarray]) -> "PolicyRecordBlock":
        """Assemble a block from one batched policy evaluation plus its pricing.

        ``priced`` is the column dict of
        :meth:`~repro.network.cost.TelemetryCostAccountant.price_sample_block`
        for the same rows.  Detection columns default to "not scored" (the
        fleet survey evaluates reconstruction cost/quality; event scoring
        is the per-point evaluator's job).
        """
        rows = len(evaluation)
        return cls(
            metric_name=metric_name,
            policy_name=evaluation.policy_name,
            device_ids=np.array(list(device_ids), dtype=np.str_),
            samples=evaluation.samples_collected,
            mean_rate_hz=evaluation.mean_sampling_rate,
            nrmse=evaluation.nrmse,
            max_abs_error=evaluation.max_abs_error,
            hops=priced["hops"],
            collection_cpu_us=priced["collection_cpu_us"],
            transmission=priced["transmission"],
            storage_bytes=priced["storage_bytes"],
            analysis=priced["analysis"],
            detected=np.full(rows, DETECTION_UNSCORED, dtype=np.int8),
            detection_latency=np.full(rows, np.nan),
        )

    def to_evaluations(self) -> Iterator[PointEvaluation]:
        """Materialise one :class:`PointEvaluation` view per row."""
        for index in range(len(self)):
            code = int(self.detected[index])
            detection = None
            if code != DETECTION_UNSCORED:
                detection = DetectionOutcome(
                    policy_name=self.policy_name,
                    detected=code == DETECTION_DETECTED,
                    latency=float(self.detection_latency[index]),
                )
            yield PointEvaluation(
                policy_name=self.policy_name,
                point_name=str(self.device_ids[index]),
                metric_name=self.metric_name,
                samples_collected=int(self.samples[index]),
                cost=CostBreakdown(
                    samples=int(self.samples[index]),
                    collection_cpu_us=float(self.collection_cpu_us[index]),
                    transmission=float(self.transmission[index]),
                    storage_bytes=float(self.storage_bytes[index]),
                    analysis=float(self.analysis[index]),
                ),
                nrmse=float(self.nrmse[index]),
                max_abs_error=float(self.max_abs_error[index]),
                detection=detection,
            )

@dataclass
class PolicySummary:
    """Aggregate cost and quality of one policy across all evaluated points."""

    policy_name: str
    evaluations: list[PointEvaluation] = field(default_factory=list)

    @property
    def total_samples(self) -> int:
        return sum(entry.samples_collected for entry in self.evaluations)

    @property
    def total_cost(self) -> CostBreakdown:
        total = CostBreakdown()
        for entry in self.evaluations:
            total.add(entry.cost)
        return total

    @property
    def mean_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.mean(values)) if values else float("nan")

    @property
    def worst_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.max(values)) if values else float("nan")

    @property
    def detection_rate(self) -> float:
        scored = [entry for entry in self.evaluations if entry.detection is not None]
        if not scored:
            return float("nan")
        return float(np.mean([entry.detection.detected for entry in scored]))

    @property
    def mean_detection_latency(self) -> float:
        latencies = [entry.detection.latency for entry in self.evaluations
                     if entry.detection is not None and entry.detection.detected]
        return float(np.mean(latencies)) if latencies else float("nan")

    def as_row(self) -> dict[str, float | str]:
        """Flat row for tables / CSV export."""
        cost = self.total_cost
        return {
            "policy": self.policy_name,
            "points": float(len(self.evaluations)),
            "samples": float(self.total_samples),
            "total_cost": cost.total,
            "storage_bytes": cost.storage_bytes,
            "transmission": cost.transmission,
            "mean_nrmse": self.mean_nrmse,
            "worst_nrmse": self.worst_nrmse,
            "detection_rate": self.detection_rate,
            "mean_detection_latency_s": self.mean_detection_latency,
        }


class CostQualityEvaluator:
    """Run several sampling policies over the same measurement points and compare them.

    Every evaluated (policy, point) row is appended to a
    :class:`PolicyRecordBlock` behind ``sink`` (in-memory by default; pass
    a :class:`~repro.records.SpillingRecordSink` to stream rows to disk).
    ``summaries`` and ``rows`` are views over that columnar store.
    """

    def __init__(self, policies: Sequence[SamplingPolicy],
                 accountant: TelemetryCostAccountant | None = None,
                 detector: ThresholdDetector | None = None,
                 sink: RecordSink | None = None) -> None:
        if not policies:
            raise ValueError("need at least one policy")
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ValueError("policy names must be unique")
        self.policies = list(policies)
        self.accountant = accountant or TelemetryCostAccountant()
        self.detector = detector or ThresholdDetector()
        self._sink = sink if sink is not None else MemoryRecordSink()
        self._summaries_cache: tuple[int, dict[str, PolicySummary]] | None = None

    # ------------------------------------------------------------------
    @property
    def sink(self) -> RecordSink:
        return self._sink

    def iter_blocks(self) -> Iterator[PolicyRecordBlock]:
        """Stream the stored columnar chunks in evaluation order."""
        return self._sink.blocks()

    def evaluate_point(self, point_name: str, metric_name: str, reference: TimeSeries,
                       event: InjectedEvent | None = None) -> list[PointEvaluation]:
        """Run every policy on one measurement point's reference trace."""
        results = []
        for policy in self.policies:
            outcome: PolicyResult = policy.collect(reference)
            error = compare(reference, outcome.reconstructed)
            cost = self.accountant.price_samples(point_name, outcome.samples_collected)
            detection = None
            if event is not None:
                detection = score_detection(policy.name, outcome.collected, event,
                                            detector=self.detector)
            if detection is None:
                detected_code, latency = DETECTION_UNSCORED, float("nan")
            elif detection.detected:
                detected_code, latency = DETECTION_DETECTED, detection.latency
            else:
                detected_code, latency = DETECTION_MISSED, detection.latency
            block = PolicyRecordBlock(
                metric_name=metric_name,
                policy_name=policy.name,
                device_ids=np.array([point_name], dtype=np.str_),
                samples=np.array([outcome.samples_collected], dtype=np.int64),
                mean_rate_hz=np.array([outcome.mean_sampling_rate]),
                nrmse=np.array([error.nrmse]),
                max_abs_error=np.array([error.max_abs]),
                hops=np.array([self.accountant.hops(point_name)], dtype=np.int64),
                collection_cpu_us=np.array([cost.collection_cpu_us]),
                transmission=np.array([cost.transmission]),
                storage_bytes=np.array([cost.storage_bytes]),
                analysis=np.array([cost.analysis]),
                detected=np.array([detected_code], dtype=np.int8),
                detection_latency=np.array([latency]),
            )
            self._sink.append(block)
            results.extend(block.to_evaluations())
        return results

    # ------------------------------------------------------------------
    @property
    def summaries(self) -> dict[str, PolicySummary]:
        """Per-policy summaries, materialised from the columnar store.

        Cached per sink state: the (possibly spilled) blocks are only
        re-read after new evaluations land, so repeated reporting calls
        (``rows``, ``relative_costs``, direct ``summaries`` access) do
        not re-stream a spill directory each time.
        """
        if self._summaries_cache is not None and \
                self._summaries_cache[0] == self._sink.rows:
            return self._summaries_cache[1]
        summaries = {policy.name: PolicySummary(policy.name) for policy in self.policies}
        for block in self._sink.blocks():
            summary = summaries.get(block.policy_name)
            if summary is None:  # pragma: no cover - foreign blocks in a reused sink
                summary = summaries.setdefault(block.policy_name,
                                               PolicySummary(block.policy_name))
            summary.evaluations.extend(block.to_evaluations())
        self._summaries_cache = (self._sink.rows, summaries)
        return summaries

    def rows(self) -> list[dict[str, float | str]]:
        """One aggregate row per policy (in the order policies were given)."""
        summaries = self.summaries
        return [summaries[policy.name].as_row() for policy in self.policies]

    def relative_costs(self, baseline_policy: str) -> dict[str, float]:
        """Total cost of each policy relative to ``baseline_policy``.

        Raises :class:`ValueError` when the baseline's total cost is zero
        (e.g. no points evaluated yet, or a zero cost model): dividing by
        it would silently turn every relative cost into ``nan`` and
        propagate through reports.
        """
        summaries = self.summaries
        if baseline_policy not in summaries:
            raise KeyError(f"unknown policy {baseline_policy!r}")
        baseline = summaries[baseline_policy].total_cost.total
        if baseline == 0:
            raise ValueError(
                f"baseline policy {baseline_policy!r} has zero total cost "
                f"({len(summaries[baseline_policy].evaluations)} points evaluated); "
                "relative costs are undefined")
        return {name: summary.total_cost.total / baseline
                for name, summary in summaries.items()}
