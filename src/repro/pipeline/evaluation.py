"""Cost-vs-quality evaluation of sampling policies.

This is the experiment behind the paper's title: for each sampling policy,
what does monitoring cost (samples collected, bytes moved and stored) and
what quality do we get back (reconstruction fidelity, event-detection
latency)?

Outcomes are stored columnarly: every evaluated (policy, measurement
point) row lands in a :class:`PolicyRecordBlock` -- a struct-of-arrays
chunk behind the shared :class:`~repro.records.RecordSink` abstraction --
so fleet-scale runs stream their results to disk
(:class:`~repro.records.SpillingRecordSink`) and aggregate with vectorised
numpy reductions, exactly like the Nyquist survey's
:class:`~repro.analysis.survey.RecordBlock`.  :class:`PointEvaluation`
remains as a lazily materialised per-row view.

Two drivers feed these blocks:

* :class:`CostQualityEvaluator` -- the per-point driver: runs every policy
  on one reference trace at a time, scores injected-event detection, and
  keeps the classic ``summaries`` / ``rows`` reporting surface.
* :func:`repro.analysis.policy_survey.run_policy_survey` -- the
  fleet-scale driver: batched policy evaluation over any trace source,
  priced with the same accountant, multi-worker and out-of-core.
"""

from __future__ import annotations

import csv
import math
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..core.errors import compare
from ..network.cost import CostBreakdown, TelemetryCostAccountant
from ..records import MemoryRecordSink, RecordSink, register_block_type
from ..signals.timeseries import TimeSeries
from .events import DetectionOutcome, InjectedEvent, ThresholdDetector, score_detection
from .policies import PolicyBatchEvaluation, PolicyResult, SamplingPolicy

__all__ = ["PointEvaluation", "PolicyRecordBlock", "PolicySummary",
           "CostQualityEvaluator"]


@dataclass(frozen=True)
class PointEvaluation:
    """One (policy, measurement point) outcome.

    A per-row *view*: evaluations are stored columnarly in
    :class:`PolicyRecordBlock` arrays and materialised into these objects
    on demand.
    """

    policy_name: str
    point_name: str
    metric_name: str
    samples_collected: int
    cost: CostBreakdown
    nrmse: float
    max_abs_error: float
    detection: DetectionOutcome | None

    @property
    def detected(self) -> bool | None:
        return None if self.detection is None else self.detection.detected


#: Column name -> per-row float64 arrays of a PolicyRecordBlock.
_FLOAT_COLUMNS = ("mean_rate_hz", "nrmse", "max_abs_error", "collection_cpu_us",
                  "transmission", "storage_bytes", "analysis", "detection_latency")

#: Codes of the int8 ``detected`` column.
DETECTION_UNSCORED: int = -1
DETECTION_MISSED: int = 0
DETECTION_DETECTED: int = 1


@register_block_type
@dataclass(frozen=True)
class PolicyRecordBlock:
    """Struct-of-arrays storage for one chunk of policy-evaluation outcomes.

    All rows belong to one (metric, policy) pair -- chunks are produced
    per metric batch and per policy by both the per-point evaluator and
    the fleet policy survey -- so both names are block-level scalars.
    Rows carry the evaluated measurement point (``device_ids``), the
    policy's collection volume and achieved rate, the reconstruction
    error, the priced cost components (hop-weighted transmission
    included), and the optional event-detection outcome.  Blocks are the
    unit of spilling: each round-trips losslessly through ``.npz`` or
    ``.csv`` behind the sink layer of :mod:`repro.records`.
    """

    metric_name: str
    policy_name: str
    device_ids: np.ndarray
    samples: np.ndarray
    mean_rate_hz: np.ndarray
    nrmse: np.ndarray
    max_abs_error: np.ndarray
    hops: np.ndarray
    collection_cpu_us: np.ndarray
    transmission: np.ndarray
    storage_bytes: np.ndarray
    analysis: np.ndarray
    detected: np.ndarray
    detection_latency: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "device_ids", np.asarray(self.device_ids, dtype=np.str_))
        object.__setattr__(self, "samples", np.asarray(self.samples, dtype=np.int64))
        object.__setattr__(self, "hops", np.asarray(self.hops, dtype=np.int64))
        object.__setattr__(self, "detected", np.asarray(self.detected, dtype=np.int8))
        for column in _FLOAT_COLUMNS:
            object.__setattr__(self, column,
                               np.asarray(getattr(self, column), dtype=np.float64))
        rows = self.device_ids.shape[0]
        for column in ("samples", "hops", "detected", *_FLOAT_COLUMNS):
            array = getattr(self, column)
            if array.ndim != 1 or array.shape[0] != rows:
                raise ValueError(f"column {column!r} must be 1-D with {rows} rows, "
                                 f"got shape {array.shape}")

    def __len__(self) -> int:
        return int(self.device_ids.shape[0])

    @property
    def total_cost(self) -> np.ndarray:
        """Per-row unit-weighted cost total (the :attr:`CostBreakdown.total` sum)."""
        return (self.collection_cpu_us + self.transmission
                + self.storage_bytes + self.analysis)

    # ------------------------------------------------------------------
    @classmethod
    def from_batch(cls, metric_name: str, evaluation: PolicyBatchEvaluation,
                   device_ids: Sequence[str],
                   priced: dict[str, np.ndarray]) -> "PolicyRecordBlock":
        """Assemble a block from one batched policy evaluation plus its pricing.

        ``priced`` is the column dict of
        :meth:`~repro.network.cost.TelemetryCostAccountant.price_sample_block`
        for the same rows.  Detection columns default to "not scored" (the
        fleet survey evaluates reconstruction cost/quality; event scoring
        is the per-point evaluator's job).
        """
        rows = len(evaluation)
        return cls(
            metric_name=metric_name,
            policy_name=evaluation.policy_name,
            device_ids=np.array(list(device_ids), dtype=np.str_),
            samples=evaluation.samples_collected,
            mean_rate_hz=evaluation.mean_sampling_rate,
            nrmse=evaluation.nrmse,
            max_abs_error=evaluation.max_abs_error,
            hops=priced["hops"],
            collection_cpu_us=priced["collection_cpu_us"],
            transmission=priced["transmission"],
            storage_bytes=priced["storage_bytes"],
            analysis=priced["analysis"],
            detected=np.full(rows, DETECTION_UNSCORED, dtype=np.int8),
            detection_latency=np.full(rows, np.nan),
        )

    def to_evaluations(self) -> Iterator[PointEvaluation]:
        """Materialise one :class:`PointEvaluation` view per row."""
        for index in range(len(self)):
            code = int(self.detected[index])
            detection = None
            if code != DETECTION_UNSCORED:
                detection = DetectionOutcome(
                    policy_name=self.policy_name,
                    detected=code == DETECTION_DETECTED,
                    latency=float(self.detection_latency[index]),
                )
            yield PointEvaluation(
                policy_name=self.policy_name,
                point_name=str(self.device_ids[index]),
                metric_name=self.metric_name,
                samples_collected=int(self.samples[index]),
                cost=CostBreakdown(
                    samples=int(self.samples[index]),
                    collection_cpu_us=float(self.collection_cpu_us[index]),
                    transmission=float(self.transmission[index]),
                    storage_bytes=float(self.storage_bytes[index]),
                    analysis=float(self.analysis[index]),
                ),
                nrmse=float(self.nrmse[index]),
                max_abs_error=float(self.max_abs_error[index]),
                detection=detection,
            )

    # ------------------------- disk round trip -------------------------
    def save_npz(self, path: Path) -> None:
        np.savez_compressed(
            path, metric_name=np.array(self.metric_name),
            policy_name=np.array(self.policy_name), device_ids=self.device_ids,
            samples=self.samples, mean_rate_hz=self.mean_rate_hz, nrmse=self.nrmse,
            max_abs_error=self.max_abs_error, hops=self.hops,
            collection_cpu_us=self.collection_cpu_us, transmission=self.transmission,
            storage_bytes=self.storage_bytes, analysis=self.analysis,
            detected=self.detected, detection_latency=self.detection_latency)

    @classmethod
    def load_npz(cls, path: Path) -> "PolicyRecordBlock":
        try:
            with np.load(path) as data:
                return cls(metric_name=str(data["metric_name"]),
                           policy_name=str(data["policy_name"]),
                           device_ids=data["device_ids"], samples=data["samples"],
                           mean_rate_hz=data["mean_rate_hz"], nrmse=data["nrmse"],
                           max_abs_error=data["max_abs_error"], hops=data["hops"],
                           collection_cpu_us=data["collection_cpu_us"],
                           transmission=data["transmission"],
                           storage_bytes=data["storage_bytes"],
                           analysis=data["analysis"], detected=data["detected"],
                           detection_latency=data["detection_latency"])
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as error:
            raise ValueError(
                f"corrupt or truncated record file {path}: {error}") from error

    _CSV_HEADER = ("metric_name", "policy_name", "device_id", "samples",
                   "mean_rate_hz", "nrmse", "max_abs_error", "hops",
                   "collection_cpu_us", "transmission", "storage_bytes", "analysis",
                   "detected", "detection_latency")

    #: Comment lines carrying the block-level scalars, so zero-row blocks
    #: round-trip through csv without losing them.
    _CSV_METRIC_PREFIX = "# metric="
    _CSV_POLICY_PREFIX = "# policy="

    def save_csv(self, path: Path) -> None:
        with path.open("w", newline="") as handle:
            handle.write(f"{self._CSV_METRIC_PREFIX}{self.metric_name}\n")
            handle.write(f"{self._CSV_POLICY_PREFIX}{self.policy_name}\n")
            writer = csv.writer(handle)
            writer.writerow(self._CSV_HEADER)
            for index in range(len(self)):
                writer.writerow([
                    self.metric_name, self.policy_name, str(self.device_ids[index]),
                    int(self.samples[index]),
                    repr(float(self.mean_rate_hz[index])),
                    repr(float(self.nrmse[index])),
                    repr(float(self.max_abs_error[index])),
                    int(self.hops[index]),
                    repr(float(self.collection_cpu_us[index])),
                    repr(float(self.transmission[index])),
                    repr(float(self.storage_bytes[index])),
                    repr(float(self.analysis[index])),
                    int(self.detected[index]),
                    repr(float(self.detection_latency[index])),
                ])

    @classmethod
    def load_csv(cls, path: Path) -> "PolicyRecordBlock":
        metric_name = policy_name = ""
        columns: dict[str, list] = {name: [] for name in cls._CSV_HEADER[2:]}
        with path.open(newline="") as handle:
            line = handle.readline()
            if not line.strip():
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 "missing CSV header")
            if line.startswith(cls._CSV_METRIC_PREFIX):
                metric_name = line[len(cls._CSV_METRIC_PREFIX):].rstrip("\r\n")
                line = handle.readline()
            if line.startswith(cls._CSV_POLICY_PREFIX):
                policy_name = line[len(cls._CSV_POLICY_PREFIX):].rstrip("\r\n")
                line = handle.readline()
            if line.rstrip("\r\n").split(",") != list(cls._CSV_HEADER):
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 f"unexpected CSV header {line.rstrip()!r}")
            reader = csv.reader(handle)
            for line_number, row in enumerate(reader, start=1):
                try:
                    metric_name = row[0]
                    policy_name = row[1]
                    columns["device_id"].append(row[2])
                    columns["samples"].append(int(row[3]))
                    columns["mean_rate_hz"].append(float(row[4]))
                    columns["nrmse"].append(float(row[5]))
                    columns["max_abs_error"].append(float(row[6]))
                    columns["hops"].append(int(row[7]))
                    columns["collection_cpu_us"].append(float(row[8]))
                    columns["transmission"].append(float(row[9]))
                    columns["storage_bytes"].append(float(row[10]))
                    columns["analysis"].append(float(row[11]))
                    columns["detected"].append(int(row[12]))
                    columns["detection_latency"].append(float(row[13]))
                except (IndexError, ValueError) as error:
                    raise ValueError(f"corrupt or truncated record file {path}, "
                                     f"data row {line_number}: {error}") from error
        return cls(metric_name=metric_name, policy_name=policy_name,
                   device_ids=np.array(columns["device_id"], dtype=np.str_),
                   samples=columns["samples"], mean_rate_hz=columns["mean_rate_hz"],
                   nrmse=columns["nrmse"], max_abs_error=columns["max_abs_error"],
                   hops=columns["hops"],
                   collection_cpu_us=columns["collection_cpu_us"],
                   transmission=columns["transmission"],
                   storage_bytes=columns["storage_bytes"], analysis=columns["analysis"],
                   detected=columns["detected"],
                   detection_latency=columns["detection_latency"])

    # ---------------------- spill-type sniffing ------------------------
    @classmethod
    def sniff_npz(cls, member_names: Sequence[str]) -> bool:
        """True when an npz spill file holds policy-evaluation records."""
        return "policy_name" in member_names and "nrmse" in member_names

    @classmethod
    def sniff_csv(cls, head_lines: Sequence[str]) -> bool:
        """True when a csv spill file's leading lines look like policy records."""
        header = ",".join(cls._CSV_HEADER)
        return any(line.rstrip("\r\n") == header for line in head_lines)


@dataclass
class PolicySummary:
    """Aggregate cost and quality of one policy across all evaluated points."""

    policy_name: str
    evaluations: list[PointEvaluation] = field(default_factory=list)

    @property
    def total_samples(self) -> int:
        return sum(entry.samples_collected for entry in self.evaluations)

    @property
    def total_cost(self) -> CostBreakdown:
        total = CostBreakdown()
        for entry in self.evaluations:
            total.add(entry.cost)
        return total

    @property
    def mean_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.mean(values)) if values else float("nan")

    @property
    def worst_nrmse(self) -> float:
        values = [entry.nrmse for entry in self.evaluations if not math.isnan(entry.nrmse)]
        return float(np.max(values)) if values else float("nan")

    @property
    def detection_rate(self) -> float:
        scored = [entry for entry in self.evaluations if entry.detection is not None]
        if not scored:
            return float("nan")
        return float(np.mean([entry.detection.detected for entry in scored]))

    @property
    def mean_detection_latency(self) -> float:
        latencies = [entry.detection.latency for entry in self.evaluations
                     if entry.detection is not None and entry.detection.detected]
        return float(np.mean(latencies)) if latencies else float("nan")

    def as_row(self) -> dict[str, float | str]:
        """Flat row for tables / CSV export."""
        cost = self.total_cost
        return {
            "policy": self.policy_name,
            "points": float(len(self.evaluations)),
            "samples": float(self.total_samples),
            "total_cost": cost.total,
            "storage_bytes": cost.storage_bytes,
            "transmission": cost.transmission,
            "mean_nrmse": self.mean_nrmse,
            "worst_nrmse": self.worst_nrmse,
            "detection_rate": self.detection_rate,
            "mean_detection_latency_s": self.mean_detection_latency,
        }


class CostQualityEvaluator:
    """Run several sampling policies over the same measurement points and compare them.

    Every evaluated (policy, point) row is appended to a
    :class:`PolicyRecordBlock` behind ``sink`` (in-memory by default; pass
    a :class:`~repro.records.SpillingRecordSink` to stream rows to disk).
    ``summaries`` and ``rows`` are views over that columnar store.
    """

    def __init__(self, policies: Sequence[SamplingPolicy],
                 accountant: TelemetryCostAccountant | None = None,
                 detector: ThresholdDetector | None = None,
                 sink: RecordSink | None = None) -> None:
        if not policies:
            raise ValueError("need at least one policy")
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ValueError("policy names must be unique")
        self.policies = list(policies)
        self.accountant = accountant or TelemetryCostAccountant()
        self.detector = detector or ThresholdDetector()
        self._sink = sink if sink is not None else MemoryRecordSink()
        self._summaries_cache: tuple[int, dict[str, PolicySummary]] | None = None

    # ------------------------------------------------------------------
    @property
    def sink(self) -> RecordSink:
        return self._sink

    def iter_blocks(self) -> Iterator[PolicyRecordBlock]:
        """Stream the stored columnar chunks in evaluation order."""
        return self._sink.blocks()

    def evaluate_point(self, point_name: str, metric_name: str, reference: TimeSeries,
                       event: InjectedEvent | None = None) -> list[PointEvaluation]:
        """Run every policy on one measurement point's reference trace."""
        results = []
        for policy in self.policies:
            outcome: PolicyResult = policy.collect(reference)
            error = compare(reference, outcome.reconstructed)
            cost = self.accountant.price_samples(point_name, outcome.samples_collected)
            detection = None
            if event is not None:
                detection = score_detection(policy.name, outcome.collected, event,
                                            detector=self.detector)
            if detection is None:
                detected_code, latency = DETECTION_UNSCORED, float("nan")
            elif detection.detected:
                detected_code, latency = DETECTION_DETECTED, detection.latency
            else:
                detected_code, latency = DETECTION_MISSED, detection.latency
            block = PolicyRecordBlock(
                metric_name=metric_name,
                policy_name=policy.name,
                device_ids=np.array([point_name], dtype=np.str_),
                samples=np.array([outcome.samples_collected], dtype=np.int64),
                mean_rate_hz=np.array([outcome.mean_sampling_rate]),
                nrmse=np.array([error.nrmse]),
                max_abs_error=np.array([error.max_abs]),
                hops=np.array([self.accountant.hops(point_name)], dtype=np.int64),
                collection_cpu_us=np.array([cost.collection_cpu_us]),
                transmission=np.array([cost.transmission]),
                storage_bytes=np.array([cost.storage_bytes]),
                analysis=np.array([cost.analysis]),
                detected=np.array([detected_code], dtype=np.int8),
                detection_latency=np.array([latency]),
            )
            self._sink.append(block)
            results.extend(block.to_evaluations())
        return results

    # ------------------------------------------------------------------
    @property
    def summaries(self) -> dict[str, PolicySummary]:
        """Per-policy summaries, materialised from the columnar store.

        Cached per sink state: the (possibly spilled) blocks are only
        re-read after new evaluations land, so repeated reporting calls
        (``rows``, ``relative_costs``, direct ``summaries`` access) do
        not re-stream a spill directory each time.
        """
        if self._summaries_cache is not None and \
                self._summaries_cache[0] == self._sink.rows:
            return self._summaries_cache[1]
        summaries = {policy.name: PolicySummary(policy.name) for policy in self.policies}
        for block in self._sink.blocks():
            summary = summaries.get(block.policy_name)
            if summary is None:  # pragma: no cover - foreign blocks in a reused sink
                summary = summaries.setdefault(block.policy_name,
                                               PolicySummary(block.policy_name))
            summary.evaluations.extend(block.to_evaluations())
        self._summaries_cache = (self._sink.rows, summaries)
        return summaries

    def rows(self) -> list[dict[str, float | str]]:
        """One aggregate row per policy (in the order policies were given)."""
        summaries = self.summaries
        return [summaries[policy.name].as_row() for policy in self.policies]

    def relative_costs(self, baseline_policy: str) -> dict[str, float]:
        """Total cost of each policy relative to ``baseline_policy``.

        Raises :class:`ValueError` when the baseline's total cost is zero
        (e.g. no points evaluated yet, or a zero cost model): dividing by
        it would silently turn every relative cost into ``nan`` and
        propagate through reports.
        """
        summaries = self.summaries
        if baseline_policy not in summaries:
            raise KeyError(f"unknown policy {baseline_policy!r}")
        baseline = summaries[baseline_policy].total_cost.total
        if baseline == 0:
            raise ValueError(
                f"baseline policy {baseline_policy!r} has zero total cost "
                f"({len(summaries[baseline_policy].evaluations)} points evaluated); "
                "relative costs are undefined")
        return {name: summary.total_cost.total / baseline
                for name, summary in summaries.items()}
