"""Monitoring pipeline: sampling policies, event injection and cost/quality evaluation."""

from .evaluation import (CostQualityEvaluator, PointEvaluation, PolicyRecordBlock,
                         PolicySummary)
from .events import (DetectionOutcome, EventKind, InjectedEvent, ModeTransition,
                     ThresholdDetector, inject_event, reprobe_latency,
                     resettle_latency, score_detection)
from .policies import (AdaptiveDualRatePolicy, FixedRatePolicy, NyquistStaticPolicy,
                       PolicyBatchEvaluation, PolicyResult, PolicySuite, SamplingPolicy,
                       StaticPolicySuite)
from .retention import AposterioriRetention, RetentionDecision, RetentionReport

__all__ = [
    "SamplingPolicy", "PolicyResult", "PolicyBatchEvaluation", "FixedRatePolicy",
    "NyquistStaticPolicy", "AdaptiveDualRatePolicy", "PolicySuite", "StaticPolicySuite",
    "EventKind", "InjectedEvent", "inject_event", "ThresholdDetector",
    "DetectionOutcome", "score_detection",
    "ModeTransition", "reprobe_latency", "resettle_latency",
    "CostQualityEvaluator", "PointEvaluation", "PolicyRecordBlock", "PolicySummary",
    "AposterioriRetention", "RetentionDecision", "RetentionReport",
]
