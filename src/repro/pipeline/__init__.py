"""Monitoring pipeline: sampling policies, event injection and cost/quality evaluation."""

from .evaluation import CostQualityEvaluator, PointEvaluation, PolicySummary
from .events import (DetectionOutcome, EventKind, InjectedEvent, ThresholdDetector,
                     inject_event, score_detection)
from .policies import (AdaptiveDualRatePolicy, FixedRatePolicy, NyquistStaticPolicy,
                       PolicyResult, SamplingPolicy)
from .retention import AposterioriRetention, RetentionDecision, RetentionReport

__all__ = [
    "SamplingPolicy", "PolicyResult", "FixedRatePolicy", "NyquistStaticPolicy",
    "AdaptiveDualRatePolicy",
    "EventKind", "InjectedEvent", "inject_event", "ThresholdDetector",
    "DetectionOutcome", "score_detection",
    "CostQualityEvaluator", "PointEvaluation", "PolicySummary",
    "AposterioriRetention", "RetentionDecision", "RetentionReport",
]
