"""Generic columnar record storage: the sink layer shared by every survey.

The fleet pipelines produce *columnar blocks* -- struct-of-arrays chunks of
homogeneous outcome rows -- and stream them into a :class:`RecordSink`.
The Nyquist survey's :class:`~repro.analysis.survey.RecordBlock` and the
policy survey's :class:`~repro.pipeline.evaluation.PolicyRecordBlock` are
two such block types; this module holds the storage machinery they share,
so a new record-producing pipeline only has to define its block class.

A block class participates by subclassing :class:`ColumnarBlock` with a
:class:`BlockSchema` (``_SCHEMA``) describing its block-level scalars and
per-row columns -- the schema drives one shared implementation of the
``save_npz``/``load_npz`` and ``save_csv``/``load_csv`` round trips, the
``sniff_npz``/``sniff_csv`` classmethods a spill directory is re-opened
with, and the dtype/shape validation of ``__post_init__`` -- and by
registering via :func:`register_block_type`.  The first schema column
doubles as the row counter of spill files (both existing block types lead
with ``device_ids``), so adding a new record-producing pipeline is a
schema declaration plus whatever view/constructor helpers it wants.

:class:`MemoryRecordSink` keeps blocks in RAM; :class:`SpillingRecordSink`
streams each block to one ``records-NNNNN.npz``/``.csv`` file so memory
stays bounded by a single block regardless of fleet size, and re-opens an
existing directory (resuming its row count) for later aggregation.
"""

from __future__ import annotations

import csv
import zipfile
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Iterator, Literal, Self, Sequence

import numpy as np

__all__ = [
    "ColumnSpec",
    "ScalarSpec",
    "BlockSchema",
    "ColumnarBlock",
    "FailureRecord",
    "FailureRecordBlock",
    "RecordSink",
    "MemoryRecordSink",
    "SpillingRecordSink",
    "register_block_type",
    "registered_block_types",
]


# ----------------------------------------------------------------------
# Column-spec-driven block serialisation
# ----------------------------------------------------------------------
#: Supported column kinds and their numpy dtypes.
_COLUMN_DTYPES = {
    "float": np.float64,
    "int": np.int64,
    "int8": np.int8,
    "bool": bool,
    "str": np.str_,
}


@dataclass(frozen=True)
class ColumnSpec:
    """One per-row column of a columnar record block.

    ``kind`` selects the dtype and the csv cell conversion (floats are
    written with ``repr`` so they round-trip bit for bit, ints/bools as
    integers, strings verbatim); ``csv_name`` overrides the csv header
    cell when it differs from the attribute name (e.g. the plural
    ``device_ids`` array serialises under a singular ``device_id``
    header).
    """

    name: str
    kind: Literal["float", "int", "int8", "bool", "str"]
    csv_name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _COLUMN_DTYPES:
            raise ValueError(f"unknown column kind {self.kind!r}; "
                             f"choose one of {sorted(_COLUMN_DTYPES)}")

    @property
    def header(self) -> str:
        return self.csv_name if self.csv_name is not None else self.name

    @property
    def dtype(self) -> type:
        return _COLUMN_DTYPES[self.kind]

    def to_cell(self, value: Any) -> str | int:
        """Serialise one array element for a csv data row."""
        if self.kind == "float":
            return repr(float(value))
        if self.kind == "str":
            return str(value)
        return int(value)

    def from_cell(self, cell: str) -> float | int | bool | str:
        """Parse one csv cell back into a python value for the column."""
        if self.kind == "float":
            return float(cell)
        if self.kind == "str":
            return cell
        if self.kind == "bool":
            return bool(int(cell))
        return int(cell)


@dataclass(frozen=True)
class ScalarSpec:
    """One block-level string scalar (metric name, policy name, ...).

    Scalars are stored three ways, all driven by this spec: as a 0-d npz
    member, as a leading ``# {label}={value}`` comment line in csv files
    (so zero-row blocks round-trip without losing them), and repeated as
    the first csv data columns (the historical row format, which also
    keeps the files greppable).
    """

    name: str
    label: str

    @property
    def comment_prefix(self) -> str:
        return f"# {self.label}="


@dataclass(frozen=True)
class BlockSchema:
    """Declarative layout of one columnar block type.

    The scalars come first in the csv header (by ``name``), followed by
    the columns (by ``header``); npz members are scalars + columns by
    ``name``.  The first column is the reference every other column's
    row count is validated against -- and the one sinks touch to count
    rows of a spill file cheaply.
    """

    scalars: tuple[ScalarSpec, ...]
    columns: tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a block schema needs at least one column")
        names = [spec.name for spec in self.scalars] + [spec.name for spec in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in block schema: {names}")

    @property
    def csv_header(self) -> tuple[str, ...]:
        return (*(spec.name for spec in self.scalars),
                *(spec.header for spec in self.columns))

    @property
    def member_names(self) -> tuple[str, ...]:
        return (*(spec.name for spec in self.scalars),
                *(spec.name for spec in self.columns))


class ColumnarBlock:
    """Shared machinery of every columnar record block (mixin).

    Subclasses are frozen dataclasses whose fields are the schema's
    scalars (strings) followed by its columns (1-D arrays); ``_SCHEMA``
    drives validation, the npz/csv round trips and spill-file sniffing.
    """

    _SCHEMA: ClassVar[BlockSchema]

    def __post_init__(self) -> None:
        schema = self._SCHEMA
        for spec in schema.columns:
            object.__setattr__(self, spec.name,
                               np.asarray(getattr(self, spec.name), dtype=spec.dtype))
        rows = getattr(self, schema.columns[0].name).shape[0]
        for spec in schema.columns:
            array = getattr(self, spec.name)
            if array.ndim != 1 or array.shape[0] != rows:
                raise ValueError(f"column {spec.name!r} must be 1-D with {rows} rows, "
                                 f"got shape {array.shape}")

    def __len__(self) -> int:
        return int(getattr(self, self._SCHEMA.columns[0].name).shape[0])

    # ------------------------- disk round trip -------------------------
    def save_npz(self, path: Path) -> None:
        schema = self._SCHEMA
        members = {spec.name: np.array(getattr(self, spec.name))
                   for spec in schema.scalars}
        members.update({spec.name: getattr(self, spec.name) for spec in schema.columns})
        np.savez_compressed(path, **members)

    @classmethod
    def load_npz(cls, path: Path) -> Self:
        schema = cls._SCHEMA
        try:
            with np.load(path) as data:
                fields = {spec.name: str(data[spec.name]) for spec in schema.scalars}
                fields.update({spec.name: data[spec.name] for spec in schema.columns})
                return cls(**fields)
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as error:
            raise ValueError(
                f"corrupt or truncated record file {path}: {error}") from error

    def save_csv(self, path: Path) -> None:
        schema = self._SCHEMA
        with path.open("w", newline="") as handle:
            for spec in schema.scalars:
                handle.write(f"{spec.comment_prefix}{getattr(self, spec.name)}\n")
            writer = csv.writer(handle)
            writer.writerow(schema.csv_header)
            scalar_cells = [str(getattr(self, spec.name)) for spec in schema.scalars]
            columns = [(spec, getattr(self, spec.name)) for spec in schema.columns]
            for index in range(len(self)):
                writer.writerow(scalar_cells
                                + [spec.to_cell(array[index]) for spec, array in columns])

    @classmethod
    def load_csv(cls, path: Path) -> Self:
        schema = cls._SCHEMA
        scalars = {spec.name: "" for spec in schema.scalars}
        columns: dict[str, list] = {spec.name: [] for spec in schema.columns}
        with path.open(newline="") as handle:
            line = handle.readline()
            if not line.strip():
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 "missing CSV header")
            # Leading comment lines carry the block-level scalars (optional,
            # in schema order, so legacy files without them still load).
            for spec in schema.scalars:
                if line.startswith(spec.comment_prefix):
                    scalars[spec.name] = line[len(spec.comment_prefix):].rstrip("\r\n")
                    line = handle.readline()
            if line.rstrip("\r\n").split(",") != list(schema.csv_header):
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 f"unexpected CSV header {line.rstrip()!r}")
            reader = csv.reader(handle)
            width = len(schema.csv_header)
            for line_number, row in enumerate(reader, start=1):
                try:
                    if len(row) < width:
                        raise ValueError(f"expected {width} cells, got {len(row)}")
                    for offset, spec in enumerate(schema.scalars):
                        scalars[spec.name] = row[offset]
                    base = len(schema.scalars)
                    for offset, spec in enumerate(schema.columns):
                        columns[spec.name].append(spec.from_cell(row[base + offset]))
                except (IndexError, ValueError) as error:
                    raise ValueError(f"corrupt or truncated record file {path}, "
                                     f"data row {line_number}: {error}") from error
        return cls(**scalars, **columns)

    # ---------------------- spill-type sniffing ------------------------
    @classmethod
    def sniff_npz(cls, member_names: Sequence[str]) -> bool:
        """True when an npz spill file holds exactly this schema's members."""
        return set(member_names) == set(cls._SCHEMA.member_names)

    @classmethod
    def sniff_csv(cls, head_lines: Sequence[str]) -> bool:
        """True when a csv spill file's leading lines carry this schema's header."""
        header = ",".join(cls._SCHEMA.csv_header)
        return any(line.rstrip("\r\n") == header for line in head_lines)


#: Block classes that spill files may contain, in registration order.
#: Populated by :func:`register_block_type` when the defining modules are
#: imported (``repro``'s package init imports them all).
_BLOCK_TYPES: list[type] = []


def register_block_type(cls: type) -> type:
    """Class decorator: make ``cls`` discoverable when re-opening spill files."""
    if cls not in _BLOCK_TYPES:
        _BLOCK_TYPES.append(cls)
    return cls


def registered_block_types() -> Sequence[type]:
    """The registered block classes (mainly for diagnostics and tests)."""
    return tuple(_BLOCK_TYPES)


def _ensure_registry() -> None:
    """Import the built-in block-type modules so sniffing can see them.

    ``repro.records`` deliberately does not import the block modules at
    module level (they import *this* module); the lazy import here only
    runs when a caller re-opens a spill directory without naming a type.
    """
    from .analysis import survey as _survey  # noqa: F401
    from .pipeline import evaluation as _evaluation  # noqa: F401


# ----------------------------------------------------------------------
# Quarantine failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureRecord:
    """One quarantined unit of pipeline work (a pair, or a dump line).

    ``stage`` names the pipeline step that failed (``"trace"``,
    ``"estimate"``, ``"evaluate"``, ``"parse"``); ``provenance`` pins the
    failing input (trace file path, ``dump.jsonl:LINE``, batch spec) so a
    quarantined run can be triaged without re-running it.
    """

    metric_name: str
    device_id: str
    stage: str
    error_type: str
    message: str
    provenance: str

    @classmethod
    def from_pair(cls, pair: Any, metric_name: str, stage: str, error: Exception,
                  position: int) -> Self:
        """Build the failure row for one (metric, device) pair.

        ``position`` is the pair's index in its metric's pair list (the
        slice address the batch specs use); pairs that carry a trace file
        (measured fleets) get it appended to the provenance.
        """
        provenance = f"{metric_name}[{position}]"
        file = getattr(pair, "file", None)
        if file:
            provenance = f"{provenance} {file}"
        return cls(metric_name=metric_name, device_id=pair.device.device_id,
                   stage=stage, error_type=type(error).__name__,
                   message=str(error), provenance=provenance)


@register_block_type
@dataclass(frozen=True)
class FailureRecordBlock(ColumnarBlock):
    """Columnar chunk of quarantined failures, one row per failed unit.

    Flows through the same :class:`RecordSink` machinery as the outcome
    blocks (quarantined runs spill failures next to their records), so it
    follows the sink conventions: ``device_ids`` leads the schema and is
    the row counter of spill files.
    """

    device_ids: np.ndarray
    metric_names: np.ndarray
    stages: np.ndarray
    error_types: np.ndarray
    messages: np.ndarray
    provenances: np.ndarray

    _SCHEMA: ClassVar[BlockSchema] = BlockSchema(
        scalars=(),
        columns=(
            ColumnSpec("device_ids", "str", csv_name="device_id"),
            ColumnSpec("metric_names", "str", csv_name="metric_name"),
            ColumnSpec("stages", "str", csv_name="stage"),
            ColumnSpec("error_types", "str", csv_name="error_type"),
            ColumnSpec("messages", "str", csv_name="message"),
            ColumnSpec("provenances", "str", csv_name="provenance"),
        ),
    )

    @classmethod
    def from_failures(cls, failures: Sequence[FailureRecord]) -> Self:
        """Pack an ordered batch of failures into one columnar block."""
        return cls(
            device_ids=np.array([f.device_id for f in failures], dtype=np.str_),
            metric_names=np.array([f.metric_name for f in failures], dtype=np.str_),
            stages=np.array([f.stage for f in failures], dtype=np.str_),
            error_types=np.array([f.error_type for f in failures], dtype=np.str_),
            messages=np.array([f.message for f in failures], dtype=np.str_),
            provenances=np.array([f.provenance for f in failures], dtype=np.str_),
        )

    def failures(self) -> Iterator[FailureRecord]:
        """Stream the rows back as :class:`FailureRecord` views."""
        for index in range(len(self)):
            yield FailureRecord(
                metric_name=str(self.metric_names[index]),
                device_id=str(self.device_ids[index]),
                stage=str(self.stages[index]),
                error_type=str(self.error_types[index]),
                message=str(self.messages[index]),
                provenance=str(self.provenances[index]),
            )


class RecordSink(ABC):
    """Streaming destination for columnar record blocks.

    The producing pipeline pushes blocks as it creates them and the
    aggregations pull them back with :meth:`blocks`; a sink therefore
    decides the memory/durability trade-off (RAM vs disk) without the
    rest of the pipeline caring.
    """

    @abstractmethod
    def append(self, block: "ColumnarBlock") -> None:
        """Accept the next chunk of outcome rows."""

    @abstractmethod
    def blocks(self) -> Iterator:
        """Stream the stored chunks back in append order."""

    @property
    @abstractmethod
    def rows(self) -> int:
        """Total rows stored so far."""


class MemoryRecordSink(RecordSink):
    """Keeps every block in RAM (the default for paper-scale runs)."""

    def __init__(self) -> None:
        self._blocks: list = []
        self._rows = 0

    def append(self, block: "ColumnarBlock") -> None:
        self._blocks.append(block)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        return iter(self._blocks)

    @property
    def rows(self) -> int:
        return self._rows


class SpillingRecordSink(RecordSink):
    """Streams every block straight to disk; memory stays O(one block).

    Each appended block becomes one ``records-NNNNN.npz`` (or ``.csv``)
    file under ``directory``; aggregations stream the files back one at a
    time, so neither writing nor reading ever holds more than a single
    ``chunk_size`` block in memory.  Opening a sink on a directory that
    already contains record files resumes from them, which is how a
    spilled run is re-opened in a later process (e.g.
    ``SurveyResult(sink=SpillingRecordSink(path))`` or
    ``PolicySurveyResult(sink=SpillingRecordSink(path))``).

    ``block_type`` names the block class the sink stores.  When omitted it
    is inferred: from the first appended block on a fresh directory, or by
    sniffing the first existing spill file on re-open -- so one sink class
    serves every registered block type.
    """

    _FMTS = ("npz", "csv")

    def __init__(self, directory: Path | str, fmt: Literal["npz", "csv"] = "npz",
                 block_type: type | None = None) -> None:
        if fmt not in self._FMTS:
            raise ValueError(f"unknown spill format {fmt!r}; choose 'npz' or 'csv'")
        self.directory = Path(directory)
        self.fmt = fmt
        self.directory.mkdir(parents=True, exist_ok=True)
        self._block_type = block_type
        self._files: list[Path] = sorted(self.directory.glob(f"records-*.{fmt}"))
        self._rows = sum(self._count_rows(path) for path in self._files)

    # ------------------------------------------------------------------
    @property
    def block_type(self) -> type | None:
        """The block class this sink stores (None until known)."""
        return self._block_type

    def _sniff_type(self, path: Path) -> type:
        """Infer the block class of an existing spill file."""
        _ensure_registry()
        if self.fmt == "npz":
            with np.load(path) as data:
                members = tuple(data.files)
            for cls in _BLOCK_TYPES:
                if cls.sniff_npz(members):
                    return cls
        else:
            with path.open() as handle:
                head = tuple(handle.readline() for _ in range(4))
            for cls in _BLOCK_TYPES:
                if cls.sniff_csv(head):
                    return cls
        raise ValueError(
            f"spill file {path} does not match any registered record block type "
            f"({[cls.__name__ for cls in _BLOCK_TYPES]}); the file is corrupt or "
            "from an incompatible version")

    def _resolve_type(self) -> type:
        if self._block_type is None:
            if not self._files:
                raise ValueError(
                    f"empty spill directory {self.directory} and no block_type given; "
                    "append a block first or pass block_type=")
            self._block_type = self._sniff_type(self._files[0])
        return self._block_type

    def _count_rows(self, path: Path) -> int:
        """Row count of one spill file without loading its full columns.

        npz members decompress lazily, so touching only ``device_ids``
        skips the wide float columns; for csv a line count suffices
        (comment lines carry block-level scalars, not rows).  Keeps
        re-opening a 100k+-row spill directory cheap.
        """
        if self.fmt == "npz":
            with np.load(path) as data:
                return int(data["device_ids"].shape[0])
        with path.open() as handle:
            return max(sum(1 for line in handle if not line.startswith("#")) - 1, 0)

    def _load(self, path: Path) -> "ColumnarBlock":
        cls = self._resolve_type()
        loader = getattr(cls, f"load_{self.fmt}")
        return loader(path)

    def append(self, block: "ColumnarBlock") -> None:
        if self._block_type is None:
            self._block_type = self._sniff_type(self._files[0]) if self._files \
                else type(block)
        if not isinstance(block, self._block_type):
            raise ValueError(
                f"sink at {self.directory} stores {self._block_type.__name__} blocks; "
                f"cannot append a {type(block).__name__}")
        path = self.directory / f"records-{len(self._files):05d}.{self.fmt}"
        getattr(block, f"save_{self.fmt}")(path)
        self._files.append(path)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        for path in self._files:
            yield self._load(path)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def files(self) -> list[Path]:
        """The spill files written so far, in append order."""
        return list(self._files)
