"""Generic columnar record storage: the sink layer shared by every survey.

The fleet pipelines produce *columnar blocks* -- struct-of-arrays chunks of
homogeneous outcome rows -- and stream them into a :class:`RecordSink`.
The Nyquist survey's :class:`~repro.analysis.survey.RecordBlock` and the
policy survey's :class:`~repro.pipeline.evaluation.PolicyRecordBlock` are
two such block types; this module holds the storage machinery they share,
so a new record-producing pipeline only has to define its block class.

A block class participates by providing:

* ``save_npz(path)`` / ``load_npz(path)`` and ``save_csv(path)`` /
  ``load_csv(path)`` round trips (``load_*`` are classmethods);
* a ``device_ids`` column (used for cheap row counting of spill files);
* ``sniff_npz(member_names)`` / ``sniff_csv(head_lines)`` classmethods so
  a spill directory written earlier can be re-opened without the caller
  saying which block type it holds;
* registration via :func:`register_block_type`.

:class:`MemoryRecordSink` keeps blocks in RAM; :class:`SpillingRecordSink`
streams each block to one ``records-NNNNN.npz``/``.csv`` file so memory
stays bounded by a single block regardless of fleet size, and re-opens an
existing directory (resuming its row count) for later aggregation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Literal, Sequence

import numpy as np

__all__ = [
    "RecordSink",
    "MemoryRecordSink",
    "SpillingRecordSink",
    "register_block_type",
    "registered_block_types",
]


#: Block classes that spill files may contain, in registration order.
#: Populated by :func:`register_block_type` when the defining modules are
#: imported (``repro``'s package init imports them all).
_BLOCK_TYPES: list[type] = []


def register_block_type(cls: type) -> type:
    """Class decorator: make ``cls`` discoverable when re-opening spill files."""
    if cls not in _BLOCK_TYPES:
        _BLOCK_TYPES.append(cls)
    return cls


def registered_block_types() -> Sequence[type]:
    """The registered block classes (mainly for diagnostics and tests)."""
    return tuple(_BLOCK_TYPES)


def _ensure_registry() -> None:
    """Import the built-in block-type modules so sniffing can see them.

    ``repro.records`` deliberately does not import the block modules at
    module level (they import *this* module); the lazy import here only
    runs when a caller re-opens a spill directory without naming a type.
    """
    from .analysis import survey as _survey  # noqa: F401
    from .pipeline import evaluation as _evaluation  # noqa: F401


class RecordSink(ABC):
    """Streaming destination for columnar record blocks.

    The producing pipeline pushes blocks as it creates them and the
    aggregations pull them back with :meth:`blocks`; a sink therefore
    decides the memory/durability trade-off (RAM vs disk) without the
    rest of the pipeline caring.
    """

    @abstractmethod
    def append(self, block) -> None:
        """Accept the next chunk of outcome rows."""

    @abstractmethod
    def blocks(self) -> Iterator:
        """Stream the stored chunks back in append order."""

    @property
    @abstractmethod
    def rows(self) -> int:
        """Total rows stored so far."""


class MemoryRecordSink(RecordSink):
    """Keeps every block in RAM (the default for paper-scale runs)."""

    def __init__(self) -> None:
        self._blocks: list = []
        self._rows = 0

    def append(self, block) -> None:
        self._blocks.append(block)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        return iter(self._blocks)

    @property
    def rows(self) -> int:
        return self._rows


class SpillingRecordSink(RecordSink):
    """Streams every block straight to disk; memory stays O(one block).

    Each appended block becomes one ``records-NNNNN.npz`` (or ``.csv``)
    file under ``directory``; aggregations stream the files back one at a
    time, so neither writing nor reading ever holds more than a single
    ``chunk_size`` block in memory.  Opening a sink on a directory that
    already contains record files resumes from them, which is how a
    spilled run is re-opened in a later process (e.g.
    ``SurveyResult(sink=SpillingRecordSink(path))`` or
    ``PolicySurveyResult(sink=SpillingRecordSink(path))``).

    ``block_type`` names the block class the sink stores.  When omitted it
    is inferred: from the first appended block on a fresh directory, or by
    sniffing the first existing spill file on re-open -- so one sink class
    serves every registered block type.
    """

    _FMTS = ("npz", "csv")

    def __init__(self, directory: Path | str, fmt: Literal["npz", "csv"] = "npz",
                 block_type: type | None = None) -> None:
        if fmt not in self._FMTS:
            raise ValueError(f"unknown spill format {fmt!r}; choose 'npz' or 'csv'")
        self.directory = Path(directory)
        self.fmt = fmt
        self.directory.mkdir(parents=True, exist_ok=True)
        self._block_type = block_type
        self._files: list[Path] = sorted(self.directory.glob(f"records-*.{fmt}"))
        self._rows = sum(self._count_rows(path) for path in self._files)

    # ------------------------------------------------------------------
    @property
    def block_type(self) -> type | None:
        """The block class this sink stores (None until known)."""
        return self._block_type

    def _sniff_type(self, path: Path) -> type:
        """Infer the block class of an existing spill file."""
        _ensure_registry()
        if self.fmt == "npz":
            with np.load(path) as data:
                members = tuple(data.files)
            for cls in _BLOCK_TYPES:
                if cls.sniff_npz(members):
                    return cls
        else:
            with path.open() as handle:
                head = tuple(handle.readline() for _ in range(4))
            for cls in _BLOCK_TYPES:
                if cls.sniff_csv(head):
                    return cls
        raise ValueError(
            f"spill file {path} does not match any registered record block type "
            f"({[cls.__name__ for cls in _BLOCK_TYPES]}); the file is corrupt or "
            "from an incompatible version")

    def _resolve_type(self) -> type:
        if self._block_type is None:
            if not self._files:
                raise ValueError(
                    f"empty spill directory {self.directory} and no block_type given; "
                    "append a block first or pass block_type=")
            self._block_type = self._sniff_type(self._files[0])
        return self._block_type

    def _count_rows(self, path: Path) -> int:
        """Row count of one spill file without loading its full columns.

        npz members decompress lazily, so touching only ``device_ids``
        skips the wide float columns; for csv a line count suffices
        (comment lines carry block-level scalars, not rows).  Keeps
        re-opening a 100k+-row spill directory cheap.
        """
        if self.fmt == "npz":
            with np.load(path) as data:
                return int(data["device_ids"].shape[0])
        with path.open() as handle:
            return max(sum(1 for line in handle if not line.startswith("#")) - 1, 0)

    def _load(self, path: Path):
        cls = self._resolve_type()
        loader = getattr(cls, f"load_{self.fmt}")
        return loader(path)

    def append(self, block) -> None:
        if self._block_type is None:
            self._block_type = self._sniff_type(self._files[0]) if self._files \
                else type(block)
        if not isinstance(block, self._block_type):
            raise ValueError(
                f"sink at {self.directory} stores {self._block_type.__name__} blocks; "
                f"cannot append a {type(block).__name__}")
        path = self.directory / f"records-{len(self._files):05d}.{self.fmt}"
        getattr(block, f"save_{self.fmt}")(path)
        self._files.append(path)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        for path in self._files:
            yield self._load(path)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def files(self) -> list[Path]:
        """The spill files written so far, in append order."""
        return list(self._files)
