"""Monitoring cost model: collection, transmission, storage and analysis.

"Every aspect of the task of monitoring -- collection, transmission,
analysis, and storage -- all consume resources that, when considering the
scale of modern data centers, represent a non-negligible overhead" (§3.1).
The model here prices a monitoring configuration sample by sample:

* **collection** -- CPU time on the monitored device per sample taken;
* **transmission** -- bytes moved across the fabric, weighted by the hop
  count from the device to its collector;
* **storage** -- bytes retained at the collector;
* **analysis** -- per-sample processing at the collector.

The absolute constants are configurable; the comparisons the paper cares
about (baseline vs Nyquist-rate vs adaptive sampling) are ratios, which are
insensitive to the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

__all__ = ["CostModel", "CostBreakdown", "TelemetryCostAccountant"]


@dataclass(frozen=True)
class CostModel:
    """Per-sample unit costs.

    Attributes
    ----------
    bytes_per_sample:
        Wire/storage size of one sample (timestamp + value + metadata).
    collection_cpu_us:
        CPU microseconds spent on the monitored device to take one sample
        (reading a counter, locking a flow table, sending a probe, ...).
    transmission_cost_per_byte_hop:
        Cost of moving one byte across one fabric hop.
    storage_cost_per_byte:
        Cost of retaining one byte at the collector.
    analysis_cost_per_sample:
        Cost of ingesting/processing one sample at the collector.
    """

    bytes_per_sample: float = 64.0
    collection_cpu_us: float = 50.0
    transmission_cost_per_byte_hop: float = 1.0
    storage_cost_per_byte: float = 1.0
    analysis_cost_per_sample: float = 10.0

    def __post_init__(self) -> None:
        for name in ("bytes_per_sample", "collection_cpu_us",
                     "transmission_cost_per_byte_hop", "storage_cost_per_byte",
                     "analysis_cost_per_sample"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class CostBreakdown:
    """Accumulated cost of a monitoring run, by component."""

    samples: int = 0
    collection_cpu_us: float = 0.0
    transmission: float = 0.0
    storage_bytes: float = 0.0
    analysis: float = 0.0

    @property
    def total(self) -> float:
        """A single scalar combining all components (unit-weighted sum)."""
        return (self.collection_cpu_us + self.transmission
                + self.storage_bytes + self.analysis)

    def add(self, other: "CostBreakdown") -> "CostBreakdown":
        """Accumulate another breakdown into this one (returns self)."""
        self.samples += other.samples
        self.collection_cpu_us += other.collection_cpu_us
        self.transmission += other.transmission
        self.storage_bytes += other.storage_bytes
        self.analysis += other.analysis
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "samples": float(self.samples),
            "collection_cpu_us": self.collection_cpu_us,
            "transmission": self.transmission,
            "storage_bytes": self.storage_bytes,
            "analysis": self.analysis,
            "total": self.total,
        }

    def relative_to(self, baseline: "CostBreakdown") -> dict[str, float]:
        """Each component as a fraction of ``baseline`` (nan when baseline is 0)."""
        result = {}
        ours = self.as_dict()
        theirs = baseline.as_dict()
        for key, value in ours.items():
            result[key] = value / theirs[key] if theirs[key] else float("nan")
        return result


class TelemetryCostAccountant:
    """Prices sample collection against a topology and a cost model.

    Hop counts from every device to its collector are computed once (BFS
    shortest path) and cached; devices not present in the topology are
    priced with a configurable default hop count, which keeps the
    accountant usable for abstract (topology-less) experiments too.
    """

    def __init__(self, cost_model: CostModel | None = None,
                 topology: nx.Graph | None = None,
                 collector: str | None = None,
                 default_hops: int = 3) -> None:
        if default_hops < 0:
            raise ValueError("default_hops must be non-negative")
        self.cost_model = cost_model or CostModel()
        self.topology = topology
        self.collector = collector
        self.default_hops = default_hops
        self._hop_cache: dict[str, int] = {}
        if topology is not None and collector is not None:
            if collector not in topology:
                raise ValueError(f"collector {collector!r} not in topology")
            lengths = nx.single_source_shortest_path_length(topology, collector)
            self._hop_cache = {node: int(hops) for node, hops in lengths.items()}

    def hops(self, device: str) -> int:
        """Fabric hops from ``device`` to the collector."""
        return self._hop_cache.get(device, self.default_hops)

    def cache_token(self) -> str:
        """Canonical parameter string for content-addressed record caching.

        Captures everything that changes a priced record: the cost model,
        the default hop count and the per-device hop table (sorted, so the
        token does not depend on BFS traversal order).
        """
        hops = ", ".join(f"{device}:{count}"
                         for device, count in sorted(self._hop_cache.items()))
        return (f"{type(self).__name__}(cost_model={self.cost_model!r}, "
                f"default_hops={self.default_hops}, hops=[{hops}])")

    def price_samples(self, device: str, sample_count: int) -> CostBreakdown:
        """Cost of collecting, shipping, storing and analysing ``sample_count`` samples."""
        if sample_count < 0:
            raise ValueError("sample_count must be non-negative")
        model = self.cost_model
        bytes_moved = sample_count * model.bytes_per_sample
        return CostBreakdown(
            samples=sample_count,
            collection_cpu_us=sample_count * model.collection_cpu_us,
            transmission=bytes_moved * self.hops(device) * model.transmission_cost_per_byte_hop,
            storage_bytes=bytes_moved * model.storage_cost_per_byte,
            analysis=sample_count * model.analysis_cost_per_sample,
        )

    def hops_array(self, devices: Sequence[str]) -> np.ndarray:
        """Hop count per device, as an integer column."""
        return np.fromiter((self.hops(device) for device in devices), np.int64,
                           len(devices))

    def price_sample_block(self, devices: Sequence[str],
                           sample_counts: np.ndarray) -> dict[str, np.ndarray]:
        """Vectorised :meth:`price_samples`: one priced column per cost component.

        ``devices[i]`` collected ``sample_counts[i]`` samples; the result
        maps component name (``hops``, ``collection_cpu_us``,
        ``transmission``, ``storage_bytes``, ``analysis``) to a per-row
        array.  Row ``i`` equals ``price_samples(devices[i],
        sample_counts[i])`` -- this is the cost-accounting hot path of the
        fleet policy survey, where pricing a block is five array
        multiplies instead of one Python call per (device, policy) row.
        """
        counts = np.asarray(sample_counts, dtype=np.int64)
        if counts.ndim != 1 or counts.shape[0] != len(devices):
            raise ValueError("sample_counts must be 1-D with one entry per device")
        if np.any(counts < 0):
            raise ValueError("sample_count must be non-negative")
        model = self.cost_model
        hops = self.hops_array(devices)
        bytes_moved = counts * model.bytes_per_sample
        return {
            "hops": hops,
            "collection_cpu_us": counts * model.collection_cpu_us,
            "transmission": bytes_moved * hops * model.transmission_cost_per_byte_hop,
            "storage_bytes": bytes_moved * model.storage_cost_per_byte,
            "analysis": counts * model.analysis_cost_per_sample,
        }
