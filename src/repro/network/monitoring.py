"""Monitoring deployment: which metrics are polled on which fabric devices.

This is the glue between the topology (:mod:`repro.network.topology`), the
telemetry generators (:mod:`repro.telemetry`) and the pipeline simulator
(:mod:`repro.pipeline`): a :class:`MonitoringDeployment` assigns metric
specs to fabric nodes, draws the per-(device, metric) generative
parameters, and can materialise the reference (ground-truth) traces the
simulator samples from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import networkx as nx
import numpy as np

from ..signals.timeseries import TimeSeries
from ..telemetry.metrics import METRIC_CATALOG, MetricSpec
from ..telemetry.models import generate_trace
from ..telemetry.profiles import (DeviceProfile, DeviceRole, MetricParameters,
                                  draw_metric_parameters)
from .topology import NodeRole, servers, switches

__all__ = ["MonitoredPoint", "MonitoringDeployment"]

#: Which metric families make sense on which kind of fabric node.
_SWITCH_METRICS = ("Link util", "Unicast bytes", "Multicast bytes", "Unicast drops",
                   "Multicast drops", "In-bound discards", "Out-bound discards",
                   "FCS errors", "Lossy paths", "Peak egress BW", "Peak ingress BW",
                   "Temperature")
_SERVER_METRICS = ("5-pct CPU util", "Memory usage", "Temperature")

_ROLE_MAP = {
    NodeRole.SPINE: DeviceRole.CORE_SWITCH,
    NodeRole.CORE: DeviceRole.CORE_SWITCH,
    NodeRole.AGGREGATION: DeviceRole.AGGREGATION_SWITCH,
    NodeRole.LEAF: DeviceRole.TOR_SWITCH,
    NodeRole.EDGE: DeviceRole.TOR_SWITCH,
    NodeRole.SERVER: DeviceRole.SERVER,
}


@dataclass(frozen=True)
class MonitoredPoint:
    """One (fabric node, metric) measurement point."""

    node: str
    metric: MetricSpec
    profile: DeviceProfile
    parameters: MetricParameters

    @property
    def key(self) -> tuple[str, str]:
        return (self.node, self.metric.name)


@dataclass
class MonitoringDeployment:
    """A concrete monitoring deployment over a fabric.

    Parameters
    ----------
    topology:
        The fabric graph (see :mod:`repro.network.topology`).
    trace_duration:
        How long the reference traces should be, in seconds.
    seed:
        Master seed for parameter draws.
    switch_metrics / server_metrics:
        Metric names monitored on switches and servers respectively.
    broadband_fraction:
        Fraction of measurement points that are broadband (aliased-looking).
    """

    topology: nx.Graph
    trace_duration: float = 86400.0
    seed: int = 11
    switch_metrics: tuple[str, ...] = _SWITCH_METRICS
    server_metrics: tuple[str, ...] = _SERVER_METRICS
    broadband_fraction: float = 0.11
    _points: list[MonitoredPoint] | None = field(default=None, init=False, repr=False)

    def points(self) -> list[MonitoredPoint]:
        """All measurement points of the deployment (cached)."""
        if self._points is not None:
            return self._points
        rng = np.random.default_rng(self.seed)
        points: list[MonitoredPoint] = []
        for node in switches(self.topology):
            points.extend(self._points_for_node(node, self.switch_metrics, rng))
        for node in servers(self.topology):
            points.extend(self._points_for_node(node, self.server_metrics, rng))
        self._points = points
        return points

    def _points_for_node(self, node: str, metric_names: Sequence[str],
                         rng: np.random.Generator) -> list[MonitoredPoint]:
        role = _ROLE_MAP.get(self.topology.nodes[node].get("role"), DeviceRole.SERVER)
        profile = DeviceProfile(device_id=node, role=role,
                                seed=int(rng.integers(0, 2 ** 31 - 1)))
        points = []
        for name in metric_names:
            spec = METRIC_CATALOG[name]
            params = draw_metric_parameters(
                spec, profile, self.trace_duration,
                broadband_fraction=self.broadband_fraction,
                rng=np.random.default_rng(profile.metric_seed(name)))
            points.append(MonitoredPoint(node, spec, profile, params))
        return points

    def __len__(self) -> int:
        return len(self.points())

    def points_for_metric(self, metric_name: str) -> list[MonitoredPoint]:
        """All measurement points of one metric."""
        return [point for point in self.points() if point.metric.name == metric_name]

    def reference_trace(self, point: MonitoredPoint,
                        oversample_factor: float = 4.0) -> TimeSeries:
        """Ground-truth trace for a measurement point.

        The reference is generated ``oversample_factor`` times faster than
        the production polling rate so sampling policies have headroom to
        probe above today's rate (the adaptive controller's dual-frequency
        probe needs it).
        """
        if oversample_factor < 1:
            raise ValueError("oversample_factor must be >= 1")
        interval = point.metric.poll_interval / oversample_factor
        rng = np.random.default_rng(point.parameters.seed)
        return generate_trace(point.metric, point.parameters, self.trace_duration,
                              interval=interval, rng=rng, device_name=point.node)

    def production_trace(self, point: MonitoredPoint) -> TimeSeries:
        """What today's monitoring system collects for this point."""
        rng = np.random.default_rng(point.parameters.seed)
        return generate_trace(point.metric, point.parameters, self.trace_duration,
                              rng=rng, device_name=point.node)

    def iter_reference_traces(self, metric_name: str | None = None,
                              limit: int | None = None,
                              oversample_factor: float = 4.0
                              ) -> Iterator[tuple[MonitoredPoint, TimeSeries]]:
        """Iterate (point, reference trace) pairs."""
        selected = self.points() if metric_name is None else self.points_for_metric(metric_name)
        if limit is not None:
            selected = selected[:limit]
        for point in selected:
            yield point, self.reference_trace(point, oversample_factor=oversample_factor)
