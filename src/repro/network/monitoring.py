"""Monitoring deployment: which metrics are polled on which fabric devices.

This is the glue between the topology (:mod:`repro.network.topology`), the
telemetry generators (:mod:`repro.telemetry`) and the pipeline simulator
(:mod:`repro.pipeline`): a :class:`MonitoringDeployment` assigns metric
specs to fabric nodes, draws the per-(device, metric) generative
parameters, and can materialise the reference (ground-truth) traces the
simulator samples from.

:class:`DeploymentTraceSource` exposes a deployment through the
:class:`~repro.telemetry.source.TraceSource` protocol, so the fleet
pipelines (``run_survey``, ``run_policy_survey``) run over a monitored
fabric exactly like over a :class:`~repro.telemetry.dataset.FleetDataset`
-- with the crucial difference that every measurement point is a real
topology node, which lets the cost model price its telemetry with actual
hop counts.  :class:`DeploymentSpec` is the picklable worker address: a
leaf-spine recipe the multi-worker survey ships to its process pool and
rebuilds deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import networkx as nx
import numpy as np

from ..signals.timeseries import TimeSeries
from ..telemetry.dataset import TracePair
from ..telemetry.metrics import METRIC_CATALOG, MetricSpec
from ..telemetry.models import generate_trace
from ..telemetry.profiles import (DeviceProfile, DeviceRole, MetricParameters,
                                  draw_metric_parameters)
from ..telemetry.source import BaseTraceSource
from .cost import CostModel, TelemetryCostAccountant
from .topology import (FabricSpec, NodeRole, TopologySpec, WanRingSpec,
                       attach_collector, servers, switches)

__all__ = ["MonitoredPoint", "MonitoringDeployment", "DeploymentSpec",
           "DeploymentTraceSource"]

#: Which metric families make sense on which kind of fabric node.
_SWITCH_METRICS = ("Link util", "Unicast bytes", "Multicast bytes", "Unicast drops",
                   "Multicast drops", "In-bound discards", "Out-bound discards",
                   "FCS errors", "Lossy paths", "Peak egress BW", "Peak ingress BW",
                   "Temperature")
_SERVER_METRICS = ("5-pct CPU util", "Memory usage", "Temperature")

_ROLE_MAP = {
    NodeRole.SPINE: DeviceRole.CORE_SWITCH,
    NodeRole.CORE: DeviceRole.CORE_SWITCH,
    NodeRole.AGGREGATION: DeviceRole.AGGREGATION_SWITCH,
    NodeRole.LEAF: DeviceRole.TOR_SWITCH,
    NodeRole.EDGE: DeviceRole.TOR_SWITCH,
    NodeRole.POP: DeviceRole.AGGREGATION_SWITCH,
    NodeRole.SERVER: DeviceRole.SERVER,
}


@dataclass(frozen=True)
class MonitoredPoint:
    """One (fabric node, metric) measurement point."""

    node: str
    metric: MetricSpec
    profile: DeviceProfile
    parameters: MetricParameters

    @property
    def key(self) -> tuple[str, str]:
        return (self.node, self.metric.name)


@dataclass
class MonitoringDeployment:
    """A concrete monitoring deployment over a fabric.

    Parameters
    ----------
    topology:
        The fabric graph (see :mod:`repro.network.topology`).
    trace_duration:
        How long the reference traces should be, in seconds.
    seed:
        Master seed for parameter draws.
    switch_metrics / server_metrics:
        Metric names monitored on switches and servers respectively.
    broadband_fraction:
        Fraction of measurement points that are broadband (aliased-looking).
    """

    topology: nx.Graph
    trace_duration: float = 86400.0
    seed: int = 11
    switch_metrics: tuple[str, ...] = _SWITCH_METRICS
    server_metrics: tuple[str, ...] = _SERVER_METRICS
    broadband_fraction: float = 0.11
    _points: list[MonitoredPoint] | None = field(default=None, init=False, repr=False)

    def points(self) -> list[MonitoredPoint]:
        """All measurement points of the deployment (cached)."""
        if self._points is not None:
            return self._points
        rng = np.random.default_rng(self.seed)
        points: list[MonitoredPoint] = []
        for node in switches(self.topology):
            points.extend(self._points_for_node(node, self.switch_metrics, rng))
        for node in servers(self.topology):
            points.extend(self._points_for_node(node, self.server_metrics, rng))
        self._points = points
        return points

    def _points_for_node(self, node: str, metric_names: Sequence[str],
                         rng: np.random.Generator) -> list[MonitoredPoint]:
        role = _ROLE_MAP.get(self.topology.nodes[node].get("role"), DeviceRole.SERVER)
        profile = DeviceProfile(device_id=node, role=role,
                                seed=int(rng.integers(0, 2 ** 31 - 1)))
        points = []
        for name in metric_names:
            spec = METRIC_CATALOG[name]
            params = draw_metric_parameters(
                spec, profile, self.trace_duration,
                broadband_fraction=self.broadband_fraction,
                rng=np.random.default_rng(profile.metric_seed(name)))
            points.append(MonitoredPoint(node, spec, profile, params))
        return points

    def __len__(self) -> int:
        return len(self.points())

    def points_for_metric(self, metric_name: str) -> list[MonitoredPoint]:
        """All measurement points of one metric."""
        return [point for point in self.points() if point.metric.name == metric_name]

    def reference_trace(self, point: MonitoredPoint,
                        oversample_factor: float = 4.0) -> TimeSeries:
        """Ground-truth trace for a measurement point.

        The reference is generated ``oversample_factor`` times faster than
        the production polling rate so sampling policies have headroom to
        probe above today's rate (the adaptive controller's dual-frequency
        probe needs it).
        """
        if oversample_factor < 1:
            raise ValueError("oversample_factor must be >= 1")
        interval = point.metric.poll_interval / oversample_factor
        rng = np.random.default_rng(point.parameters.seed)
        return generate_trace(point.metric, point.parameters, self.trace_duration,
                              interval=interval, rng=rng, device_name=point.node)

    def production_trace(self, point: MonitoredPoint) -> TimeSeries:
        """What today's monitoring system collects for this point."""
        rng = np.random.default_rng(point.parameters.seed)
        return generate_trace(point.metric, point.parameters, self.trace_duration,
                              rng=rng, device_name=point.node)

    def iter_reference_traces(self, metric_name: str | None = None,
                              limit: int | None = None,
                              oversample_factor: float = 4.0
                              ) -> Iterator[tuple[MonitoredPoint, TimeSeries]]:
        """Iterate (point, reference trace) pairs."""
        selected = self.points() if metric_name is None else self.points_for_metric(metric_name)
        if limit is not None:
            selected = selected[:limit]
        for point in selected:
            yield point, self.reference_trace(point, oversample_factor=oversample_factor)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeploymentSpec:
    """Picklable recipe for a monitoring deployment on any supported fabric.

    This is the deployment counterpart of
    :class:`~repro.telemetry.dataset.DatasetConfig`: a hashable worker
    address from which a survey worker process deterministically rebuilds
    the fabric, the collector attachment, the deployment's parameter
    draws and the resulting :class:`DeploymentTraceSource` -- traces
    regenerate bit-identically because everything derives from the seed.

    Attributes
    ----------
    topology:
        The fabric parameters: a leaf-spine
        :class:`~repro.network.topology.TopologySpec` (the default), a
        multi-tier Clos :class:`~repro.network.topology.FatTreeSpec`, or
        a :class:`~repro.network.topology.WanRingSpec`.
    trace_duration / seed / broadband_fraction:
        Passed to :class:`MonitoringDeployment`.
    oversample_factor:
        How much faster than the production polling rate the reference
        traces are generated (sampling policies need headroom to probe
        above today's rate).
    with_collector:
        Attach a telemetry collector (the hop-count anchor of the cost
        model).  Datacenter fabrics attach it to every spine/core; a WAN
        ring attaches it at the spec's ``collector_site`` gateway, which
        makes hop counts -- and transmission prices -- asymmetric across
        sites.
    """

    topology: FabricSpec = TopologySpec()
    trace_duration: float = 43200.0
    seed: int = 11
    broadband_fraction: float = 0.11
    oversample_factor: float = 4.0
    with_collector: bool = True

    def __post_init__(self) -> None:
        if self.oversample_factor < 1:
            raise ValueError("oversample_factor must be >= 1")

    def build_topology(self) -> tuple[nx.Graph, str | None]:
        """The fabric graph plus the collector node name (None if detached)."""
        graph = self.topology.build()
        if not self.with_collector:
            return graph, None
        if isinstance(self.topology, WanRingSpec):
            collector = attach_collector(graph, [self.topology.gateway()])
        else:
            collector = attach_collector(graph)
        return graph, collector

    def open(self) -> "DeploymentTraceSource":
        """Materialise the trace source this spec describes (the WorkerSpec hook)."""
        graph, collector = self.build_topology()
        deployment = MonitoringDeployment(graph, trace_duration=self.trace_duration,
                                          seed=self.seed,
                                          broadband_fraction=self.broadband_fraction)
        return DeploymentTraceSource(deployment, oversample_factor=self.oversample_factor,
                                     spec=self, collector=collector)


class DeploymentTraceSource(BaseTraceSource):
    """A monitoring deployment served through the ``TraceSource`` protocol.

    Pairs are the deployment's measurement points grouped by metric (the
    survey order), each exposed as a
    :class:`~repro.telemetry.dataset.TracePair` whose device id is the
    fabric node name -- so a
    :class:`~repro.network.cost.TelemetryCostAccountant` built on the
    same topology prices every record with real hop counts.  Traces are
    the deployment's reference traces: generated ``oversample_factor``
    times faster than the metric's production polling rate, which gives
    sampling policies the headroom to probe above today's rate.

    Multi-worker runs need a :class:`DeploymentSpec` (build the source
    via ``spec.open()`` or pass ``spec=``); a source wrapped around an
    arbitrary hand-built deployment still serves single-process surveys.
    """

    def __init__(self, deployment: MonitoringDeployment,
                 oversample_factor: float = 4.0,
                 spec: DeploymentSpec | None = None,
                 collector: str | None = None) -> None:
        if oversample_factor < 1:
            raise ValueError("oversample_factor must be >= 1")
        self.deployment = deployment
        self.oversample_factor = oversample_factor
        self.spec = spec
        self.collector = collector
        self._metric_order = list(dict.fromkeys((*deployment.switch_metrics,
                                                 *deployment.server_metrics)))
        self._pairs: list[TracePair] | None = None
        self._by_metric: dict[str, list[TracePair]] = {}

    def accountant(self, cost_model: CostModel | None = None) -> TelemetryCostAccountant:
        """A cost accountant on this deployment's own fabric and collector.

        Prices every measurement point with its real hop count -- the same
        graph the traces come from, so consumers do not have to rebuild
        the topology a second time.  Without a collector (a spec built
        with ``with_collector=False`` or a hand-built deployment), falls
        back to the accountant's ``default_hops`` for every device.
        """
        if self.collector is None:
            return TelemetryCostAccountant(cost_model=cost_model)
        return TelemetryCostAccountant(cost_model=cost_model,
                                       topology=self.deployment.topology,
                                       collector=self.collector)

    # ------------------------------------------------------------------
    def pairs(self) -> list[TracePair]:
        if self._pairs is None:
            by_metric = {name: [] for name in self._metric_order}
            for point in self.deployment.points():
                by_metric[point.metric.name].append(
                    TracePair(point.metric, point.profile, point.parameters))
            self._by_metric = by_metric
            self._pairs = [pair for name in self._metric_order for pair in by_metric[name]]
        return self._pairs

    def pairs_for_metric(self, metric_name: str) -> list[TracePair]:
        self.pairs()
        return list(self._by_metric.get(metric_name, []))

    def metric_names(self) -> list[str]:
        return list(self._metric_order)

    @property
    def trace_duration(self) -> float:
        return self.deployment.trace_duration

    def worker_spec(self) -> DeploymentSpec:
        if self.spec is None:
            raise ValueError(
                "this DeploymentTraceSource wraps a hand-built deployment and has no "
                "picklable spec; construct it via DeploymentSpec(...).open() to use "
                "multi-worker surveys")
        return self.spec

    def pair_content_token(self, pair: TracePair) -> str:
        """Identity of one reference trace: the deployment spec plus the
        point's generative parameters.

        Hand-built deployments (no spec) raise via :meth:`worker_spec`:
        without a frozen recipe their traces have no stable identity to
        cache under, and a store keyed on object state would serve stale
        records.
        """
        return (f"{self.worker_spec()!r}|oversample={self.oversample_factor!r}|"
                f"{pair.metric.name}|{pair.device.device_id}|{pair.parameters!r}")

    def load(self, pair: TracePair) -> TimeSeries:
        """Generate the reference trace for one measurement point.

        Same generation path as :meth:`MonitoringDeployment.reference_trace`
        (identical parameters, seed and interval), keyed off the pair view.
        """
        interval = pair.metric.poll_interval / self.oversample_factor
        rng = np.random.default_rng(pair.parameters.seed)
        return generate_trace(pair.metric, pair.parameters,
                              self.deployment.trace_duration, interval=interval,
                              rng=rng, device_name=pair.device.device_id)
