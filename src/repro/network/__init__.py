"""Datacenter network substrate: topologies, monitoring deployment and cost model."""

from .cost import CostBreakdown, CostModel, TelemetryCostAccountant
from .monitoring import (DeploymentSpec, DeploymentTraceSource, MonitoredPoint,
                         MonitoringDeployment)
from .topology import (NodeRole, TopologySpec, attach_collector, build_fat_tree,
                       build_leaf_spine, servers, switches)

__all__ = [
    "NodeRole", "TopologySpec", "build_leaf_spine", "build_fat_tree",
    "switches", "servers", "attach_collector",
    "CostModel", "CostBreakdown", "TelemetryCostAccountant",
    "MonitoredPoint", "MonitoringDeployment",
    "DeploymentSpec", "DeploymentTraceSource",
]
