"""Network substrate: topologies, monitoring deployment and cost model."""

from .cost import CostBreakdown, CostModel, TelemetryCostAccountant
from .monitoring import (DeploymentSpec, DeploymentTraceSource, MonitoredPoint,
                         MonitoringDeployment)
from .topology import (FabricSpec, FatTreeSpec, NodeRole, TopologySpec, WanRingSpec,
                       attach_collector, build_fat_tree, build_leaf_spine,
                       build_wan_ring, servers, switches)

__all__ = [
    "NodeRole", "TopologySpec", "FatTreeSpec", "WanRingSpec", "FabricSpec",
    "build_leaf_spine", "build_fat_tree", "build_wan_ring",
    "switches", "servers", "attach_collector",
    "CostModel", "CostBreakdown", "TelemetryCostAccountant",
    "MonitoredPoint", "MonitoringDeployment",
    "DeploymentSpec", "DeploymentTraceSource",
]
