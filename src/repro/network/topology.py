"""Network topologies: leaf-spine, folded-Clos (fat-tree) and WAN-ring fabrics.

The paper's cost argument is about fleet scale: every polled sample is
collected on a device, crosses the fabric to a collector, and lands in a
store.  To account for those costs we need an actual fabric.  The builders
here produce :class:`networkx.Graph` objects whose nodes are switches,
servers and collectors (tagged with a ``role`` attribute) and whose edges
carry link capacities; :mod:`repro.network.cost` walks them to price
telemetry movement.

Each fabric also has a frozen, picklable spec (:class:`TopologySpec`,
:class:`FatTreeSpec`, :class:`WanRingSpec`) with a ``build()`` method, so
deployment specs shipped to survey workers can describe *any* fabric, not
just leaf-spine.  WAN rings are deliberately asymmetric: the collector
sits at one site, so hop counts (and therefore transmission prices) vary
per device -- the placement-sensitivity knob the scenario matrix turns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

__all__ = [
    "NodeRole",
    "TopologySpec",
    "FatTreeSpec",
    "WanRingSpec",
    "FabricSpec",
    "build_leaf_spine",
    "build_fat_tree",
    "build_wan_ring",
    "switches",
    "servers",
    "attach_collector",
]


class NodeRole:
    """Node ``role`` attribute values used across the network package."""

    SPINE = "spine"
    LEAF = "leaf"
    CORE = "core"
    AGGREGATION = "aggregation"
    EDGE = "edge"
    POP = "pop"
    SERVER = "server"
    COLLECTOR = "collector"

    SWITCH_ROLES = (SPINE, LEAF, CORE, AGGREGATION, EDGE, POP)


@dataclass(frozen=True)
class TopologySpec:
    """Parameters of a leaf-spine fabric.

    Attributes
    ----------
    num_spines / num_leaves:
        Switch counts in each tier.
    servers_per_leaf:
        Hosts attached to each leaf (ToR) switch.
    leaf_uplink_gbps / server_link_gbps:
        Link capacities recorded on the edges (used by the cost model to
        express telemetry bandwidth as a fraction of capacity).
    """

    num_spines: int = 4
    num_leaves: int = 8
    servers_per_leaf: int = 16
    leaf_uplink_gbps: float = 100.0
    server_link_gbps: float = 25.0

    def __post_init__(self) -> None:
        if self.num_spines < 1 or self.num_leaves < 1 or self.servers_per_leaf < 0:
            raise ValueError("spine/leaf/server counts must be positive")
        if self.leaf_uplink_gbps <= 0 or self.server_link_gbps <= 0:
            raise ValueError("link capacities must be positive")

    def build(self) -> nx.Graph:
        """Build this fabric (see :func:`build_leaf_spine`)."""
        return build_leaf_spine(self)


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters of a k-ary fat-tree (multi-tier folded Clos) fabric.

    Attributes
    ----------
    k:
        Fat-tree arity (even, >= 2): (k/2)^2 cores, k pods of k/2
        aggregation + k/2 edge switches, k/2 servers per edge switch.
    server_link_gbps / fabric_link_gbps:
        Link capacities recorded on the edges.
    """

    k: int = 4
    server_link_gbps: float = 25.0
    fabric_link_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError("k must be an even integer >= 2")
        if self.server_link_gbps <= 0 or self.fabric_link_gbps <= 0:
            raise ValueError("link capacities must be positive")

    def build(self) -> nx.Graph:
        """Build this fabric (see :func:`build_fat_tree`)."""
        return build_fat_tree(self.k, server_link_gbps=self.server_link_gbps,
                              fabric_link_gbps=self.fabric_link_gbps)


@dataclass(frozen=True)
class WanRingSpec:
    """Parameters of a WAN ring: sites of PoP routers joined in a cycle.

    Unlike the datacenter fabrics, a WAN ring has no central tier to hang
    a collector from: the collector lives at *one* site (``collector_site``),
    so devices at the far side of the ring pay up to ``num_sites // 2``
    more transit hops per sample than local ones.  That asymmetry is the
    point -- it is what makes hop-priced transmission cost sensitive to
    placement in the scenario matrix.

    Attributes
    ----------
    num_sites:
        Sites on the ring (>= 1; a single-site "ring" is a degenerate
        but valid deployment -- one PoP, zero transit hops).
    routers_per_site:
        PoP routers at each site, connected in a full mesh locally; the
        first router of each site is the site's ring gateway.
    servers_per_site:
        Hosts attached round-robin to the site's routers.
    collector_site:
        Index of the site the collector attaches to.
    ring_link_gbps / site_link_gbps / server_link_gbps:
        Capacities of inter-site, intra-site and server links.
    """

    num_sites: int = 6
    routers_per_site: int = 2
    servers_per_site: int = 4
    collector_site: int = 0
    ring_link_gbps: float = 40.0
    site_link_gbps: float = 100.0
    server_link_gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        if self.routers_per_site < 1:
            raise ValueError("routers_per_site must be >= 1")
        if self.servers_per_site < 0:
            raise ValueError("servers_per_site must be >= 0")
        if not 0 <= self.collector_site < self.num_sites:
            raise ValueError(f"collector_site {self.collector_site} outside "
                             f"[0, {self.num_sites})")
        if min(self.ring_link_gbps, self.site_link_gbps,
               self.server_link_gbps) <= 0:
            raise ValueError("link capacities must be positive")

    def build(self) -> nx.Graph:
        """Build this fabric (see :func:`build_wan_ring`)."""
        return build_wan_ring(self)

    def gateway(self) -> str:
        """Name of the collector site's ring gateway router."""
        return f"pop-{self.collector_site}-0"


#: Any frozen fabric spec with a ``build()`` method.
FabricSpec = TopologySpec | FatTreeSpec | WanRingSpec


def build_leaf_spine(spec: TopologySpec | None = None) -> nx.Graph:
    """Build a two-tier leaf-spine fabric.

    Every leaf connects to every spine; servers hang off leaves.  Node
    attributes: ``role`` (see :class:`NodeRole`); edge attributes:
    ``capacity_gbps``.
    """
    spec = spec or TopologySpec()
    graph = nx.Graph(kind="leaf_spine", spec=spec)
    spines = [f"spine-{i}" for i in range(spec.num_spines)]
    leaves = [f"leaf-{i}" for i in range(spec.num_leaves)]
    for name in spines:
        graph.add_node(name, role=NodeRole.SPINE)
    for name in leaves:
        graph.add_node(name, role=NodeRole.LEAF)
    for leaf, spine in itertools.product(leaves, spines):
        graph.add_edge(leaf, spine, capacity_gbps=spec.leaf_uplink_gbps)
    for leaf_index, leaf in enumerate(leaves):
        for server_index in range(spec.servers_per_leaf):
            server = f"server-{leaf_index}-{server_index}"
            graph.add_node(server, role=NodeRole.SERVER)
            graph.add_edge(server, leaf, capacity_gbps=spec.server_link_gbps)
    return graph


def build_fat_tree(k: int = 4, server_link_gbps: float = 25.0,
                   fabric_link_gbps: float = 100.0) -> nx.Graph:
    """Build a canonical k-ary fat-tree (k even): (k/2)^2 cores, k pods.

    Each pod has k/2 aggregation and k/2 edge switches; each edge switch
    hosts k/2 servers.  This is the standard folded-Clos construction used
    throughout the datacenter literature.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be an even integer >= 2")
    half = k // 2
    graph = nx.Graph(kind="fat_tree", k=k)

    cores = [f"core-{i}" for i in range(half * half)]
    for name in cores:
        graph.add_node(name, role=NodeRole.CORE)

    for pod in range(k):
        aggs = [f"agg-{pod}-{i}" for i in range(half)]
        edges = [f"edge-{pod}-{i}" for i in range(half)]
        for name in aggs:
            graph.add_node(name, role=NodeRole.AGGREGATION, pod=pod)
        for name in edges:
            graph.add_node(name, role=NodeRole.EDGE, pod=pod)
        for agg, edge in itertools.product(aggs, edges):
            graph.add_edge(agg, edge, capacity_gbps=fabric_link_gbps)
        # Each aggregation switch i connects to cores [i*half, (i+1)*half).
        for agg_index, agg in enumerate(aggs):
            for offset in range(half):
                core = cores[agg_index * half + offset]
                graph.add_edge(agg, core, capacity_gbps=fabric_link_gbps)
        for edge_index, edge in enumerate(edges):
            for server_index in range(half):
                server = f"server-{pod}-{edge_index}-{server_index}"
                graph.add_node(server, role=NodeRole.SERVER, pod=pod)
                graph.add_edge(server, edge, capacity_gbps=server_link_gbps)
    return graph


def build_wan_ring(spec: WanRingSpec | None = None) -> nx.Graph:
    """Build a WAN ring: full-mesh PoP sites joined in a cycle.

    Site ``i``'s gateway router ``pop-i-0`` connects to the gateways of
    sites ``i-1`` and ``i+1`` (mod ``num_sites``); a single-site spec has
    no ring links at all.  Servers attach round-robin to their site's
    routers.  Node attributes: ``role`` and ``site``; edge attributes:
    ``capacity_gbps``.
    """
    spec = spec or WanRingSpec()
    graph = nx.Graph(kind="wan_ring", spec=spec)
    gateways: list[str] = []
    for site in range(spec.num_sites):
        routers = [f"pop-{site}-{i}" for i in range(spec.routers_per_site)]
        for name in routers:
            graph.add_node(name, role=NodeRole.POP, site=site)
        for left, right in itertools.combinations(routers, 2):
            graph.add_edge(left, right, capacity_gbps=spec.site_link_gbps)
        gateways.append(routers[0])
        for server_index in range(spec.servers_per_site):
            server = f"server-{site}-{server_index}"
            router = routers[server_index % spec.routers_per_site]
            graph.add_node(server, role=NodeRole.SERVER, site=site)
            graph.add_edge(server, router, capacity_gbps=spec.server_link_gbps)
    if spec.num_sites > 1:
        for site, gateway in enumerate(gateways):
            neighbour = gateways[(site + 1) % spec.num_sites]
            graph.add_edge(gateway, neighbour, capacity_gbps=spec.ring_link_gbps)
    return graph


def switches(graph: nx.Graph) -> list[str]:
    """All switch nodes (any non-server, non-collector role)."""
    return [node for node, data in graph.nodes(data=True)
            if data.get("role") in NodeRole.SWITCH_ROLES]


def servers(graph: nx.Graph) -> list[str]:
    """All server nodes."""
    return [node for node, data in graph.nodes(data=True)
            if data.get("role") == NodeRole.SERVER]


def attach_collector(graph: nx.Graph, attachment_points: list[str] | None = None,
                     name: str = "collector-0",
                     link_gbps: float = 100.0) -> str:
    """Attach a telemetry collector node to the fabric.

    By default the collector attaches to every spine/core switch (a
    centrally reachable placement); pass explicit ``attachment_points`` for
    other placements.  Returns the collector node name.
    """
    if name in graph:
        raise ValueError(f"node {name!r} already exists")
    if attachment_points is None:
        attachment_points = [node for node, data in graph.nodes(data=True)
                             if data.get("role") in (NodeRole.SPINE, NodeRole.CORE)]
        if not attachment_points:
            attachment_points = switches(graph)[:1]
    if not attachment_points:
        raise ValueError("no attachment points available for the collector")
    missing = [node for node in attachment_points if node not in graph]
    if missing:
        raise ValueError(f"attachment points not in graph: {missing}")
    graph.add_node(name, role=NodeRole.COLLECTOR)
    for node in attachment_points:
        graph.add_edge(name, node, capacity_gbps=link_gbps)
    return name
