"""Generic columnar record storage: sinks, block formats and the store.

The fleet pipelines produce *columnar blocks* -- struct-of-arrays chunks
of homogeneous outcome rows -- and stream them into a
:class:`RecordSink`.  The Nyquist survey's
:class:`~repro.analysis.survey.RecordBlock` and the policy survey's
:class:`~repro.pipeline.evaluation.PolicyRecordBlock` are two such block
types; this package holds the storage machinery they share, so a new
record-producing pipeline only has to define its block class.

Layout:

* :mod:`repro.records.blocks` -- :class:`BlockSchema`-driven
  serialisation (:class:`ColumnarBlock`), the quarantine failure records
  and the block-type registry.
* :mod:`repro.records.rcb` -- the ``.rcb`` memory-mapped binary block
  format: loads are zero-copy ``np.memmap`` views, writes deterministic
  byte for byte.  npz/csv remain as legacy paths behind the same
  sniffing.
* :mod:`repro.records.sinks` -- :class:`MemoryRecordSink` and
  :class:`SpillingRecordSink` (one file per block, numerically ordered).
* :mod:`repro.records.store` -- :class:`RecordStore`, the
  content-addressed cache behind ``run_survey(..., store=...)``
  incremental reruns, keyed by :class:`PairFingerprint`.
"""

from .blocks import (BlockSchema, ColumnarBlock, ColumnSpec, FailureRecord,
                     FailureRecordBlock, ScalarSpec, _BLOCK_TYPES,
                     _ensure_registry, register_block_type,
                     registered_block_types)
from .rcb import (RCB_FORMAT, RCB_MAGIC, BlockFileRef, load_rcb_any,
                  read_rcb_header)
from .sinks import MemoryRecordSink, RecordSink, SpillingRecordSink
from .store import (STORE_SCHEMA_VERSION, PairFingerprint, RecordStore,
                    StoreVerification, fingerprint_slice)

__all__ = [
    "ColumnSpec",
    "ScalarSpec",
    "BlockSchema",
    "ColumnarBlock",
    "FailureRecord",
    "FailureRecordBlock",
    "RecordSink",
    "MemoryRecordSink",
    "SpillingRecordSink",
    "register_block_type",
    "registered_block_types",
    "RCB_MAGIC",
    "RCB_FORMAT",
    "BlockFileRef",
    "read_rcb_header",
    "load_rcb_any",
    "STORE_SCHEMA_VERSION",
    "PairFingerprint",
    "RecordStore",
    "StoreVerification",
    "fingerprint_slice",
]
