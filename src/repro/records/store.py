"""Content-addressed persistent record store for incremental reruns.

A :class:`RecordStore` is a directory of published survey results keyed
by :class:`PairFingerprint` -- a sha256 digest over everything that can
change a record slice's bytes: the code schema version, which fan-out
produced it (survey vs policy survey), the slice address (metric, offset,
limit, chunk size), the estimator/policy/accountant parameters, and one
*content token* per pair (trace-file bytes for measured fleets, the
generative spec identity for synthetic ones).  Two runs that agree on the
fingerprint are guaranteed byte-identical record blocks, so
``run_survey(..., store=...)`` serves hits straight from the store as
memory-mapped ``.rcb`` blocks and recomputes only the misses.

Entries are published atomically: blocks and metadata are staged in a
scratch directory next to the entry and renamed into place in one
``os.rename``, so concurrent writers race benignly (the loser discards
its staging copy) and readers never observe a half-written entry.
Quarantined slices are never handed to :meth:`RecordStore.put` -- a
salvaged block is not the byte-identical answer a healthy rerun would
produce, so caching it would launder the failure into future runs.

Everything in this module derives cache identity from hashed content
only: no ``id()``, no wall-clock, and every directory listing is wrapped
in ``sorted(...)`` (the repro-lint RL008 contract).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from .rcb import load_rcb_any

__all__ = ["STORE_SCHEMA_VERSION", "PairFingerprint", "RecordStore",
           "StoreVerification", "fingerprint_slice"]

#: Version of the record *semantics* baked into every fingerprint.  Bump
#: it whenever a block schema, estimator default or classification rule
#: changes meaning, and every pre-existing store entry silently becomes
#: a miss instead of serving stale bytes.
STORE_SCHEMA_VERSION = "records/1"

#: Format tag of the store directory layout itself.
_STORE_FORMAT = "repro-record-store/1"


@dataclass(frozen=True)
class PairFingerprint:
    """Identity of one record slice: what produced it, from what inputs.

    ``params_token`` is the canonical string of the estimator (or policy
    suite + cost accountant) parameters; ``content_digest`` is a sha256
    over the ordered per-pair content tokens of the slice (see
    ``BaseTraceSource.pair_content_token``).  The slice address is part
    of the key because records are cached at ``batch_offsets``
    granularity -- the unit both fan-outs already compute and spill.
    """

    kind: str
    metric_name: str
    offset: int
    limit: int
    chunk_size: int
    params_token: str
    content_digest: str
    schema_version: str = STORE_SCHEMA_VERSION

    @property
    def digest(self) -> str:
        """The sha256 hex key this fingerprint addresses in a store."""
        payload = "\n".join((
            self.schema_version, self.kind, self.metric_name,
            str(self.offset), str(self.limit), str(self.chunk_size),
            self.params_token, self.content_digest))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_slice(kind: str, source: Any, metric_name: str, offset: int,
                      limit: int, chunk_size: int, params_token: str,
                      ) -> PairFingerprint:
    """Fingerprint one (metric, offset, limit) slice of ``source``.

    Raises ``ValueError`` for sources that cannot vouch for their
    content (anything not implementing ``pair_content_token``), because a
    cache keyed on an unstable identity would serve wrong answers.
    """
    token_of = getattr(source, "pair_content_token", None)
    if token_of is None:
        raise ValueError(
            f"{type(source).__name__} does not implement pair_content_token(); "
            "it cannot be fingerprinted for a RecordStore")
    pairs = source.pairs_for_metric(metric_name)[offset:offset + limit]
    hasher = hashlib.sha256()
    for pair in pairs:
        hasher.update(token_of(pair).encode("utf-8"))
        hasher.update(b"\n")
    return PairFingerprint(kind=kind, metric_name=metric_name, offset=offset,
                           limit=limit, chunk_size=chunk_size,
                           params_token=params_token,
                           content_digest=hasher.hexdigest())


def _sha256_file(path: Path) -> str:
    """The sha256 hex digest of a file's bytes, read in bounded chunks."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class StoreVerification:
    """Result of :meth:`RecordStore.verify`: a bit-rot audit of the store.

    ``problems`` lists every mismatch found (each naming the offending
    path): a block whose bytes no longer hash to the digest recorded at
    publication time, a missing or unreadable file, or a block-count
    mismatch against the entry's metadata.  ``unverified`` lists entries
    published before per-block digests were recorded -- they cannot be
    audited, only re-published.
    """

    entries: int
    blocks: int
    problems: tuple[str, ...]
    unverified: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.problems


class RecordStore:
    """A content-addressed, atomically-published cache of record blocks.

    Layout::

        <directory>/store.json                    format tag
        <directory>/objects/<aa>/<digest>/meta.json
        <directory>/objects/<aa>/<digest>/block-NNNNN.rcb

    where ``<aa>`` is the digest's first two hex characters (the usual
    fan-out that keeps any one directory small) and the blocks are the
    slice's record blocks in production order.  :meth:`get` returns them
    as mmap-backed views; :meth:`put` publishes a new entry atomically
    and is idempotent -- republishing an existing digest is a no-op, and
    two processes publishing the same digest race benignly.
    """

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        marker_path = self.directory / "store.json"
        if marker_path.exists():
            try:
                tag = json.loads(marker_path.read_text()).get("format")
            except (OSError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"corrupt record store marker {marker_path}: {error}") from error
            if tag != _STORE_FORMAT:
                raise ValueError(f"record store {self.directory} has format "
                                 f"{tag!r}, expected {_STORE_FORMAT!r}")
        else:
            marker_path.write_text(
                json.dumps({"format": _STORE_FORMAT,
                            "schema_version": STORE_SCHEMA_VERSION},
                           sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def _entry_dir(self, fingerprint: PairFingerprint) -> Path:
        digest = fingerprint.digest
        return self.directory / "objects" / digest[:2] / digest

    def __contains__(self, fingerprint: PairFingerprint) -> bool:
        return (self._entry_dir(fingerprint) / "meta.json").exists()

    def get(self, fingerprint: PairFingerprint) -> list[Any] | None:
        """The slice's blocks as mmap-backed views, or None on a miss."""
        entry = self._entry_dir(fingerprint)
        if not (entry / "meta.json").exists():
            return None
        return [load_rcb_any(path) for path in sorted(entry.glob("block-*.rcb"))]

    def put(self, fingerprint: PairFingerprint, blocks: Sequence[Any]) -> None:
        """Publish the slice's blocks under ``fingerprint`` atomically."""
        entry = self._entry_dir(fingerprint)
        if (entry / "meta.json").exists():
            return
        staging = entry.parent / (entry.name + ".staging")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        block_digests = []
        for index, block in enumerate(blocks):
            block_path = staging / f"block-{index:05d}.rcb"
            block.save_rcb(block_path)
            # Digest of the bytes as published: verify() re-hashes the
            # files later and any divergence is bit-rot by definition.
            block_digests.append(_sha256_file(block_path))
        meta = {
            "digest": fingerprint.digest,
            "kind": fingerprint.kind,
            "metric_name": fingerprint.metric_name,
            "offset": fingerprint.offset,
            "limit": fingerprint.limit,
            "chunk_size": fingerprint.chunk_size,
            "schema_version": fingerprint.schema_version,
            "blocks": len(blocks),
            "block_digests": block_digests,
            "rows": sum(len(block) for block in blocks),
        }
        (staging / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n")
        try:
            os.rename(staging, entry)
        except OSError:
            # Another writer published this digest first; both copies are
            # byte-identical by construction, so drop ours.
            shutil.rmtree(staging, ignore_errors=True)

    # ------------------------------------------------------------------
    def entries(self) -> Iterable[Path]:
        """The published entry directories, in digest order."""
        objects = self.directory / "objects"
        if not objects.is_dir():
            return []
        return [entry
                for shard in sorted(objects.iterdir())
                for entry in sorted(shard.iterdir())
                if (entry / "meta.json").exists()]

    @property
    def rows(self) -> int:
        """Total record rows published in the store."""
        total = 0
        for entry in self.entries():
            total += int(json.loads((entry / "meta.json").read_text())["rows"])
        return total

    # ------------------------------------------------------------------
    def verify(self) -> StoreVerification:
        """Re-hash every published block against its recorded digest.

        Publication is atomic, so any divergence found here happened
        *after* the entry was published -- disk bit-rot, truncation, or
        someone editing the store by hand.  Nothing is repaired: a bad
        entry should be deleted so the next run recomputes and
        re-publishes it.
        """
        entries = 0
        blocks = 0
        problems: list[str] = []
        unverified: list[str] = []
        for entry in self.entries():
            entries += 1
            meta_path = entry / "meta.json"
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
                problems.append(f"{meta_path}: unreadable metadata ({error})")
                continue
            block_paths = sorted(entry.glob("block-*.rcb"))
            declared = meta.get("blocks")
            if declared != len(block_paths):
                problems.append(f"{entry}: metadata declares {declared} block "
                                f"file(s) but {len(block_paths)} are present")
            digests = meta.get("block_digests")
            if digests is None:
                unverified.append(f"{entry}: published before per-block digests "
                                  "were recorded; delete it to re-publish "
                                  "verifiably")
                continue
            for block_path, expected in zip(block_paths, digests):
                blocks += 1
                try:
                    actual = _sha256_file(block_path)
                except OSError as error:
                    problems.append(f"{block_path}: unreadable ({error})")
                    continue
                if actual != expected:
                    problems.append(f"{block_path}: sha256 {actual[:12]}... does "
                                    f"not match the published digest "
                                    f"{str(expected)[:12]}... (bit rot)")
        return StoreVerification(entries=entries, blocks=blocks,
                                 problems=tuple(problems),
                                 unverified=tuple(unverified))
