"""Column-spec-driven block serialisation and the block-type registry.

A block class participates by subclassing :class:`ColumnarBlock` with a
:class:`BlockSchema` (``_SCHEMA``) describing its block-level scalars and
per-row columns -- the schema drives one shared implementation of the
``save_npz``/``load_npz``, ``save_csv``/``load_csv`` and
``save_rcb``/``load_rcb`` round trips, the ``sniff_npz``/``sniff_csv``/
``sniff_rcb`` classmethods a spill directory is re-opened with, and the
dtype/shape validation of ``__post_init__`` -- and by registering via
:func:`register_block_type`.  The first schema column doubles as the row
counter of spill files (the existing block types lead with
``device_ids``), so adding a new record-producing pipeline is a schema
declaration plus whatever view/constructor helpers it wants.
"""

from __future__ import annotations

import csv
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Iterator, Literal, Mapping, Self, Sequence

import numpy as np

__all__ = [
    "ColumnSpec",
    "ScalarSpec",
    "BlockSchema",
    "ColumnarBlock",
    "FailureRecord",
    "FailureRecordBlock",
    "register_block_type",
    "registered_block_types",
]


# ----------------------------------------------------------------------
# Column-spec-driven block serialisation
# ----------------------------------------------------------------------
#: Supported column kinds and their numpy dtypes.
_COLUMN_DTYPES = {
    "float": np.float64,
    "int": np.int64,
    "int8": np.int8,
    "bool": bool,
    "str": np.str_,
}


@dataclass(frozen=True)
class ColumnSpec:
    """One per-row column of a columnar record block.

    ``kind`` selects the dtype and the csv cell conversion (floats are
    written with ``repr`` so they round-trip bit for bit, ints/bools as
    integers, strings verbatim); ``csv_name`` overrides the csv header
    cell when it differs from the attribute name (e.g. the plural
    ``device_ids`` array serialises under a singular ``device_id``
    header).
    """

    name: str
    kind: Literal["float", "int", "int8", "bool", "str"]
    csv_name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _COLUMN_DTYPES:
            raise ValueError(f"unknown column kind {self.kind!r}; "
                             f"choose one of {sorted(_COLUMN_DTYPES)}")

    @property
    def header(self) -> str:
        return self.csv_name if self.csv_name is not None else self.name

    @property
    def dtype(self) -> type:
        return _COLUMN_DTYPES[self.kind]

    def to_cell(self, value: Any) -> str | int:
        """Serialise one array element for a csv data row."""
        if self.kind == "float":
            return repr(float(value))
        if self.kind == "str":
            return str(value)
        return int(value)

    def from_cell(self, cell: str) -> float | int | bool | str:
        """Parse one csv cell back into a python value for the column."""
        if self.kind == "float":
            return float(cell)
        if self.kind == "str":
            return cell
        if self.kind == "bool":
            return bool(int(cell))
        return int(cell)


@dataclass(frozen=True)
class ScalarSpec:
    """One block-level string scalar (metric name, policy name, ...).

    Scalars are stored three ways, all driven by this spec: as a 0-d npz
    member, as a leading ``# {label}={value}`` comment line in csv files
    (so zero-row blocks round-trip without losing them), and repeated as
    the first csv data columns (the historical row format, which also
    keeps the files greppable).  The rcb header carries them in its JSON
    ``scalars`` mapping.
    """

    name: str
    label: str

    @property
    def comment_prefix(self) -> str:
        return f"# {self.label}="


@dataclass(frozen=True)
class BlockSchema:
    """Declarative layout of one columnar block type.

    The scalars come first in the csv header (by ``name``), followed by
    the columns (by ``header``); npz members are scalars + columns by
    ``name``.  The first column is the reference every other column's
    row count is validated against -- and the one sinks touch to count
    rows of a spill file cheaply.
    """

    scalars: tuple[ScalarSpec, ...]
    columns: tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a block schema needs at least one column")
        names = [spec.name for spec in self.scalars] + [spec.name for spec in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in block schema: {names}")

    @property
    def csv_header(self) -> tuple[str, ...]:
        return (*(spec.name for spec in self.scalars),
                *(spec.header for spec in self.columns))

    @property
    def member_names(self) -> tuple[str, ...]:
        return (*(spec.name for spec in self.scalars),
                *(spec.name for spec in self.columns))


class ColumnarBlock:
    """Shared machinery of every columnar record block (mixin).

    Subclasses are frozen dataclasses whose fields are the schema's
    scalars (strings) followed by its columns (1-D arrays); ``_SCHEMA``
    drives validation, the npz/csv/rcb round trips and spill-file
    sniffing.  Blocks loaded from ``.rcb`` files hold zero-copy
    ``np.memmap``-backed views, so re-opening a finished survey touches
    only the pages an aggregation actually reads.
    """

    _SCHEMA: ClassVar[BlockSchema]

    def __post_init__(self) -> None:
        schema = self._SCHEMA
        for spec in schema.columns:
            object.__setattr__(self, spec.name,
                               np.asarray(getattr(self, spec.name), dtype=spec.dtype))
        rows = getattr(self, schema.columns[0].name).shape[0]
        for spec in schema.columns:
            array = getattr(self, spec.name)
            if array.ndim != 1 or array.shape[0] != rows:
                raise ValueError(f"column {spec.name!r} must be 1-D with {rows} rows, "
                                 f"got shape {array.shape}")

    def __len__(self) -> int:
        return int(getattr(self, self._SCHEMA.columns[0].name).shape[0])

    # ------------------------- disk round trip -------------------------
    def save_npz(self, path: Path) -> None:
        schema = self._SCHEMA
        members = {spec.name: np.array(getattr(self, spec.name))
                   for spec in schema.scalars}
        members.update({spec.name: getattr(self, spec.name) for spec in schema.columns})
        np.savez_compressed(path, **members)

    @classmethod
    def load_npz(cls, path: Path) -> Self:
        schema = cls._SCHEMA
        try:
            with np.load(path) as data:
                fields = {spec.name: str(data[spec.name]) for spec in schema.scalars}
                fields.update({spec.name: data[spec.name] for spec in schema.columns})
                return cls(**fields)
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as error:
            raise ValueError(
                f"corrupt or truncated record file {path}: {error}") from error

    def save_csv(self, path: Path) -> None:
        schema = self._SCHEMA
        with path.open("w", newline="") as handle:
            for spec in schema.scalars:
                handle.write(f"{spec.comment_prefix}{getattr(self, spec.name)}\n")
            writer = csv.writer(handle)
            writer.writerow(schema.csv_header)
            scalar_cells = [str(getattr(self, spec.name)) for spec in schema.scalars]
            columns = [(spec, getattr(self, spec.name)) for spec in schema.columns]
            for index in range(len(self)):
                writer.writerow(scalar_cells
                                + [spec.to_cell(array[index]) for spec, array in columns])

    @classmethod
    def load_csv(cls, path: Path) -> Self:
        schema = cls._SCHEMA
        scalars = {spec.name: "" for spec in schema.scalars}
        columns: dict[str, list] = {spec.name: [] for spec in schema.columns}
        with path.open(newline="") as handle:
            line = handle.readline()
            if not line.strip():
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 "missing CSV header")
            # Leading comment lines carry the block-level scalars (optional,
            # in schema order, so legacy files without them still load).
            for spec in schema.scalars:
                if line.startswith(spec.comment_prefix):
                    scalars[spec.name] = line[len(spec.comment_prefix):].rstrip("\r\n")
                    line = handle.readline()
            if line.rstrip("\r\n").split(",") != list(schema.csv_header):
                raise ValueError(f"corrupt or truncated record file {path}: "
                                 f"unexpected CSV header {line.rstrip()!r}")
            reader = csv.reader(handle)
            width = len(schema.csv_header)
            for line_number, row in enumerate(reader, start=1):
                try:
                    if len(row) < width:
                        raise ValueError(f"expected {width} cells, got {len(row)}")
                    for offset, spec in enumerate(schema.scalars):
                        scalars[spec.name] = row[offset]
                    base = len(schema.scalars)
                    for offset, spec in enumerate(schema.columns):
                        columns[spec.name].append(spec.from_cell(row[base + offset]))
                except (IndexError, ValueError) as error:
                    raise ValueError(f"corrupt or truncated record file {path}, "
                                     f"data row {line_number}: {error}") from error
        return cls(**scalars, **columns)

    def save_rcb(self, path: Path) -> None:
        """Write the block as one memory-mappable ``.rcb`` file."""
        from .rcb import write_rcb
        write_rcb(self, path)

    @classmethod
    def load_rcb(cls, path: Path) -> Self:
        """Load an ``.rcb`` file as zero-copy ``np.memmap``-backed views."""
        from .rcb import read_rcb
        return read_rcb(cls, path)

    # ---------------------- spill-type sniffing ------------------------
    @classmethod
    def sniff_npz(cls, member_names: Sequence[str]) -> bool:
        """True when an npz spill file holds exactly this schema's members."""
        return set(member_names) == set(cls._SCHEMA.member_names)

    @classmethod
    def sniff_csv(cls, head_lines: Sequence[str]) -> bool:
        """True when a csv spill file's leading lines carry this schema's header."""
        header = ",".join(cls._SCHEMA.csv_header)
        return any(line.rstrip("\r\n") == header for line in head_lines)

    @classmethod
    def sniff_rcb(cls, header: Mapping[str, Any]) -> bool:
        """True when a parsed rcb header describes exactly this schema."""
        members = (set(header.get("scalars", {}))
                   | {column["name"] for column in header.get("columns", ())})
        return members == set(cls._SCHEMA.member_names)


#: Block classes that spill files may contain, in registration order.
#: Populated by :func:`register_block_type` when the defining modules are
#: imported (``repro``'s package init imports them all).
_BLOCK_TYPES: list[type] = []


def register_block_type(cls: type) -> type:
    """Class decorator: make ``cls`` discoverable when re-opening spill files."""
    if cls not in _BLOCK_TYPES:
        _BLOCK_TYPES.append(cls)
    return cls


def registered_block_types() -> Sequence[type]:
    """The registered block classes (mainly for diagnostics and tests)."""
    return tuple(_BLOCK_TYPES)


def _ensure_registry() -> None:
    """Import the built-in block-type modules so sniffing can see them.

    ``repro.records`` deliberately does not import the block modules at
    module level (they import *this* package); the lazy import here only
    runs when a caller re-opens a spill directory without naming a type.
    """
    from ..analysis import survey as _survey  # noqa: F401
    from ..pipeline import evaluation as _evaluation  # noqa: F401


# ----------------------------------------------------------------------
# Quarantine failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureRecord:
    """One quarantined unit of pipeline work (a pair, or a dump line).

    ``stage`` names the pipeline step that failed (``"trace"``,
    ``"estimate"``, ``"evaluate"``, ``"parse"``); ``provenance`` pins the
    failing input (trace file path, ``dump.jsonl:LINE``, batch spec) so a
    quarantined run can be triaged without re-running it.
    """

    metric_name: str
    device_id: str
    stage: str
    error_type: str
    message: str
    provenance: str

    @classmethod
    def from_pair(cls, pair: Any, metric_name: str, stage: str, error: Exception,
                  position: int) -> Self:
        """Build the failure row for one (metric, device) pair.

        ``position`` is the pair's index in its metric's pair list (the
        slice address the batch specs use); pairs that carry a trace file
        (measured fleets) get it appended to the provenance.
        """
        provenance = f"{metric_name}[{position}]"
        file = getattr(pair, "file", None)
        if file:
            provenance = f"{provenance} {file}"
        return cls(metric_name=metric_name, device_id=pair.device.device_id,
                   stage=stage, error_type=type(error).__name__,
                   message=str(error), provenance=provenance)


@register_block_type
@dataclass(frozen=True)
class FailureRecordBlock(ColumnarBlock):
    """Columnar chunk of quarantined failures, one row per failed unit.

    Flows through the same :class:`~repro.records.RecordSink` machinery
    as the outcome blocks (quarantined runs spill failures next to their
    records), so it follows the sink conventions: ``device_ids`` leads
    the schema and is the row counter of spill files.
    """

    device_ids: np.ndarray
    metric_names: np.ndarray
    stages: np.ndarray
    error_types: np.ndarray
    messages: np.ndarray
    provenances: np.ndarray

    _SCHEMA: ClassVar[BlockSchema] = BlockSchema(
        scalars=(),
        columns=(
            ColumnSpec("device_ids", "str", csv_name="device_id"),
            ColumnSpec("metric_names", "str", csv_name="metric_name"),
            ColumnSpec("stages", "str", csv_name="stage"),
            ColumnSpec("error_types", "str", csv_name="error_type"),
            ColumnSpec("messages", "str", csv_name="message"),
            ColumnSpec("provenances", "str", csv_name="provenance"),
        ),
    )

    @classmethod
    def from_failures(cls, failures: Sequence[FailureRecord]) -> Self:
        """Pack an ordered batch of failures into one columnar block."""
        return cls(
            device_ids=np.array([f.device_id for f in failures], dtype=np.str_),
            metric_names=np.array([f.metric_name for f in failures], dtype=np.str_),
            stages=np.array([f.stage for f in failures], dtype=np.str_),
            error_types=np.array([f.error_type for f in failures], dtype=np.str_),
            messages=np.array([f.message for f in failures], dtype=np.str_),
            provenances=np.array([f.provenance for f in failures], dtype=np.str_),
        )

    def failures(self) -> Iterator[FailureRecord]:
        """Stream the rows back as :class:`FailureRecord` views."""
        for index in range(len(self)):
            yield FailureRecord(
                metric_name=str(self.metric_names[index]),
                device_id=str(self.device_ids[index]),
                stage=str(self.stages[index]),
                error_type=str(self.error_types[index]),
                message=str(self.messages[index]),
                provenance=str(self.provenances[index]),
            )
