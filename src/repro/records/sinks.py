"""Record sinks: the streaming destinations for columnar record blocks.

:class:`MemoryRecordSink` keeps blocks in RAM; :class:`SpillingRecordSink`
streams each block to one ``records-NNNNN.npz``/``.csv``/``.rcb`` file so
memory stays bounded by a single block regardless of fleet size, and
re-opens an existing directory (resuming its row count) for later
aggregation.  Spill files are ordered by their *numeric* index, not
lexicographically, so a directory that has grown past ``records-00009``
(or holds hand-named unpadded files) streams back in append order.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Literal

import numpy as np

from .blocks import _BLOCK_TYPES, ColumnarBlock, _ensure_registry
from .rcb import read_rcb_header

__all__ = ["RecordSink", "MemoryRecordSink", "SpillingRecordSink"]

#: The numeric index embedded in a spill file name.
_SPILL_INDEX = re.compile(r"records-(\d+)\.")


def _spill_order(path: Path) -> tuple[int, str]:
    """Sort key: numeric index first (``records-10`` after ``records-2``)."""
    match = _SPILL_INDEX.match(path.name)
    return (int(match.group(1)) if match else -1, path.name)


class RecordSink(ABC):
    """Streaming destination for columnar record blocks.

    The producing pipeline pushes blocks as it creates them and the
    aggregations pull them back with :meth:`blocks`; a sink therefore
    decides the memory/durability trade-off (RAM vs disk) without the
    rest of the pipeline caring.
    """

    @abstractmethod
    def append(self, block: ColumnarBlock) -> None:
        """Accept the next chunk of outcome rows."""

    @abstractmethod
    def blocks(self) -> Iterator:
        """Stream the stored chunks back in append order."""

    @property
    @abstractmethod
    def rows(self) -> int:
        """Total rows stored so far."""


class MemoryRecordSink(RecordSink):
    """Keeps every block in RAM (the default for paper-scale runs)."""

    def __init__(self) -> None:
        self._blocks: list = []
        self._rows = 0

    def append(self, block: ColumnarBlock) -> None:
        self._blocks.append(block)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        return iter(self._blocks)

    @property
    def rows(self) -> int:
        return self._rows


class SpillingRecordSink(RecordSink):
    """Streams every block straight to disk; memory stays O(one block).

    Each appended block becomes one ``records-NNNNN.npz`` (``.csv``,
    ``.rcb``) file under ``directory``; aggregations stream the files
    back one at a time, so neither writing nor reading ever holds more
    than a single ``chunk_size`` block in memory.  Opening a sink on a
    directory that already contains record files resumes from them, which
    is how a spilled run is re-opened in a later process (e.g.
    ``SurveyResult(sink=SpillingRecordSink(path))`` or
    ``PolicySurveyResult(sink=SpillingRecordSink(path))``).

    ``fmt`` picks the spill serialisation: ``"npz"`` (compressed, the
    default), ``"csv"`` (greppable), or ``"rcb"`` (memory-mapped -- blocks
    stream back as zero-copy views, the fastest re-open).  ``fmt=None``
    infers it from the files already in the directory, defaulting to npz
    on a fresh one.

    ``block_type`` names the block class the sink stores.  When omitted it
    is inferred: from the first appended block on a fresh directory, or by
    sniffing the first existing spill file on re-open -- so one sink class
    serves every registered block type.
    """

    _FMTS = ("npz", "csv", "rcb")

    def __init__(self, directory: Path | str,
                 fmt: Literal["npz", "csv", "rcb"] | None = "npz",
                 block_type: type | None = None) -> None:
        if fmt is not None and fmt not in self._FMTS:
            raise ValueError(f"unknown spill format {fmt!r}; "
                             "choose 'npz', 'csv' or 'rcb'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if fmt is None:
            fmt = self._sniff_fmt()
        self.fmt = fmt
        self._block_type = block_type
        self._files: list[Path] = sorted(self.directory.glob(f"records-*.{fmt}"),
                                         key=_spill_order)
        self._next_index = 1 + max((_spill_order(path)[0] for path in self._files),
                                   default=-1)
        self._rows = sum(self._count_rows(path) for path in self._files)

    def _sniff_fmt(self) -> str:
        """Infer the spill format from the directory's existing files."""
        for fmt in self._FMTS:
            if any(True for _ in self.directory.glob(f"records-*.{fmt}")):
                return fmt
        return "npz"

    # ------------------------------------------------------------------
    @property
    def block_type(self) -> type | None:
        """The block class this sink stores (None until known)."""
        return self._block_type

    def _sniff_type(self, path: Path) -> type:
        """Infer the block class of an existing spill file."""
        _ensure_registry()
        if self.fmt == "npz":
            with np.load(path) as data:
                members = tuple(data.files)
            for cls in _BLOCK_TYPES:
                if cls.sniff_npz(members):
                    return cls
        elif self.fmt == "rcb":
            header = read_rcb_header(path)
            for cls in _BLOCK_TYPES:
                if cls.__name__ == header["block_type"] or cls.sniff_rcb(header):
                    return cls
        else:
            with path.open() as handle:
                head = tuple(handle.readline() for _ in range(4))
            for cls in _BLOCK_TYPES:
                if cls.sniff_csv(head):
                    return cls
        raise ValueError(
            f"spill file {path} does not match any registered record block type "
            f"({[cls.__name__ for cls in _BLOCK_TYPES]}); the file is corrupt or "
            "from an incompatible version")

    def _resolve_type(self) -> type:
        if self._block_type is None:
            if not self._files:
                raise ValueError(
                    f"empty spill directory {self.directory} and no block_type given; "
                    "append a block first or pass block_type=")
            self._block_type = self._sniff_type(self._files[0])
        return self._block_type

    def _count_rows(self, path: Path) -> int:
        """Row count of one spill file without loading its full columns.

        npz members decompress lazily, so touching only ``device_ids``
        skips the wide float columns; rcb headers carry the row count
        outright; for csv a line count suffices (comment lines carry
        block-level scalars, not rows).  Keeps re-opening a 100k+-row
        spill directory cheap.
        """
        if self.fmt == "npz":
            with np.load(path) as data:
                return int(data["device_ids"].shape[0])
        if self.fmt == "rcb":
            return int(read_rcb_header(path)["rows"])
        with path.open() as handle:
            return max(sum(1 for line in handle if not line.startswith("#")) - 1, 0)

    def _load(self, path: Path) -> ColumnarBlock:
        cls = self._resolve_type()
        loader = getattr(cls, f"load_{self.fmt}")
        return loader(path)

    def append(self, block: ColumnarBlock) -> None:
        if self._block_type is None:
            self._block_type = self._sniff_type(self._files[0]) if self._files \
                else type(block)
        if not isinstance(block, self._block_type):
            raise ValueError(
                f"sink at {self.directory} stores {self._block_type.__name__} blocks; "
                f"cannot append a {type(block).__name__}")
        path = self.directory / f"records-{self._next_index:05d}.{self.fmt}"
        getattr(block, f"save_{self.fmt}")(path)
        self._next_index += 1
        self._files.append(path)
        self._rows += len(block)

    def blocks(self) -> Iterator:
        for path in self._files:
            yield self._load(path)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def files(self) -> list[Path]:
        """The spill files written so far, in append order."""
        return list(self._files)
