"""The ``.rcb`` memory-mapped columnar block format.

An rcb file is a self-describing, mmap-friendly serialisation of one
:class:`~repro.records.ColumnarBlock`:

``````
offset 0    magic  b"RCB1"
offset 4    uint32 little-endian header length H
offset 8    UTF-8 JSON header (H bytes, sorted keys):
              {"block_type": "RecordBlock",
               "columns": [{"dtype": "<f8", "name": ..., "nbytes": ...,
                            "offset": ...}, ...],
               "data_bytes": ..., "format": "rcb/1", "rows": ...,
               "scalars": {"metric_name": ...}}
data_start  = 8 + H rounded up to the next 64-byte boundary
            zero padding up to data_start, then the raw little-endian
            column payloads; each column's ``offset`` is relative to
            data_start and 64-byte aligned, ``nbytes`` == rows * itemsize.
``````

Columns load as read-only ``np.memmap`` views (``np.asarray`` onto the
schema dtype is zero-copy, pinned by tests), so re-opening a block costs
one page of header I/O instead of an npz decompress, and aggregations
fault in only the columns they touch.  Writes are deterministic byte for
byte (sorted JSON keys, zero padding), which is what lets CI compare a
warm store rerun to a cold run with ``cmp``.  Any structural damage --
bad magic, unparseable header, payload size mismatch -- raises
``ValueError`` naming the file.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Mapping

import numpy as np

__all__ = ["RCB_MAGIC", "RCB_FORMAT", "BlockFileRef", "write_rcb", "read_rcb",
           "read_rcb_header", "load_rcb_any"]

#: Leading magic bytes of every rcb file.
RCB_MAGIC = b"RCB1"

#: Format tag carried in the JSON header.
RCB_FORMAT = "rcb/1"

#: Column payloads (and the data section itself) start on this alignment,
#: so memmap views are cache-line aligned regardless of header size.
_ALIGN = 64

#: Hard ceiling on the JSON header, to reject garbage length prefixes
#: before attempting a huge read.
_MAX_HEADER_BYTES = 1 << 24


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _corrupt(path: Path, reason: str) -> ValueError:
    return ValueError(f"corrupt or truncated record file {path}: {reason}")


@dataclass(frozen=True)
class BlockFileRef:
    """A pointer to one rcb block file, cheap to pickle across processes.

    Pool workers return these instead of the blocks themselves when a
    spilling sink or record store is in use: the parent re-opens the file
    as mmap views, so the block's column arrays never ride through the
    pickle pipe.
    """

    path: str

    def load(self) -> Any:
        """Materialise the referenced block (mmap-backed views)."""
        return load_rcb_any(Path(self.path))


def _little_endian(array: np.ndarray) -> np.ndarray:
    """The array with a little-endian (or byte-order-free) dtype."""
    if array.dtype.byteorder == ">":
        return array.astype(array.dtype.newbyteorder("<"))
    return array


def write_rcb(block: Any, path: Path) -> None:
    """Serialise ``block`` to ``path`` in the rcb layout above."""
    schema = block._SCHEMA
    arrays = []
    columns = []
    offset = 0
    for spec in schema.columns:
        array = _little_endian(np.ascontiguousarray(getattr(block, spec.name)))
        offset = _align(offset)
        columns.append({"name": spec.name, "dtype": array.dtype.str,
                        "offset": offset, "nbytes": int(array.nbytes)})
        arrays.append((offset, array))
        offset += array.nbytes
    header = {
        "format": RCB_FORMAT,
        "block_type": type(block).__name__,
        "rows": len(block),
        "scalars": {spec.name: str(getattr(block, spec.name))
                    for spec in schema.scalars},
        "columns": columns,
        "data_bytes": offset,
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    data_start = _align(8 + len(header_bytes))
    with Path(path).open("wb") as handle:
        handle.write(RCB_MAGIC)
        handle.write(struct.pack("<I", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(b"\0" * (data_start - 8 - len(header_bytes)))
        for column_offset, array in arrays:
            handle.seek(data_start + column_offset)
            handle.write(array.tobytes())
        # A trailing zero-row column leaves the file short of data_bytes;
        # pad so the size check on load stays exact.
        handle.truncate(data_start + header["data_bytes"])


def _read_header(path: Path, handle: BinaryIO) -> tuple[dict, int]:
    """Parse and validate the header; return it with the data offset."""
    prefix = handle.read(8)
    if len(prefix) < 8 or prefix[:4] != RCB_MAGIC:
        raise _corrupt(path, "missing RCB1 magic")
    (header_length,) = struct.unpack("<I", prefix[4:8])
    if header_length > _MAX_HEADER_BYTES:
        raise _corrupt(path, f"implausible header length {header_length}")
    header_bytes = handle.read(header_length)
    if len(header_bytes) < header_length:
        raise _corrupt(path, "file ends inside the header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _corrupt(path, f"unreadable header: {error}") from error
    if not isinstance(header, dict) or header.get("format") != RCB_FORMAT:
        raise _corrupt(path, f"unknown format tag {header!r:.80}")
    for key in ("block_type", "rows", "scalars", "columns", "data_bytes"):
        if key not in header:
            raise _corrupt(path, f"header is missing {key!r}")
    if not isinstance(header["data_bytes"], int) or header["data_bytes"] < 0:
        raise _corrupt(path, f"bad data size {header['data_bytes']!r}")
    data_start = _align(8 + header_length)
    size = Path(path).stat().st_size
    if size != data_start + header["data_bytes"]:
        raise _corrupt(path, f"expected {data_start + header['data_bytes']} bytes, "
                             f"found {size}")
    rows = header["rows"]
    if not isinstance(rows, int) or rows < 0:
        raise _corrupt(path, f"bad row count {rows!r}")
    for column in header["columns"]:
        try:
            dtype = np.dtype(column["dtype"])
            if dtype.byteorder == ">":
                raise _corrupt(path, f"column {column.get('name')!r} is big-endian")
            if column["nbytes"] != rows * dtype.itemsize:
                raise _corrupt(path, f"column {column.get('name')!r} payload is "
                                     f"{column['nbytes']} bytes, expected "
                                     f"{rows * dtype.itemsize}")
            if column["offset"] + column["nbytes"] > header["data_bytes"]:
                raise _corrupt(path, f"column {column.get('name')!r} overruns the file")
        except (TypeError, KeyError) as error:
            raise _corrupt(path, f"bad column descriptor: {error}") from error
    return header, data_start


def read_rcb_header(path: Path) -> dict:
    """Parse (and structurally validate) just the JSON header of ``path``.

    Cheap -- one small read plus a stat -- so sinks use it to count rows
    and sniff block types without touching the column payloads.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            header, _ = _read_header(path, handle)
    except OSError as error:
        raise _corrupt(path, str(error)) from error
    return header


def read_rcb(cls: type, path: Path) -> Any:
    """Load ``path`` as an instance of ``cls`` with mmap-backed columns."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            header, data_start = _read_header(path, handle)
    except OSError as error:
        raise _corrupt(path, str(error)) from error
    schema = cls._SCHEMA
    by_name = {column["name"]: column for column in header["columns"]}
    fields: dict[str, Any] = {}
    for spec in schema.scalars:
        if spec.name not in header["scalars"]:
            raise _corrupt(path, f"missing scalar {spec.name!r}")
        fields[spec.name] = str(header["scalars"][spec.name])
    rows = header["rows"]
    for spec in schema.columns:
        column = by_name.get(spec.name)
        if column is None:
            raise _corrupt(path, f"missing column {spec.name!r}")
        dtype = np.dtype(column["dtype"])
        if column["nbytes"] == 0:
            fields[spec.name] = np.empty(0, dtype=dtype)
        else:
            fields[spec.name] = np.memmap(path, mode="r", dtype=dtype,
                                          shape=(rows,),
                                          offset=data_start + column["offset"])
    return cls(**fields)


def load_rcb_any(path: Path) -> Any:
    """Load an rcb file whose block type is not known in advance.

    Resolves the class through the block-type registry -- by the header's
    ``block_type`` name first, falling back to member sniffing for files
    written by a renamed class -- and raises ``ValueError`` naming the
    file when nothing claims it.
    """
    from .blocks import _BLOCK_TYPES, _ensure_registry
    path = Path(path)
    header = read_rcb_header(path)
    _ensure_registry()
    for cls in _BLOCK_TYPES:
        if cls.__name__ == header["block_type"]:
            return read_rcb(cls, path)
    for cls in _BLOCK_TYPES:
        if cls.sniff_rcb(header):
            return read_rcb(cls, path)
    raise ValueError(
        f"spill file {path} does not match any registered record block type "
        f"({[cls.__name__ for cls in _BLOCK_TYPES]}); the file is corrupt or "
        "from an incompatible version")
