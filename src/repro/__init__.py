"""repro: reproduction of "Towards a Cost vs. Quality Sweet Spot for Monitoring Networks".

The library treats datacenter monitoring metrics as sampled signals and
provides:

* :mod:`repro.core` -- Nyquist-rate estimation from traces (§3.2), dual-
  frequency aliasing detection (§4.1), an adaptive sampling controller
  (§4.2), low-pass reconstruction (§4.3) and the §6 extensions
  (ergodicity, multivariate signals).
* :mod:`repro.signals` -- the time-series substrate (containers, spectra,
  generators, noise, filters).
* :mod:`repro.telemetry` -- synthetic production telemetry for the 14
  metric families of the paper's survey, standing in for the proprietary
  traces.
* :mod:`repro.network` -- datacenter topologies, monitoring deployments and
  the collection/transmission/storage/analysis cost model.
* :mod:`repro.pipeline` -- sampling policies (fixed-rate baseline,
  Nyquist-static, adaptive) and the cost-vs-quality evaluator.
* :mod:`repro.analysis` -- the fleet survey (Figures 1, 4, 5) and reporting
  helpers.
* :mod:`repro.faults` -- fault-isolated execution (bounded retry, broken-
  pool recovery, quarantine failure records) and the seeded deterministic
  fault-injection (chaos) layer.
* :mod:`repro.scenarios` -- adversarial workload transforms (regime
  shifts, counter pathologies, blackout/backfill) and the
  (scenario x fabric x policy) matrix harness that maps where the
  paper's cost ordering holds and where it inverts.

Quickstart::

    from repro.signals import generators
    from repro.core import estimate_nyquist_rate

    trace = generators.multi_tone([0.001, 0.004], duration=6 * 3600, sampling_rate=1.0)
    estimate = estimate_nyquist_rate(trace)
    print(estimate.nyquist_rate, estimate.reduction_ratio)
"""

from . import analysis, core, faults, network, pipeline, scenarios, signals, telemetry
from .core import (AdaptiveSamplingController, ControllerConfig, DualRateAliasingDetector,
                   NyquistEstimate, NyquistEstimator, estimate_nyquist_rate,
                   nyquist_round_trip, oversampling_ratio)
from .faults import BatchExecutionError, FaultInjectingTraceSource, FaultPlan, RetryPolicy
from .signals import IrregularTimeSeries, Spectrum, TimeSeries

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "signals", "core", "telemetry", "network", "pipeline", "analysis", "faults",
    "scenarios",
    "TimeSeries", "IrregularTimeSeries", "Spectrum",
    "NyquistEstimator", "NyquistEstimate", "estimate_nyquist_rate", "oversampling_ratio",
    "nyquist_round_trip", "AdaptiveSamplingController", "ControllerConfig",
    "DualRateAliasingDetector",
    "FaultPlan", "FaultInjectingTraceSource", "RetryPolicy", "BatchExecutionError",
]
