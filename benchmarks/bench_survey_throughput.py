"""Survey throughput: the batched spectral engine vs the scalar reference path.

The ROADMAP north star is fleet-scale analysis ("millions of users", "as
fast as the hardware allows").  The survey's hot loop is the Section 3.2
estimator applied to every (metric, device) pair; this benchmark measures
that stage in both backends on a >=1000-pair fleet:

* **scalar** -- :meth:`NyquistEstimator.estimate` per trace, the reference
  implementation;
* **batched** -- :meth:`NyquistEstimator.estimate_batch` over the
  (length, interval)-grouped trace matrices that
  :meth:`FleetDataset.trace_batches` produces, one ``rfft(axis=-1)`` and
  one vectorised energy cut-off per chunk.

Trace *generation* is excluded from the timed region (both backends
consume the same pre-materialised matrices), so the numbers isolate the
estimation engine itself.  The benchmark asserts the two backends return
equivalent estimates and that the batched engine is at least 5x faster;
it also cross-checks full ``run_survey`` records on the CLI-default
280-pair survey.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.analysis.survey import run_survey
from repro.core.nyquist import NyquistEstimator
from repro.signals.timeseries import TimeSeries
from repro.telemetry.dataset import DatasetConfig, FleetDataset

#: Fleet size for the throughput comparison (>= 1000 pairs).
THROUGHPUT_PAIRS = 1120

#: Required speed-up of the batched engine over the scalar reference.
REQUIRED_SPEEDUP = 5.0


def _best_of(callable_, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_engine_speedup(output_dir):
    dataset = FleetDataset(DatasetConfig(pair_count=THROUGHPUT_PAIRS, seed=7))
    batches = list(dataset.trace_batches(chunk_size=512))
    total_pairs = sum(len(batch) for batch in batches)
    assert total_pairs >= 1000
    estimator = NyquistEstimator()

    def run_scalar():
        return [estimator.estimate(TimeSeries(row, batch.interval))
                for batch in batches for row in batch.values]

    def run_batched():
        return [estimate for batch in batches
                for estimate in estimator.estimate_batch(batch.values, batch.interval)]

    scalar_seconds, scalar_estimates = _best_of(run_scalar)
    batched_seconds, batched_estimates = _best_of(run_batched)
    speedup = scalar_seconds / batched_seconds

    for a, b in zip(scalar_estimates, batched_estimates):
        assert a.reliable == b.reliable
        assert a.reason == b.reason
        assert np.isclose(a.nyquist_rate, b.nyquist_rate)

    rows = [
        {"backend": "scalar", "pairs": total_pairs, "seconds": scalar_seconds,
         "pairs_per_second": total_pairs / scalar_seconds},
        {"backend": "batched", "pairs": total_pairs, "seconds": batched_seconds,
         "pairs_per_second": total_pairs / batched_seconds},
        {"backend": "speedup", "pairs": total_pairs, "seconds": speedup,
         "pairs_per_second": float("nan")},
    ]
    write_csv(output_dir / "survey_throughput.csv", rows)
    print(f"\n=== Survey engine throughput ({total_pairs} pairs) ===")
    print(format_table(rows))

    assert speedup >= REQUIRED_SPEEDUP, \
        f"batched engine only {speedup:.1f}x faster (need >= {REQUIRED_SPEEDUP}x)"


def test_backends_equivalent_on_default_survey():
    """CLI-default 280-pair survey: record-for-record backend equivalence."""
    dataset = FleetDataset(DatasetConfig(pair_count=280, seed=7))
    scalar = run_survey(dataset, backend="scalar")
    batched = run_survey(dataset, backend="batched")
    assert len(scalar.records) == len(batched.records) == 280
    for a, b in zip(scalar.records, batched.records):
        assert (a.metric_name, a.device_id) == (b.metric_name, b.device_id)
        assert a.category is b.category
        assert a.reliable == b.reliable
        assert np.isclose(a.nyquist_rate, b.nyquist_rate)
    assert scalar.headline() == batched.headline()
