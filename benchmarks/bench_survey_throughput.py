"""Survey throughput: scalar vs batched engine, multi-worker and out-of-core pipeline.

The ROADMAP north star is fleet-scale analysis ("millions of users", "as
fast as the hardware allows").  This benchmark measures the survey path at
three levels and records every number in ``BENCH_survey.json`` (see
``conftest.update_bench_json``) so the perf trajectory is tracked across
PRs:

* **engine** -- the Section 3.2 estimator over pre-materialised trace
  matrices, scalar (:meth:`NyquistEstimator.estimate` per trace) vs
  batched (:meth:`NyquistEstimator.estimate_batch` per chunk); asserts
  the batched engine is at least ``REPRO_BENCH_MIN_SPEEDUP``x faster
  (default 5) and that both backends agree estimate for estimate.
* **pipeline** -- end-to-end ``run_survey`` (generation + estimation)
  single-process vs ``workers=2``; the records must be identical.  On a
  1-CPU host the worker pool adds overhead rather than speed, so no
  speed-up is asserted -- the number is recorded for multi-core hosts.
* **fleet** -- a 25k+-pair out-of-core survey (``workers=2`` and a
  :class:`SpillingRecordSink`), the scale the paper's always-on fleet
  monitoring argument needs; memory stays bounded by ``chunk_size``
  because every record block is spilled to npz as it is produced.  Size
  via ``REPRO_BENCH_FLEET_PAIRS`` (default 25200; CI smoke uses a small
  fleet to stay under its time budget).
* **worker_serialisation** -- ``workers=2`` returning pickled arrays
  (memory sink) vs ``.rcb`` spill-file refs (spilling sink); records the
  before/after of the worker-return-path fix so multi-worker out-of-core
  runs stop paying double serialisation.
* **measured** -- the recorded-telemetry path: the same fleet exported to
  a per-pair trace-file directory and re-surveyed through
  :class:`MeasuredFleetDataset` (``workers=2``, file-offset batch
  specs).  Records must be byte-identical to the generated in-memory
  survey; both throughputs land in ``BENCH_survey.json`` so the cost of
  reading traces from disk (vs regenerating them) stays visible.  Size
  via ``REPRO_BENCH_MEASURED_PAIRS`` (default 392).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.analysis.survey import SpillingRecordSink, run_survey
from repro.core.nyquist import NyquistEstimator
from repro.signals.timeseries import TimeSeries
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.measured import MeasuredFleetDataset

from conftest import update_bench_json

#: Fleet size for the engine throughput comparison (>= 1000 pairs).
THROUGHPUT_PAIRS = 1120

#: Required speed-up of the batched engine over the scalar reference.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5"))

#: Fleet size for the out-of-core pipeline benchmark.
FLEET_PAIRS = int(os.environ.get("REPRO_BENCH_FLEET_PAIRS", "25200"))

#: Chunk/spill granularity of the out-of-core run.
FLEET_CHUNK_SIZE = 512

#: Fleet size for the measured-path (recorded trace files) benchmark.
MEASURED_PAIRS = int(os.environ.get("REPRO_BENCH_MEASURED_PAIRS", "392"))


def _best_of(callable_, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_engine_speedup(output_dir):
    dataset = FleetDataset(DatasetConfig(pair_count=THROUGHPUT_PAIRS, seed=7))
    batches = list(dataset.trace_batches(chunk_size=512))
    total_pairs = sum(len(batch) for batch in batches)
    assert total_pairs >= 1000
    estimator = NyquistEstimator()

    def run_scalar():
        return [estimator.estimate(TimeSeries(row, batch.interval))
                for batch in batches for row in batch.values]

    def run_batched():
        return [estimate for batch in batches
                for estimate in estimator.estimate_batch(batch.values, batch.interval)]

    scalar_seconds, scalar_estimates = _best_of(run_scalar)
    batched_seconds, batched_estimates = _best_of(run_batched)
    speedup = scalar_seconds / batched_seconds

    for a, b in zip(scalar_estimates, batched_estimates):
        assert a.reliable == b.reliable
        assert a.reason == b.reason
        assert np.isclose(a.nyquist_rate, b.nyquist_rate)

    rows = [
        {"backend": "scalar", "pairs": total_pairs, "seconds": scalar_seconds,
         "pairs_per_second": total_pairs / scalar_seconds},
        {"backend": "batched", "pairs": total_pairs, "seconds": batched_seconds,
         "pairs_per_second": total_pairs / batched_seconds},
        {"backend": "speedup", "pairs": total_pairs, "seconds": speedup,
         "pairs_per_second": float("nan")},
    ]
    write_csv(output_dir / "survey_throughput.csv", rows)
    update_bench_json("engine", {
        "pairs": total_pairs,
        "scalar_pairs_per_second": total_pairs / scalar_seconds,
        "batched_pairs_per_second": total_pairs / batched_seconds,
        "speedup": speedup,
    })
    print(f"\n=== Survey engine throughput ({total_pairs} pairs) ===")
    print(format_table(rows))

    assert speedup >= REQUIRED_SPEEDUP, \
        f"batched engine only {speedup:.1f}x faster (need >= {REQUIRED_SPEEDUP}x)"


def test_pipeline_workers_identical_records(output_dir):
    """End-to-end run_survey: single-process vs worker pool, identical records."""
    dataset = FleetDataset(DatasetConfig(pair_count=392, seed=7))

    start = time.perf_counter()
    single = run_survey(dataset, workers=1, chunk_size=FLEET_CHUNK_SIZE)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_survey(dataset, workers=2, chunk_size=FLEET_CHUNK_SIZE)
    pooled_seconds = time.perf_counter() - start

    assert len(single) == len(pooled) == 392
    for a, b in zip(single.iter_blocks(), pooled.iter_blocks()):
        assert a.metric_name == b.metric_name
        assert np.array_equal(a.device_ids, b.device_ids)
        assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
        assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
        assert np.array_equal(a.category, b.category)
    assert single.headline() == pooled.headline()

    update_bench_json("pipeline", {
        "pairs": len(single),
        "workers1_pairs_per_second": len(single) / single_seconds,
        "workers2_pairs_per_second": len(pooled) / pooled_seconds,
        "workers": 2,
        "cpu_count": os.cpu_count(),
    })
    print(f"\n=== Survey pipeline (generation + estimation, {len(single)} pairs) ===")
    print(format_table([
        {"workers": 1, "seconds": single_seconds,
         "pairs_per_second": len(single) / single_seconds},
        {"workers": 2, "seconds": pooled_seconds,
         "pairs_per_second": len(pooled) / pooled_seconds},
    ]))


def test_fleet_scale_out_of_core_survey(output_dir, tmp_path):
    """A 25k+-pair survey: worker pool + spill-to-disk, memory bounded by chunk_size."""
    dataset = FleetDataset(DatasetConfig(pair_count=FLEET_PAIRS, seed=7))
    sink = SpillingRecordSink(tmp_path / "spool")

    start = time.perf_counter()
    result = run_survey(dataset, workers=2, chunk_size=FLEET_CHUNK_SIZE, sink=sink)
    seconds = time.perf_counter() - start

    assert len(result) == FLEET_PAIRS
    # The spill path was genuinely exercised: at least one file per full chunk.
    assert len(sink.files) >= FLEET_PAIRS // FLEET_CHUNK_SIZE
    headline = result.headline()
    assert headline["pairs"] == float(FLEET_PAIRS)
    assert 0.0 <= headline["oversampled_fraction"] <= 1.0

    spill_bytes = sum(path.stat().st_size for path in sink.files)
    update_bench_json("fleet", {
        "pairs": FLEET_PAIRS,
        "seconds": seconds,
        "pairs_per_second": FLEET_PAIRS / seconds,
        "chunk_size": FLEET_CHUNK_SIZE,
        "workers": 2,
        "spill_files": len(sink.files),
        "spill_bytes": spill_bytes,
        "oversampled_fraction": headline["oversampled_fraction"],
    })
    print("\n=== Out-of-core fleet survey ===")
    print(format_table([{
        "pairs": FLEET_PAIRS, "seconds": seconds,
        "pairs_per_second": FLEET_PAIRS / seconds,
        "spill_files": len(sink.files), "spill_mib": spill_bytes / 2 ** 20,
    }]))


def test_measured_vs_generated_throughput(output_dir, tmp_path):
    """Recorded-telemetry path: export the fleet, re-survey from trace files.

    The measured path must reproduce the generated in-memory survey byte
    for byte (same records, same order); the benchmark records the
    export cost and both survey throughputs so regenerating-vs-reading
    stays a measured trade-off.
    """
    dataset = FleetDataset(DatasetConfig(pair_count=MEASURED_PAIRS, seed=7))
    fleet_dir = tmp_path / "measured-fleet"

    start = time.perf_counter()
    dataset.export(fleet_dir)
    export_seconds = time.perf_counter() - start
    measured = MeasuredFleetDataset(fleet_dir)
    trace_bytes = sum(path.stat().st_size for path in (fleet_dir / "traces").iterdir())

    start = time.perf_counter()
    generated = run_survey(dataset, workers=2, chunk_size=FLEET_CHUNK_SIZE)
    generated_seconds = time.perf_counter() - start

    start = time.perf_counter()
    recorded = run_survey(measured, workers=2, chunk_size=FLEET_CHUNK_SIZE)
    recorded_seconds = time.perf_counter() - start

    assert len(generated) == len(recorded) == MEASURED_PAIRS
    for a, b in zip(generated.iter_blocks(), recorded.iter_blocks()):
        assert a.metric_name == b.metric_name
        assert np.array_equal(a.device_ids, b.device_ids)
        assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
        assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
        assert np.array_equal(a.category, b.category)
    assert generated.headline() == recorded.headline()

    update_bench_json("measured", {
        "pairs": MEASURED_PAIRS,
        "workers": 2,
        "export_seconds": export_seconds,
        "trace_bytes": trace_bytes,
        "generated_pairs_per_second": MEASURED_PAIRS / generated_seconds,
        "measured_pairs_per_second": MEASURED_PAIRS / recorded_seconds,
        "trace_format": "npz",
    })
    print(f"\n=== Measured vs generated survey ({MEASURED_PAIRS} pairs, workers=2) ===")
    print(format_table([
        {"path": "generated", "seconds": generated_seconds,
         "pairs_per_second": MEASURED_PAIRS / generated_seconds},
        {"path": "measured", "seconds": recorded_seconds,
         "pairs_per_second": MEASURED_PAIRS / recorded_seconds},
        {"path": "export", "seconds": export_seconds,
         "pairs_per_second": MEASURED_PAIRS / export_seconds},
    ]))


def test_worker_serialisation_modes(tmp_path):
    """Pickled-array returns vs .rcb spill-file refs at workers=2.

    Multi-worker runs used to return every result block as pickled numpy
    arrays through the pool's result pipe even when the parent was about
    to re-serialise them into a spilling sink -- making ``workers=2``
    *slower* than ``workers=1`` for out-of-core runs.  With a spilling
    sink (or a record store) in use, workers now write ``.rcb`` scratch
    files and ship only path refs.  Both modes are recorded so the
    serialisation trade-off stays visible; records must be identical.
    """
    pairs = 392
    dataset = FleetDataset(DatasetConfig(pair_count=pairs, seed=7))

    start = time.perf_counter()
    pickled = run_survey(dataset, workers=2, chunk_size=FLEET_CHUNK_SIZE)
    pickled_seconds = time.perf_counter() - start

    sink = SpillingRecordSink(tmp_path / "spool")
    start = time.perf_counter()
    spilled = run_survey(dataset, workers=2, chunk_size=FLEET_CHUNK_SIZE, sink=sink)
    spilled_seconds = time.perf_counter() - start

    assert len(pickled) == len(spilled) == pairs
    for a, b in zip(pickled.iter_blocks(), spilled.iter_blocks()):
        assert a.metric_name == b.metric_name
        assert np.array_equal(a.device_ids, b.device_ids)
        assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
        assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
    assert pickled.headline() == spilled.headline()

    update_bench_json("worker_serialisation", {
        "pairs": pairs,
        "workers": 2,
        "chunk_size": FLEET_CHUNK_SIZE,
        "pickled_return_seconds": pickled_seconds,
        "spill_ref_return_seconds": spilled_seconds,
        "pickled_pairs_per_second": pairs / pickled_seconds,
        "spill_ref_pairs_per_second": pairs / spilled_seconds,
        "cpu_count": os.cpu_count(),
    })
    print(f"\n=== Worker result serialisation ({pairs} pairs, workers=2) ===")
    print(format_table([
        {"mode": "pickled arrays (memory sink)", "seconds": pickled_seconds,
         "pairs_per_second": pairs / pickled_seconds},
        {"mode": ".rcb spill refs (spilling sink)", "seconds": spilled_seconds,
         "pairs_per_second": pairs / spilled_seconds},
    ]))


def test_backends_equivalent_on_default_survey():
    """CLI-default 280-pair survey: record-for-record backend equivalence."""
    dataset = FleetDataset(DatasetConfig(pair_count=280, seed=7))
    scalar = run_survey(dataset, backend="scalar")
    batched = run_survey(dataset, backend="batched")
    assert len(scalar.records) == len(batched.records) == 280
    for a, b in zip(scalar.records, batched.records):
        assert (a.metric_name, a.device_id) == (b.metric_name, b.device_id)
        assert a.category is b.category
        assert a.reliable == b.reliable
        assert np.isclose(a.nyquist_rate, b.nyquist_rate)
    assert scalar.headline() == batched.headline()
