"""Section 4.1: dual-frequency aliasing detection -- accuracy and overhead.

The paper proposes detecting under-sampling by polling at two rates f1 > f2
(f1/f2 non-integer) and comparing the spectra below f2/2; it notes that the
second stream "roughly doubles measurement cost" but argues the net saving
remains because deployments over-sample by far more than 2x.

This bench measures (a) the detector's accuracy over a sweep of candidate
rates around the true Nyquist rate of a known signal, and (b) the measured
cost overhead of the dual stream, confirming the paper's "about 2x" figure
(1 + the rate ratio, 1.6 by default).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, write_csv
from repro.core.aliasing import DualRateAliasingDetector
from repro.signals.generators import multi_tone

#: Underlying signal: tones at 1/600 and 1/240 Hz -> Nyquist rate 1/120 Hz.
TONE_FREQUENCIES = [1.0 / 600.0, 1.0 / 240.0]
TRUE_NYQUIST = 2.0 * max(TONE_FREQUENCIES)
CANDIDATE_RATES = [TRUE_NYQUIST * factor for factor in (0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0, 4.0)]


def sample(rate: float, duration: float = 12 * 3600.0):
    return multi_tone(TONE_FREQUENCIES, duration, rate, amplitudes=[4.0, 2.0], offset=10.0)


def sweep_detector():
    detector = DualRateAliasingDetector(rate_ratio=1.6, threshold=0.1)
    rows = []
    for candidate in CANDIDATE_RATES:
        slow = sample(candidate)
        fast = sample(candidate * detector.rate_ratio)
        verdict = detector.check_samples(slow, fast)
        dual_cost = len(slow) + len(fast)
        single_cost = len(slow)
        rows.append({
            "candidate_rate_hz": candidate,
            "rate_over_true_nyquist": candidate / TRUE_NYQUIST,
            "should_alias": candidate < TRUE_NYQUIST,
            "detected_aliased": verdict.aliased,
            "discrepancy": verdict.discrepancy,
            "dual_stream_overhead": dual_cost / single_cost,
        })
    return rows


def test_aliasing_detection_sweep(benchmark, output_dir):
    rows = benchmark(sweep_detector)
    write_csv(output_dir / "aliasing_detection_sweep.csv", rows)

    print("\n=== Section 4.1: dual-frequency aliasing detection sweep ===")
    print(format_table(rows))

    correct = sum(row["should_alias"] == row["detected_aliased"] for row in rows)
    # The detector must be right away from the boundary; allow at most one
    # miss right at the Nyquist boundary itself.
    assert correct >= len(rows) - 1
    # The dual stream costs ~(1 + rate_ratio)x of a single stream (§4.1's "roughly doubles").
    for row in rows:
        assert 2.3 <= row["dual_stream_overhead"] <= 2.8
