"""Record store: warm reruns must beat cold runs by a wide margin.

The store exists so fleet-scale reruns (new code, same data) cost disk
reads instead of trace generation + FFTs.  This benchmark pins that
contract on a 25k+-pair survey (size via ``REPRO_BENCH_STORE_PAIRS``;
CI smoke uses a small fleet):

* **cold vs warm** -- ``run_survey(store=...)`` twice against the same
  store directory.  The warm run must be 100 % cache hits, byte-identical
  to the cold run, and at least ``REPRO_BENCH_STORE_MIN_SPEEDUP``x
  faster (default 5).
* **mmap vs npz** -- re-opening the store's published ``.rcb`` blocks as
  memory maps vs re-parsing the same blocks from compressed npz, the
  legacy spill format.  The zero-copy path must win; both numbers land
  in ``BENCH_store.json`` so the format trade-off stays measured.

Results are recorded in ``benchmarks/output/BENCH_store.json`` and
uploaded by the CI ``store-smoke`` job.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.survey import run_survey
from repro.records import RecordStore, load_rcb_any
from repro.telemetry.dataset import DatasetConfig, FleetDataset

from conftest import BENCH_STORE_JSON, update_bench_json

#: Fleet size for the cold/warm comparison.
STORE_PAIRS = int(os.environ.get("REPRO_BENCH_STORE_PAIRS", "25200"))

#: Required speed-up of a fully-warm rerun over the cold run.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_BENCH_STORE_MIN_SPEEDUP", "5"))

#: Chunk/cache granularity (matches the out-of-core survey benches).
CHUNK_SIZE = 512


def _block_payloads(blocks) -> list:
    return [(type(block).__name__, block.metric_name,
             tuple(np.asarray(getattr(block, spec.name)).tobytes()
                   for spec in type(block)._SCHEMA.columns))
            for block in blocks]


def test_warm_rerun_speedup(tmp_path):
    dataset = FleetDataset(DatasetConfig(pair_count=STORE_PAIRS, seed=7))
    store_dir = tmp_path / "store"

    start = time.perf_counter()
    cold = run_survey(dataset, store=RecordStore(store_dir), chunk_size=CHUNK_SIZE)
    cold_seconds = time.perf_counter() - start
    assert (cold.cache_hits, cold.cache_misses) == (0, STORE_PAIRS)

    # A fresh dataset object: nothing warm but the store itself.
    start = time.perf_counter()
    warm = run_survey(FleetDataset(DatasetConfig(pair_count=STORE_PAIRS, seed=7)),
                      store=RecordStore(store_dir), chunk_size=CHUNK_SIZE)
    warm_seconds = time.perf_counter() - start
    assert (warm.cache_hits, warm.cache_misses) == (STORE_PAIRS, 0)
    assert _block_payloads(warm.iter_blocks()) == _block_payloads(cold.iter_blocks())

    speedup = cold_seconds / warm_seconds
    update_bench_json("cold_vs_warm", {
        "pairs": STORE_PAIRS,
        "chunk_size": CHUNK_SIZE,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_pairs_per_second": STORE_PAIRS / cold_seconds,
        "warm_pairs_per_second": STORE_PAIRS / warm_seconds,
        "speedup": speedup,
    }, path=BENCH_STORE_JSON)
    print(f"\n=== Record store cold vs warm ({STORE_PAIRS} pairs) ===")
    print(format_table([
        {"run": "cold", "seconds": cold_seconds,
         "pairs_per_second": STORE_PAIRS / cold_seconds},
        {"run": "warm", "seconds": warm_seconds,
         "pairs_per_second": STORE_PAIRS / warm_seconds},
        {"run": "speedup", "seconds": speedup, "pairs_per_second": float("nan")},
    ]))
    assert speedup >= REQUIRED_SPEEDUP, \
        f"warm rerun only {speedup:.1f}x faster (need >= {REQUIRED_SPEEDUP}x)"


def test_mmap_reopen_beats_npz_reparse(tmp_path):
    """Loading published .rcb blocks (mmap) vs the same blocks from npz."""
    pairs = min(STORE_PAIRS, 2800)
    dataset = FleetDataset(DatasetConfig(pair_count=pairs, seed=7))
    store = RecordStore(tmp_path / "store")
    result = run_survey(dataset, store=store, chunk_size=CHUNK_SIZE)

    rcb_paths = [path for entry in store.entries()
                 for path in sorted(entry.glob("block-*.rcb"))]
    assert rcb_paths
    npz_dir = tmp_path / "npz"
    npz_dir.mkdir()
    npz_paths = []
    for index, block in enumerate(result.iter_blocks()):
        path = npz_dir / f"block-{index:05d}.npz"
        block.save_npz(path)
        npz_paths.append((type(block), path))

    def load_rcb():
        # Touch one column so lazy mmaps actually fault pages in.
        return sum(len(load_rcb_any(path).device_ids) for path in rcb_paths)

    def load_npz():
        return sum(len(cls.load_npz(path).device_ids) for cls, path in npz_paths)

    best_rcb = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        rows_rcb = load_rcb()
        best_rcb = min(best_rcb, time.perf_counter() - start)
    best_npz = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        rows_npz = load_npz()
        best_npz = min(best_npz, time.perf_counter() - start)
    assert rows_rcb == rows_npz == pairs

    ratio = best_npz / best_rcb
    update_bench_json("mmap_vs_npz", {
        "pairs": pairs,
        "blocks": len(rcb_paths),
        "rcb_seconds": best_rcb,
        "npz_seconds": best_npz,
        "npz_over_rcb": ratio,
    }, path=BENCH_STORE_JSON)
    print(f"\n=== Store block re-open: rcb mmap vs npz re-parse "
          f"({len(rcb_paths)} blocks, {pairs} rows) ===")
    print(format_table([
        {"format": "rcb (mmap)", "seconds": best_rcb},
        {"format": "npz (re-parse)", "seconds": best_npz},
        {"format": "npz/rcb", "seconds": ratio},
    ]))
    assert best_rcb < best_npz, \
        f"mmap re-open ({best_rcb:.4f}s) should beat npz re-parse ({best_npz:.4f}s)"
