"""The cost-vs-quality trade-off: the claim in the paper's title.

The paper argues that deployments sit at an ad-hoc point on the cost/quality
curve and that Nyquist-informed sampling finds a better sweet spot: much
lower collection/transport/storage cost at essentially the same fidelity.

This bench deploys monitoring on a leaf-spine fabric, evaluates three
policies (fixed-rate baseline, Nyquist-static, adaptive dual-frequency) on
the same measurement points with injected fail-stop events, prices each
with the network cost model, and prints the resulting cost/quality rows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.network import (MonitoringDeployment, TelemetryCostAccountant, TopologySpec,
                           attach_collector, build_leaf_spine)
from repro.pipeline import (AdaptiveDualRatePolicy, CostQualityEvaluator, EventKind,
                            FixedRatePolicy, NyquistStaticPolicy, inject_event)

METRICS = ["Link util", "Temperature", "Unicast bytes"]
POINTS_PER_METRIC = 6


def run_tradeoff(seed: int = 97):
    topology = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=4, servers_per_leaf=2))
    collector = attach_collector(topology)
    deployment = MonitoringDeployment(topology, trace_duration=43200.0, seed=seed)
    accountant = TelemetryCostAccountant(topology=topology, collector=collector)
    policies = [
        FixedRatePolicy(30.0, name="baseline-30s"),
        NyquistStaticPolicy(production_interval=30.0),
        AdaptiveDualRatePolicy(window_duration=3 * 3600.0),
    ]
    evaluator = CostQualityEvaluator(policies, accountant=accountant)
    rng = np.random.default_rng(seed)
    for metric in METRICS:
        for point, reference in deployment.iter_reference_traces(metric, limit=POINTS_PER_METRIC):
            event_time = reference.start_time + float(rng.uniform(0.5, 0.9)) * reference.duration
            magnitude = 6.0 * reference.std() + 1.0
            modified, event = inject_event(reference, EventKind.STEP, event_time, magnitude)
            evaluator.evaluate_point(point.node, metric, modified, event)
    return evaluator


def test_cost_quality_tradeoff(benchmark, output_dir):
    evaluator = benchmark.pedantic(run_tradeoff, rounds=1, iterations=1)

    rows = evaluator.rows()
    relative = evaluator.relative_costs("baseline-30s")
    for row in rows:
        row["cost_vs_baseline"] = relative[row["policy"]]
    write_csv(output_dir / "cost_quality_tradeoff.csv", rows)

    print("\n=== Cost vs. quality: fixed-rate baseline vs Nyquist-informed sampling ===")
    print(format_table(rows))

    by_policy = {row["policy"]: row for row in rows}
    baseline = by_policy["baseline-30s"]
    static = by_policy["nyquist-static"]
    adaptive = by_policy["adaptive-dual-rate"]

    # Who wins and by roughly what factor: both Nyquist-informed policies
    # collect fewer samples than the fixed-rate baseline, at a modest
    # fidelity cost and while still detecting the injected events.
    assert static["samples"] < baseline["samples"]
    assert adaptive["samples"] < baseline["samples"]
    assert static["cost_vs_baseline"] < 0.85
    assert adaptive["cost_vs_baseline"] < 1.0
    assert baseline["mean_nrmse"] < 0.05
    assert static["mean_nrmse"] < 0.4
    assert adaptive["mean_nrmse"] < 0.4
    assert static["detection_rate"] >= 0.7
    assert adaptive["detection_rate"] >= 0.7
