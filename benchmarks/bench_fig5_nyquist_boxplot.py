"""Figure 5: box plot of the estimated Nyquist rate for each monitoring system.

The paper's Figure 5 shows one box per metric family (14 metrics), with the
Nyquist rates spanning roughly 0 to 0.008 Hz and varying by orders of
magnitude across devices within a single metric (for temperature, from
~8e-7 Hz to 0.003 Hz).  This bench regenerates the box statistics per
metric, in the paper's left-to-right order.
"""

from __future__ import annotations

from repro.analysis.reporting import box_stats, format_table, write_csv
from repro.telemetry.metrics import FIGURE5_ORDER


def build_boxes(survey_result):
    rows = []
    for metric in FIGURE5_ORDER:
        if metric not in survey_result.metrics():
            continue
        stats = box_stats(survey_result.nyquist_rates(metric))
        row = {"metric": metric}
        row.update(stats.as_dict())
        rows.append(row)
    return rows


def test_fig5_nyquist_rate_boxplot(benchmark, survey_result, output_dir):
    rows = benchmark(build_boxes, survey_result)
    write_csv(output_dir / "fig5_nyquist_boxplot.csv", rows)

    print("\n=== Figure 5: Nyquist rate per monitoring system (Hz) ===")
    print(format_table(rows, ["metric", "min", "p25", "median", "p75", "max", "count"]))

    assert len(rows) == 14
    # Paper-shape checks: typical (median) rates sit in the same milli-Hertz
    # regime as the paper's Figure 5 (its y-axis tops out at 0.008 Hz), no
    # estimate exceeds the fastest production polling rate, and within a
    # metric the per-device spread covers orders of magnitude
    # (temperature's spread is the paper's explicit example).
    assert all(row["median"] <= 0.008 + 1e-9 for row in rows)
    assert all(row["max"] <= 1.0 / 30.0 + 1e-9 for row in rows)
    temperature = next(row for row in rows if row["metric"] == "Temperature")
    assert temperature["max"] / temperature["min"] > 30
    spreads = [row["max"] / row["min"] for row in rows if row["min"] > 0]
    assert max(spreads) > 100
