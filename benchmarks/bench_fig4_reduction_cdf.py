"""Figure 4: per-metric CDFs of the possible sampling-rate reduction ratio.

The paper's Figure 4 shows, for each of 12 metrics, the CDF of the ratio
between the deployed sampling rate and the estimated Nyquist rate (log-x,
up to 1000x).  Headline observation: "in 20% of the examples the sampling
rate can be reduced by a factor of 1000x".  This bench regenerates the CDF
series for every metric and prints the pooled CDF plus per-metric quantiles.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ascii_cdf, cdf_at, empirical_cdf, format_table, write_csv
from repro.telemetry.metrics import FIGURE4_METRICS


def build_cdfs(survey_result):
    per_metric_rows = []
    cdf_rows = []
    for metric in survey_result.metrics():
        ratios = survey_result.reduction_ratios(metric)
        if ratios.size == 0:
            continue
        xs, ys = empirical_cdf(ratios)
        for x, y in zip(xs, ys):
            cdf_rows.append({"metric": metric, "reduction_ratio": float(x), "cdf": float(y)})
        per_metric_rows.append({
            "metric": metric,
            "pairs": int(ratios.size),
            "p10": float(np.percentile(ratios, 10)),
            "median": float(np.percentile(ratios, 50)),
            "p90": float(np.percentile(ratios, 90)),
            "frac_ge_10x": float((ratios >= 10).mean()),
            "frac_ge_100x": float((ratios >= 100).mean()),
            "frac_ge_1000x": float((ratios >= 1000).mean()),
        })
    return per_metric_rows, cdf_rows


def test_fig4_reduction_ratio_cdfs(benchmark, survey_result, output_dir):
    per_metric_rows, cdf_rows = benchmark(build_cdfs, survey_result)
    write_csv(output_dir / "fig4_reduction_cdf_points.csv", cdf_rows)
    write_csv(output_dir / "fig4_reduction_summary.csv", per_metric_rows)

    pooled = survey_result.reduction_ratios()
    print("\n=== Figure 4: CDF of possible reduction ratios (all metrics pooled) ===")
    print(ascii_cdf(pooled))
    print(format_table(per_metric_rows))
    shares = cdf_at(pooled, [10.0, 100.0, 1000.0])
    print(f"fraction reducible >=10x: {1 - shares[10.0]:.2f}, "
          f">=100x: {1 - shares[100.0]:.2f}, >=1000x: {1 - shares[1000.0]:.2f}")

    # Shape checks against the paper: the 12 Figure-4 metrics are present,
    # reductions of an order of magnitude are common, and a heavy tail of
    # very large (>=100x) reductions exists.
    covered = {row["metric"] for row in per_metric_rows}
    assert set(FIGURE4_METRICS) <= covered
    assert float(np.median(pooled)) > 5.0
    assert (pooled >= 100).mean() > 0.15
