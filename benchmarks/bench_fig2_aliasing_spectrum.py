"""Figure 2: what sampling above vs. below the Nyquist rate does to the spectrum.

Figure 2 of the paper is a schematic: sampling at a rate f1 above the
Nyquist rate leaves the spectral copies separated (the original spectrum is
recoverable); sampling below it overlaps the copies (aliasing).  This bench
makes the schematic quantitative: it measures how much spectral energy of a
band-limited signal stays inside the original band after sampling at
several rates, and where the strongest component lands.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, write_csv
from repro.core.psd import periodogram
from repro.signals.generators import multi_tone

#: The underlying signal: band-limited to 440 Hz (Nyquist rate 880 Hz).
TONES = [400.0, 440.0]
SAMPLING_RATES = [2000.0, 1200.0, 890.0, 800.0, 600.0, 300.0]


def spectra_at_rates():
    """Sample the continuous two-tone signal at each rate and summarise its PSD."""
    rows = []
    for rate in SAMPLING_RATES:
        sampled = multi_tone(TONES, duration=1.0, sampling_rate=rate)
        spectrum = periodogram(sampled).without_dc()
        peak = spectrum.dominant_frequency()
        in_band = spectrum.energy_fraction_below(445.0)
        rows.append({
            "sampling_rate_hz": rate,
            "above_nyquist": rate >= 880.0,
            "strongest_component_hz": peak,
            "energy_in_original_band": in_band,
        })
    return rows


def test_fig2_aliasing_spectrum(benchmark, output_dir):
    rows = benchmark(spectra_at_rates)
    write_csv(output_dir / "fig2_aliasing_spectrum.csv", rows)

    print("\n=== Figure 2: spectral content vs sampling rate (two tones at 400/440 Hz) ===")
    print(format_table(rows))

    by_rate = {row["sampling_rate_hz"]: row for row in rows}
    # Above the Nyquist rate the strongest component stays at 400/440 Hz...
    for rate in (2000.0, 1200.0, 890.0):
        assert abs(by_rate[rate]["strongest_component_hz"] - 440.0) <= 45.0
    # ...below it the components fold to other frequencies (aliasing).
    for rate in (800.0, 600.0, 300.0):
        assert by_rate[rate]["strongest_component_hz"] < 395.0
