"""Shared fixtures for the benchmark harness.

Each benchmark regenerates the data behind one of the paper's figures or
headline tables, times the underlying computation with pytest-benchmark,
prints the figure's series as a text table and writes it to a CSV under
``benchmarks/output/``.

The survey benchmarks share one synthetic fleet dataset.  Its size is
controlled by the ``REPRO_BENCH_PAIRS`` environment variable (default 392 =
28 devices x 14 metrics; set it to 1613 to regenerate the full paper-scale
survey -- it is only a few times slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.survey import SurveyResult, run_survey
from repro.telemetry.dataset import DatasetConfig, FleetDataset

#: Where benchmark CSV outputs land.
OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def bench_pair_count() -> int:
    """Number of (metric, device) pairs used by the survey benchmarks."""
    return int(os.environ.get("REPRO_BENCH_PAIRS", "392"))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def survey_dataset() -> FleetDataset:
    """The synthetic stand-in for the paper's 1613-pair production survey."""
    return FleetDataset(DatasetConfig(pair_count=bench_pair_count(), seed=7))


@pytest.fixture(scope="session")
def survey_result(survey_dataset: FleetDataset) -> SurveyResult:
    """Survey analysis shared by the Figure 1/4/5 and headline benchmarks."""
    return run_survey(survey_dataset)
