"""Shared fixtures for the benchmark harness.

Each benchmark regenerates the data behind one of the paper's figures or
headline tables, times the underlying computation with pytest-benchmark,
prints the figure's series as a text table and writes it to a CSV under
``benchmarks/output/``.

The survey benchmarks share one synthetic fleet dataset.  Its size is
controlled by the ``REPRO_BENCH_PAIRS`` environment variable (default 392 =
28 devices x 14 metrics; set it to 1613 to regenerate the full paper-scale
survey -- it is only a few times slower).

Throughput benchmarks additionally record their numbers in
``benchmarks/output/BENCH_survey.json`` (via :func:`update_bench_json`), a
machine-readable perf trajectory that CI uploads as an artifact so
pairs/sec regressions are visible across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.survey import SurveyResult, run_survey
from repro.telemetry.dataset import DatasetConfig, FleetDataset

#: Where benchmark CSV outputs land.
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The machine-readable perf-trajectory file shared by the throughput benches.
BENCH_JSON = OUTPUT_DIR / "BENCH_survey.json"

#: Perf + cost/quality trajectory of the fleet policy survey.
BENCH_POLICIES_JSON = OUTPUT_DIR / "BENCH_policies.json"

#: Throughput + memory trajectory of the raw-export ingest pipeline.
BENCH_INGEST_JSON = OUTPUT_DIR / "BENCH_ingest.json"

#: Fault-matrix trajectory of the quarantine/chaos layer.
BENCH_CHAOS_JSON = OUTPUT_DIR / "BENCH_chaos.json"

#: Cold/warm trajectory of the persistent record store.
BENCH_STORE_JSON = OUTPUT_DIR / "BENCH_store.json"

#: Per-cell ordering verdicts of the (scenario x fabric x policy) matrix.
BENCH_SCENARIOS_JSON = OUTPUT_DIR / "BENCH_scenarios.json"


def update_bench_json(section: str, payload: dict, path: Path = BENCH_JSON) -> None:
    """Merge one benchmark's numbers into a trajectory JSON file.

    Each bench owns one top-level section of its file (``BENCH_survey.json``
    by default), so benches can run in any order (or individually) without
    clobbering each other's results.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def bench_pair_count() -> int:
    """Number of (metric, device) pairs used by the survey benchmarks."""
    return int(os.environ.get("REPRO_BENCH_PAIRS", "392"))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def survey_dataset() -> FleetDataset:
    """The synthetic stand-in for the paper's 1613-pair production survey."""
    return FleetDataset(DatasetConfig(pair_count=bench_pair_count(), seed=7))


@pytest.fixture(scope="session")
def survey_result(survey_dataset: FleetDataset) -> SurveyResult:
    """Survey analysis shared by the Figure 1/4/5 and headline benchmarks."""
    return run_survey(survey_dataset)
