"""Figure 6: reconstructing a temperature signal from Nyquist-rate samples.

The paper's Figure 6 compares an actual temperature signal (sampled every 5
minutes) with the same signal down-sampled to its (dynamically inferred)
Nyquist rate and up-sampled back, reporting an L2 distance of 0 thanks to
quantisation-aware recovery.

This bench runs the same experiment on a 3-day synthetic temperature trace:
estimate the rate, down-sample, reconstruct with the low-pass interpolator,
re-apply the sensor quantiser, and report the sample savings and the
reconstruction error (absolute and relative to the 0.5 degC sensor step).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.nyquist import NyquistEstimator
from repro.core.quantization import UniformQuantizer
from repro.core.reconstruction import nyquist_round_trip
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters

TRACE_DAYS = 3.0


def build_temperature_trace(seed: int = 42):
    spec = METRIC_CATALOG["Temperature"]
    device = DeviceProfile("fig6-tor", DeviceRole.TOR_SWITCH, seed=seed)
    duration = TRACE_DAYS * 86400.0
    params = draw_metric_parameters(spec, device, duration, broadband_fraction=0.0,
                                    rng=np.random.default_rng(seed))
    trace = generate_trace(spec, params, duration, rng=np.random.default_rng(seed),
                           device_name=device.device_id)
    return spec, trace


def run_round_trip(spec, trace):
    quantizer = UniformQuantizer(spec.quantization_step, spec.minimum, spec.maximum)
    estimator = NyquistEstimator(energy_fraction=0.99)
    return nyquist_round_trip(trace, estimator=estimator, headroom=2.0, quantizer=quantizer)


def test_fig6_temperature_reconstruction(benchmark, output_dir):
    spec, trace = build_temperature_trace()
    result = benchmark.pedantic(run_round_trip, args=(spec, trace), rounds=1, iterations=1)

    summary = result.summary()
    summary["samples_original"] = float(len(result.original))
    summary["samples_kept"] = float(len(result.downsampled))
    summary["max_error_in_quant_steps"] = result.error.max_abs / spec.quantization_step
    rows = [{"quantity": key, "value": value} for key, value in summary.items()]
    write_csv(output_dir / "fig6_reconstruction.csv", rows)

    print("\n=== Figure 6: temperature down-sample/reconstruct round trip ===")
    print(format_table(rows))

    # Paper shape: a large sample saving with a reconstruction that is
    # indistinguishable at the level the application can observe (the paper
    # reports L2 = 0 after re-quantisation; we require the error to stay
    # within a few sensor quantisation steps and a tiny relative error).
    assert result.estimate.reliable
    assert result.reduction_factor > 3
    assert result.error.nrmse < 0.05
    assert result.error.max_abs <= 4 * spec.quantization_step
