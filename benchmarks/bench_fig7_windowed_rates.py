"""Figure 7: the inferred Nyquist rate over time for the Figure 6 temperature signal.

The paper's Figure 7 slides a 6-hour window in 5-minute steps over the
temperature trace and plots the Nyquist rate inferred in each window,
showing that the rate is not constant over time -- the motivation for
dynamic sampling.  This bench regenerates that series and summarises how
much the inferred rate moves.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.nyquist import NyquistEstimator
from repro.core.windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS, rate_stability,
                                 windowed_nyquist_rates)
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters


def build_trace(seed: int = 42):
    # Same construction as the Figure 6 bench (the paper uses the same signal).
    spec = METRIC_CATALOG["Temperature"]
    device = DeviceProfile("fig6-tor", DeviceRole.TOR_SWITCH, seed=seed)
    duration = 3 * 86400.0
    params = draw_metric_parameters(spec, device, duration, broadband_fraction=0.0,
                                    rng=np.random.default_rng(seed))
    return generate_trace(spec, params, duration, rng=np.random.default_rng(seed))


def infer_windowed_rates(trace):
    estimator = NyquistEstimator(detrend=True, window="hann")
    return windowed_nyquist_rates(trace, window_seconds=FIGURE7_WINDOW_SECONDS,
                                  step_seconds=FIGURE7_STEP_SECONDS, estimator=estimator)


def test_fig7_windowed_nyquist_rates(benchmark, output_dir):
    trace = build_trace()
    estimates = benchmark.pedantic(infer_windowed_rates, args=(trace,), rounds=1, iterations=1)

    rows = [{"window_start_s": entry.window_start,
             "window_start_h": entry.window_start / 3600.0,
             "nyquist_rate_hz": entry.nyquist_rate}
            for entry in estimates]
    write_csv(output_dir / "fig7_windowed_rates.csv", rows)
    stability = rate_stability(estimates)

    print("\n=== Figure 7: inferred Nyquist rate over time (6 h window, 5 min step) ===")
    print(format_table(rows[::12]))  # print one row per hour to keep the log readable
    print(format_table([{"statistic": key, "value": value} for key, value in stability.items()]))

    # Paper shape: the series is dense (a 3-day trace yields hundreds of
    # 5-minute steps), the vast majority of windows produce usable
    # estimates, and the inferred rate genuinely varies over time
    # (motivating adaptation).
    expected_windows = int((trace.duration - FIGURE7_WINDOW_SECONDS) / FIGURE7_STEP_SECONDS) + 1
    assert len(estimates) >= expected_windows - 1
    assert stability["count"] >= 0.8 * len(estimates)
    assert stability["dynamic_range"] > 1.5
