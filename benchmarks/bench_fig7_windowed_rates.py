"""Figure 7: the inferred Nyquist rate over time for the Figure 6 temperature signal.

The paper's Figure 7 slides a 6-hour window in 5-minute steps over the
temperature trace and plots the Nyquist rate inferred in each window,
showing that the rate is not constant over time -- the motivation for
dynamic sampling.  This bench regenerates that series, summarises how
much the inferred rate moves, and times the vectorised windowed backend
(all window positions gathered into one matrix via
``sliding_window_view`` and fed to ``estimate_batch``) against the
scalar per-window reference loop -- the fleet-wide continuous
re-estimation loop runs this sweep on every pair, so its speed-up is
what makes always-on Figure 7 monitoring affordable.  The timing lands
in ``BENCH_survey.json`` next to the survey throughput numbers.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.nyquist import NyquistEstimator
from repro.core.windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS, rate_stability,
                                 windowed_nyquist_rates)
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters

from conftest import update_bench_json

#: Required speed-up of the vectorised windowed sweep over the scalar loop.
REQUIRED_WINDOWED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_WINDOWED_SPEEDUP", "5"))


def build_trace(seed: int = 42):
    # Same construction as the Figure 6 bench (the paper uses the same signal).
    spec = METRIC_CATALOG["Temperature"]
    device = DeviceProfile("fig6-tor", DeviceRole.TOR_SWITCH, seed=seed)
    duration = 3 * 86400.0
    params = draw_metric_parameters(spec, device, duration, broadband_fraction=0.0,
                                    rng=np.random.default_rng(seed))
    return generate_trace(spec, params, duration, rng=np.random.default_rng(seed))


def build_estimator():
    # Short-window sweeps keep the paper's strict "all bins needed" rule
    # (1.0): on 6-hour windows the calibrated survey default (0.9) refuses
    # every noise-dominated quiet window, where Figure 7 instead plots a
    # small inferred rate (same reasoning as the adaptive controller).
    return NyquistEstimator(detrend=True, window="hann", aliased_band_fraction=1.0)


def infer_windowed_rates(trace):
    return windowed_nyquist_rates(trace, window_seconds=FIGURE7_WINDOW_SECONDS,
                                  step_seconds=FIGURE7_STEP_SECONDS,
                                  estimator=build_estimator())


def test_fig7_windowed_nyquist_rates(benchmark, output_dir):
    trace = build_trace()
    estimates = benchmark.pedantic(infer_windowed_rates, args=(trace,), rounds=1, iterations=1)

    rows = [{"window_start_s": entry.window_start,
             "window_start_h": entry.window_start / 3600.0,
             "nyquist_rate_hz": entry.nyquist_rate}
            for entry in estimates]
    write_csv(output_dir / "fig7_windowed_rates.csv", rows)
    stability = rate_stability(estimates)

    print("\n=== Figure 7: inferred Nyquist rate over time (6 h window, 5 min step) ===")
    print(format_table(rows[::12]))  # print one row per hour to keep the log readable
    print(format_table([{"statistic": key, "value": value} for key, value in stability.items()]))

    # Paper shape: the series is dense (a 3-day trace yields hundreds of
    # 5-minute steps), the vast majority of windows produce usable
    # estimates, and the inferred rate genuinely varies over time
    # (motivating adaptation).
    expected_windows = int((trace.duration - FIGURE7_WINDOW_SECONDS) / FIGURE7_STEP_SECONDS) + 1
    assert len(estimates) >= expected_windows - 1
    assert stability["count"] >= 0.8 * len(estimates)
    assert stability["dynamic_range"] > 1.5


def test_windowed_backend_speedup(output_dir):
    """The vectorised sweep must beat the scalar loop by >= 5x, equivalently."""
    trace = build_trace()
    estimator = build_estimator()

    def run_backend(backend):
        return windowed_nyquist_rates(trace, window_seconds=FIGURE7_WINDOW_SECONDS,
                                      step_seconds=FIGURE7_STEP_SECONDS,
                                      estimator=estimator, backend=backend)

    best_scalar, scalar_series = float("inf"), None
    best_batched, batched_series = float("inf"), None
    for _ in range(3):
        start = time.perf_counter()
        scalar_series = run_backend("scalar")
        best_scalar = min(best_scalar, time.perf_counter() - start)
        start = time.perf_counter()
        batched_series = run_backend("batched")
        best_batched = min(best_batched, time.perf_counter() - start)
    speedup = best_scalar / best_batched

    assert len(scalar_series) == len(batched_series)
    for a, b in zip(scalar_series, batched_series):
        assert a.window_start == b.window_start
        assert a.window_end == b.window_end
        assert a.estimate.reliable == b.estimate.reliable
        assert np.isclose(a.estimate.nyquist_rate, b.estimate.nyquist_rate)

    update_bench_json("windowed", {
        "windows": len(batched_series),
        "scalar_seconds": best_scalar,
        "batched_seconds": best_batched,
        "speedup": speedup,
    })
    print(f"\n=== Figure 7 sweep: {len(batched_series)} windows, "
          f"scalar {best_scalar:.3f}s vs batched {best_batched:.3f}s "
          f"({speedup:.1f}x) ===")
    assert speedup >= REQUIRED_WINDOWED_SPEEDUP, \
        f"vectorised sweep only {speedup:.1f}x faster (need >= {REQUIRED_WINDOWED_SPEEDUP}x)"
