"""Raw-export ingest throughput: lines/sec, bounded memory, shard scaling.

The streaming importer (:mod:`repro.telemetry.ingest`) is the door through
which production archives enter the survey pipeline, so its throughput and
memory ceiling are tracked in ``BENCH_ingest.json`` alongside the survey
and policy trajectories:

* **gnmi** -- a ~1k-pair synthetic fleet exported as one interleaved
  gNMI-style JSON-lines stream (all pairs merged in time order, the worst
  case for the accumulator: every pair's buffer stays hot at once), then
  ingested with a deliberately small ``memory_budget_samples``.  Records
  lines/sec, updates/sec, the peak in-memory accumulator size (the
  peak-RSS proxy: buffered samples x 16 bytes of array payload) and the
  spill volume; asserts the peak stayed within the budget and that the
  ingested directory surveys bit-identically to the originating fleet.
* **snmp** -- the same fleet as an SNMP-poller wide CSV (one row per
  poll per device), ingested and verified the same way.  One measured
  pass reports *both* rates with distinct semantics: ``lines_per_second``
  counts data lines (rows, header excluded), ``updates_per_second``
  counts parsed samples -- a wide CSV row expands to many updates, so the
  two differ by roughly the metric-column count.
* **shard_scaling** -- the sharded pipeline (``ingest_dump(workers=N)``)
  over the gNMI dump for ``workers in (1, 2, 4)``: every sharded run must
  be byte-identical to the serial one and keep each shard's accumulator
  peak within its per-shard budget; wall-clock speedups are recorded.
  The >=2.5x floor at 4 workers is asserted only with >= 4 CPU cores and
  a non-zero ``REPRO_BENCH_INGEST_MIN_SPEEDUP`` (CI smoke runs relax it,
  as with the other bench floors; numbers are recorded regardless).

Sizes via ``REPRO_BENCH_INGEST_PAIRS`` (default 1008) and
``REPRO_BENCH_INGEST_DURATION`` seconds per trace (default 14400); the CI
smoke job shrinks both to stay inside its time budget.
``REPRO_BENCH_INGEST_WORKERS`` caps the shard sweep (default 4).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.survey import run_survey
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import export_gnmi_dump, export_snmp_dump, ingest_dump

from conftest import BENCH_INGEST_JSON, update_bench_json

#: Fleet size of the fabricated dumps (>= 1000 pairs by default: the
#: acceptance workload for the importer).
INGEST_PAIRS = int(os.environ.get("REPRO_BENCH_INGEST_PAIRS", "1008"))

#: Seconds of telemetry per pair (4 hours keeps the default dump ~500k
#: updates; a full paper-scale day triples it).
INGEST_DURATION = float(os.environ.get("REPRO_BENCH_INGEST_DURATION", "14400"))

#: In-memory accumulator budget, deliberately far below the dump's total
#: sample count so the spill path carries most of the stream.
MEMORY_BUDGET_SAMPLES = int(os.environ.get("REPRO_BENCH_INGEST_BUDGET", "65536"))

#: Largest worker count in the shard-scaling sweep.
SHARD_WORKERS = int(os.environ.get("REPRO_BENCH_INGEST_WORKERS", "4"))

#: Speed-up floor asserted for the 4-worker sharded ingest when enough
#: cores are available; 0 records numbers without enforcing (CI smoke).
MIN_SHARD_SPEEDUP = float(os.environ.get("REPRO_BENCH_INGEST_MIN_SPEEDUP", "2.5"))


def _assert_bit_identical_survey(fleet, ingested) -> None:
    reference = {(r.metric_name, r.device_id): r for r in run_survey(fleet).records}
    records = run_survey(ingested).records
    assert len(records) == len(reference)
    for record in records:
        expected = reference[(record.metric_name, record.device_id)]
        assert record.nyquist_rate == expected.nyquist_rate
        assert record.category is expected.category
        assert (record.reduction_ratio == expected.reduction_ratio
                or (np.isnan(record.reduction_ratio)
                    and np.isnan(expected.reduction_ratio)))


def _assert_directories_byte_identical(left: Path, right: Path) -> None:
    left_files = sorted(str(p.relative_to(left)) for p in left.rglob("*") if p.is_file())
    right_files = sorted(str(p.relative_to(right)) for p in right.rglob("*") if p.is_file())
    assert left_files == right_files, (left_files, right_files)
    for rel in left_files:
        assert (left / rel).read_bytes() == (right / rel).read_bytes(), \
            f"{rel} differs between {left} and {right}"


def _run_ingest_bench(section: str, exporter, dump_name: str, tmp_path,
                      header_lines: int) -> dict:
    fleet = FleetDataset(DatasetConfig(pair_count=INGEST_PAIRS, seed=7,
                                       trace_duration=INGEST_DURATION))
    dump = tmp_path / dump_name

    start = time.perf_counter()
    exporter(fleet, dump)
    export_seconds = time.perf_counter() - start
    with dump.open() as handle:
        lines = sum(1 for _ in handle)
    data_lines = lines - header_lines

    start = time.perf_counter()
    ingested = ingest_dump(dump, tmp_path / f"fleet-{section}",
                           memory_budget_samples=MEMORY_BUDGET_SAMPLES)
    ingest_seconds = time.perf_counter() - start

    manifest = json.loads((tmp_path / f"fleet-{section}" / "manifest.json").read_text())
    stats = ingested.ingest_stats
    # The whole point of the accumulator: peak memory bounded by the budget.
    assert stats.peak_buffered_samples <= MEMORY_BUDGET_SAMPLES
    assert stats.spilled_samples > 0, "budget never hit; bench not exercising spill"
    assert len(ingested) == INGEST_PAIRS
    _assert_bit_identical_survey(fleet, ingested)

    # Two rates from the same measured pass, with distinct semantics:
    # lines/sec counts *data lines* parsed (header excluded), updates/sec
    # counts *samples* produced.  They coincide for gNMI (one update per
    # line) and diverge for wide SNMP rows (one update per populated cell).
    payload = {
        "pairs": INGEST_PAIRS,
        "trace_seconds": INGEST_DURATION,
        "dump_lines": lines,
        "data_lines": data_lines,
        "updates": manifest["ingest"]["updates"],
        "dump_bytes": dump.stat().st_size,
        "export_seconds": export_seconds,
        "ingest_seconds": ingest_seconds,
        "lines_per_second": data_lines / ingest_seconds,
        "updates_per_second": stats.updates / ingest_seconds,
        "memory_budget_samples": MEMORY_BUDGET_SAMPLES,
        "peak_buffered_samples": stats.peak_buffered_samples,
        "peak_buffer_bytes": stats.peak_buffered_samples * 16,
        "spilled_samples": stats.spilled_samples,
        "spill_writes": stats.spill_writes,
    }
    update_bench_json(section, payload, path=BENCH_INGEST_JSON)
    return payload


def test_gnmi_ingest_throughput(output_dir, tmp_path):
    payload = _run_ingest_bench("gnmi", export_gnmi_dump, "fleet.jsonl", tmp_path,
                                header_lines=0)
    print(f"\n=== gNMI ingest ({INGEST_PAIRS} pairs interleaved) ===")
    print(format_table([{
        "lines": payload["data_lines"], "seconds": payload["ingest_seconds"],
        "lines_per_second": payload["lines_per_second"],
        "updates_per_second": payload["updates_per_second"],
        "peak_buffer_mib": payload["peak_buffer_bytes"] / 2 ** 20,
        "spilled_samples": payload["spilled_samples"],
    }]))


def test_snmp_ingest_throughput(output_dir, tmp_path):
    payload = _run_ingest_bench("snmp", export_snmp_dump, "fleet.csv", tmp_path,
                                header_lines=1)
    print(f"\n=== SNMP ingest ({INGEST_PAIRS} pairs, wide CSV) ===")
    print(format_table([{
        "rows": payload["data_lines"], "seconds": payload["ingest_seconds"],
        "lines_per_second": payload["lines_per_second"],
        "updates_per_second": payload["updates_per_second"],
        "peak_buffer_mib": payload["peak_buffer_bytes"] / 2 ** 20,
        "spilled_samples": payload["spilled_samples"],
    }]))


def test_sharded_ingest_scaling(output_dir, tmp_path):
    fleet = FleetDataset(DatasetConfig(pair_count=INGEST_PAIRS, seed=7,
                                       trace_duration=INGEST_DURATION))
    dump = tmp_path / "fleet.jsonl"
    export_gnmi_dump(fleet, dump)
    with dump.open() as handle:
        lines = sum(1 for _ in handle)

    sweep = [n for n in (1, 2, 4) if n <= max(1, SHARD_WORKERS)]
    results: dict[str, dict] = {}
    serial_dir = tmp_path / "shards-1"
    for workers in sweep:
        out_dir = tmp_path / f"shards-{workers}"
        start = time.perf_counter()
        ingested = ingest_dump(dump, out_dir,
                               memory_budget_samples=MEMORY_BUDGET_SAMPLES,
                               workers=workers)
        seconds = time.perf_counter() - start
        stats = ingested.ingest_stats
        # Correctness first: any worker count publishes the same bytes,
        # and every shard's accumulator peak respects its slice of the
        # budget (the whole budget for the serial run).
        if workers > 1:
            _assert_directories_byte_identical(serial_dir, out_dir)
            for shard in stats.shards:
                assert shard.peak_buffered_samples <= shard.memory_budget_samples
        else:
            assert stats.peak_buffered_samples <= MEMORY_BUDGET_SAMPLES
        results[str(workers)] = {
            "ingest_seconds": seconds,
            "lines_per_second": lines / seconds,
            "speedup_vs_serial": results["1"]["ingest_seconds"] / seconds
                                 if workers > 1 else 1.0,
            "ranges": stats.ranges,
            "peak_buffered_samples": stats.peak_buffered_samples,
            "per_shard_budget": (stats.shards[0].memory_budget_samples
                                 if stats.shards else MEMORY_BUDGET_SAMPLES),
        }

    cpu_count = os.cpu_count() or 1
    enforce = (MIN_SHARD_SPEEDUP > 0 and cpu_count >= 4 and "4" in results)
    payload = {
        "pairs": INGEST_PAIRS,
        "dump_lines": lines,
        "memory_budget_samples": MEMORY_BUDGET_SAMPLES,
        "cpu_count": cpu_count,
        "min_speedup_floor": MIN_SHARD_SPEEDUP,
        "floor_enforced": enforce,
        "workers": results,
    }
    update_bench_json("shard_scaling", payload, path=BENCH_INGEST_JSON)

    print(f"\n=== Sharded ingest scaling ({INGEST_PAIRS} pairs, gNMI, "
          f"{cpu_count} cores) ===")
    print(format_table([{
        "workers": workers, "seconds": row["ingest_seconds"],
        "lines_per_second": row["lines_per_second"],
        "speedup": row["speedup_vs_serial"],
        "peak_buffered": row["peak_buffered_samples"],
        "per_shard_budget": row["per_shard_budget"],
    } for workers, row in results.items()]))

    if enforce:
        assert results["4"]["speedup_vs_serial"] >= MIN_SHARD_SPEEDUP, (
            f"4-worker sharded ingest managed only "
            f"{results['4']['speedup_vs_serial']:.2f}x over serial "
            f"(floor {MIN_SHARD_SPEEDUP}x)")
    else:
        print(f"(speed-up floor not enforced: {cpu_count} cores, "
              f"floor {MIN_SHARD_SPEEDUP})")
