"""Raw-export ingest throughput: lines/sec and bounded accumulator memory.

The streaming importer (:mod:`repro.telemetry.ingest`) is the door through
which production archives enter the survey pipeline, so its throughput and
memory ceiling are tracked in ``BENCH_ingest.json`` alongside the survey
and policy trajectories:

* **gnmi** -- a ~1k-pair synthetic fleet exported as one interleaved
  gNMI-style JSON-lines stream (all pairs merged in time order, the worst
  case for the accumulator: every pair's buffer stays hot at once), then
  ingested with a deliberately small ``memory_budget_samples``.  Records
  lines/sec, updates/sec, the peak in-memory accumulator size (the
  peak-RSS proxy: buffered samples x 16 bytes of array payload) and the
  spill volume; asserts the peak stayed within the budget and that the
  ingested directory surveys bit-identically to the originating fleet.
* **snmp** -- the same fleet as an SNMP-poller wide CSV (one row per
  poll per device), ingested and verified the same way.

Sizes via ``REPRO_BENCH_INGEST_PAIRS`` (default 1008) and
``REPRO_BENCH_INGEST_DURATION`` seconds per trace (default 14400); the CI
smoke job shrinks both to stay inside its time budget.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.survey import run_survey
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import export_gnmi_dump, export_snmp_dump, ingest_dump

from conftest import BENCH_INGEST_JSON, update_bench_json

#: Fleet size of the fabricated dumps (>= 1000 pairs by default: the
#: acceptance workload for the importer).
INGEST_PAIRS = int(os.environ.get("REPRO_BENCH_INGEST_PAIRS", "1008"))

#: Seconds of telemetry per pair (4 hours keeps the default dump ~500k
#: updates; a full paper-scale day triples it).
INGEST_DURATION = float(os.environ.get("REPRO_BENCH_INGEST_DURATION", "14400"))

#: In-memory accumulator budget, deliberately far below the dump's total
#: sample count so the spill path carries most of the stream.
MEMORY_BUDGET_SAMPLES = int(os.environ.get("REPRO_BENCH_INGEST_BUDGET", "65536"))


def _assert_bit_identical_survey(fleet, ingested) -> None:
    reference = {(r.metric_name, r.device_id): r for r in run_survey(fleet).records}
    records = run_survey(ingested).records
    assert len(records) == len(reference)
    for record in records:
        expected = reference[(record.metric_name, record.device_id)]
        assert record.nyquist_rate == expected.nyquist_rate
        assert record.category is expected.category
        assert (record.reduction_ratio == expected.reduction_ratio
                or (np.isnan(record.reduction_ratio)
                    and np.isnan(expected.reduction_ratio)))


def _run_ingest_bench(section: str, exporter, dump_name: str, tmp_path) -> dict:
    fleet = FleetDataset(DatasetConfig(pair_count=INGEST_PAIRS, seed=7,
                                       trace_duration=INGEST_DURATION))
    dump = tmp_path / dump_name

    start = time.perf_counter()
    exporter(fleet, dump)
    export_seconds = time.perf_counter() - start
    with dump.open() as handle:
        lines = sum(1 for _ in handle)

    start = time.perf_counter()
    ingested = ingest_dump(dump, tmp_path / f"fleet-{section}",
                           memory_budget_samples=MEMORY_BUDGET_SAMPLES)
    ingest_seconds = time.perf_counter() - start

    manifest = json.loads((tmp_path / f"fleet-{section}" / "manifest.json").read_text())
    summary = manifest["ingest"]
    # The whole point of the accumulator: peak memory bounded by the budget.
    assert summary["peak_buffered_samples"] <= MEMORY_BUDGET_SAMPLES
    assert summary["spilled_samples"] > 0, "budget never hit; bench not exercising spill"
    assert len(ingested) == INGEST_PAIRS
    _assert_bit_identical_survey(fleet, ingested)

    payload = {
        "pairs": INGEST_PAIRS,
        "trace_seconds": INGEST_DURATION,
        "dump_lines": lines,
        "dump_bytes": dump.stat().st_size,
        "export_seconds": export_seconds,
        "ingest_seconds": ingest_seconds,
        "lines_per_second": lines / ingest_seconds,
        "updates_per_second": summary["updates"] / ingest_seconds,
        "memory_budget_samples": MEMORY_BUDGET_SAMPLES,
        "peak_buffered_samples": summary["peak_buffered_samples"],
        "peak_buffer_bytes": summary["peak_buffered_samples"] * 16,
        "spilled_samples": summary["spilled_samples"],
        "spill_writes": summary["spill_writes"],
    }
    update_bench_json(section, payload, path=BENCH_INGEST_JSON)
    return payload


def test_gnmi_ingest_throughput(output_dir, tmp_path):
    payload = _run_ingest_bench("gnmi", export_gnmi_dump, "fleet.jsonl", tmp_path)
    print(f"\n=== gNMI ingest ({INGEST_PAIRS} pairs interleaved) ===")
    print(format_table([{
        "lines": payload["dump_lines"], "seconds": payload["ingest_seconds"],
        "lines_per_second": payload["lines_per_second"],
        "peak_buffer_mib": payload["peak_buffer_bytes"] / 2 ** 20,
        "spilled_samples": payload["spilled_samples"],
    }]))


def test_snmp_ingest_throughput(output_dir, tmp_path):
    payload = _run_ingest_bench("snmp", export_snmp_dump, "fleet.csv", tmp_path)
    print(f"\n=== SNMP ingest ({INGEST_PAIRS} pairs, wide CSV) ===")
    print(format_table([{
        "rows": payload["dump_lines"], "seconds": payload["ingest_seconds"],
        "rows_per_second": payload["lines_per_second"],
        "updates_per_second": payload["updates_per_second"],
        "peak_buffer_mib": payload["peak_buffer_bytes"] / 2 ** 20,
        "spilled_samples": payload["spilled_samples"],
    }]))
