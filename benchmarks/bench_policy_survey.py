"""Fleet policy survey: throughput + the cost/quality trajectory of the title claim.

The paper's headline is that Nyquist-informed sampling finds a better
cost/quality sweet spot than today's ad-hoc fixed-rate polling.  This
bench runs the fleet-scale policy survey end to end -- a leaf-spine
deployment served through :class:`DeploymentTraceSource`, the three-policy
:class:`PolicySuite`, hop-weighted pricing via
:class:`TelemetryCostAccountant` -- and records two trajectories in
``BENCH_policies.json`` (uploaded by CI alongside ``BENCH_survey.json``):

* **pipeline** -- evaluation throughput in points/second, single-process
  vs ``workers=2`` (records must be byte-identical), plus the out-of-core
  spill run; like the Nyquist survey bench, no worker speed-up is
  asserted on 1-CPU hosts -- the numbers are recorded for multi-core runs.
* **tradeoff** -- the relative-cost/quality table itself: the bench
  asserts the paper's ordering (fixed > Nyquist-static > adaptive total
  cost at bounded reconstruction error) so a regression in any layer of
  the policy stack shows up as a broken trajectory, not just a slower one.

Size via ``REPRO_BENCH_POLICY_LEAVES`` / ``REPRO_BENCH_POLICY_HOURS``
(CI smoke uses a small fabric to stay inside its time budget).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.policy_survey import run_policy_survey
from repro.analysis.reporting import format_table, write_csv
from repro.network.monitoring import DeploymentSpec
from repro.network.topology import TopologySpec
from repro.pipeline.policies import PolicySuite
from repro.records import SpillingRecordSink

from conftest import BENCH_POLICIES_JSON, update_bench_json

#: Demo fabric width (leaves; spines fixed at 2, two servers per leaf).
POLICY_LEAVES = int(os.environ.get("REPRO_BENCH_POLICY_LEAVES", "4"))

#: Reference trace length in hours.
POLICY_HOURS = float(os.environ.get("REPRO_BENCH_POLICY_HOURS", "12"))

#: Columns asserted byte-identical between worker counts.
_COLUMNS = ("device_ids", "samples", "mean_rate_hz", "nrmse", "max_abs_error",
            "hops", "collection_cpu_us", "transmission", "storage_bytes", "analysis")


def _demo():
    spec = DeploymentSpec(
        topology=TopologySpec(num_spines=2, num_leaves=POLICY_LEAVES,
                              servers_per_leaf=2),
        trace_duration=POLICY_HOURS * 3600.0, seed=11, oversample_factor=4.0)
    source = spec.open()
    suite = PolicySuite(production_oversample=4.0, adaptive_window=4 * 3600.0)
    return source, source.accountant(), suite


def test_policy_pipeline_workers_identical_records(output_dir, tmp_path):
    """run_policy_survey single-process vs worker pool vs spilled: same blocks."""
    source, accountant, suite = _demo()
    points = len(source)

    start = time.perf_counter()
    single = run_policy_survey(source, suite, accountant=accountant, chunk_size=64)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_policy_survey(source, suite, accountant=accountant, chunk_size=64,
                               workers=2)
    pooled_seconds = time.perf_counter() - start

    start = time.perf_counter()
    spilled = run_policy_survey(source, suite, accountant=accountant, chunk_size=64,
                                workers=2, sink=SpillingRecordSink(tmp_path / "spool"))
    spilled_seconds = time.perf_counter() - start

    for other in (pooled, spilled):
        blocks_a, blocks_b = list(single.iter_blocks()), list(other.iter_blocks())
        assert len(blocks_a) == len(blocks_b)
        for a, b in zip(blocks_a, blocks_b):
            assert (a.metric_name, a.policy_name) == (b.metric_name, b.policy_name)
            for column in _COLUMNS:
                assert np.array_equal(getattr(a, column), getattr(b, column),
                                      equal_nan=getattr(a, column).dtype == np.float64)

    spill_bytes = sum(path.stat().st_size for path in spilled.sink.files)
    update_bench_json("pipeline", {
        "points": points,
        "policies": single.policies(),
        "rows": len(single),
        "workers1_points_per_second": points / single_seconds,
        "workers2_points_per_second": points / pooled_seconds,
        "spilled_points_per_second": points / spilled_seconds,
        "spill_files": len(spilled.sink.files),
        "spill_bytes": spill_bytes,
        "cpu_count": os.cpu_count(),
    }, path=BENCH_POLICIES_JSON)
    print(f"\n=== Policy survey pipeline ({points} points x 3 policies) ===")
    print(format_table([
        {"mode": "workers=1", "seconds": single_seconds,
         "points_per_second": points / single_seconds},
        {"mode": "workers=2", "seconds": pooled_seconds,
         "points_per_second": points / pooled_seconds},
        {"mode": "workers=2 + spill", "seconds": spilled_seconds,
         "points_per_second": points / spilled_seconds},
    ]))


def test_policy_cost_quality_tradeoff(output_dir):
    """The title claim at fleet scale: relative cost ordering + bounded error."""
    source, accountant, suite = _demo()

    start = time.perf_counter()
    result = run_policy_survey(source, suite, accountant=accountant, workers=2,
                               chunk_size=64)
    seconds = time.perf_counter() - start

    rows = result.rows()
    relative = result.relative_costs("fixed")
    for row in rows:
        row["cost_vs_fixed"] = relative[str(row["policy"])]
    write_csv(output_dir / "policy_cost_quality.csv", rows)
    print(f"\n=== Fleet cost vs quality ({len(source)} points) ===")
    print(format_table(rows))

    by_policy = {row["policy"]: row for row in rows}
    # Who wins and by what factor: the paper's relative-cost ordering at
    # matched (bounded-nrmse) quality.
    assert relative["fixed"] == 1.0
    assert relative["nyquist-static"] < 0.85
    assert relative["adaptive-dual-rate"] < relative["nyquist-static"]
    assert by_policy["fixed"]["mean_nrmse"] < 0.1
    assert by_policy["nyquist-static"]["mean_nrmse"] < 0.4
    assert by_policy["adaptive-dual-rate"]["mean_nrmse"] < 0.4

    update_bench_json("tradeoff", {
        "points": len(source),
        "seconds": seconds,
        "points_per_second": len(source) / seconds,
        "relative_cost": relative,
        "mean_nrmse": {str(row["policy"]): row["mean_nrmse"] for row in rows},
        "worst_nrmse": {str(row["policy"]): row["worst_nrmse"] for row in rows},
        "samples": {str(row["policy"]): row["samples"] for row in rows},
    }, path=BENCH_POLICIES_JSON)
