"""Figure 3: the 400+440 Hz two-tone signal sampled at 890/800/600 Hz and reconstructed.

The paper's Figure 3 shows (top row) the PSD of the signal sampled above,
slightly below and far below its 880 Hz Nyquist rate, and (bottom row) the
time-domain reconstructions: only the version sampled above the Nyquist
rate reconstructs the original; the others are visibly distorted.

This bench reproduces the figure's panels numerically: for each sampling
rate it reports the two strongest spectral peaks (where the tones -- or
their aliases -- land) and the reconstruction error against the original.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.errors import compare
from repro.core.psd import periodogram
from repro.core.reconstruction import reconstruct
from repro.signals.generators import multi_tone, two_tone_figure3

#: The sampling rates of Figure 3 panels (b), (c), (d).
PANEL_RATES = {"3b_above_nyquist": 890.0, "3c_slightly_below": 800.0, "3d_far_below": 600.0}


def run_figure3():
    original = two_tone_figure3(duration=1.0, sampling_rate=2000.0)
    rows = []
    for panel, rate in PANEL_RATES.items():
        sampled = multi_tone([400.0, 440.0], duration=1.0, sampling_rate=rate)
        spectrum = periodogram(sampled).without_dc()
        strongest = spectrum.frequencies[np.argsort(spectrum.power)[::-1][:2]]
        reconstruction = reconstruct(sampled, original.sampling_rate)
        error = compare(original, reconstruction)
        rows.append({
            "panel": panel,
            "sampling_rate_hz": rate,
            "peak1_hz": float(np.min(strongest)),
            "peak2_hz": float(np.max(strongest)),
            "reconstruction_nrmse": error.nrmse,
            "reconstruction_l2": error.l2,
        })
    return rows


def test_fig3_two_tone_reconstruction(benchmark, output_dir):
    rows = benchmark(run_figure3)
    write_csv(output_dir / "fig3_two_tone_demo.csv", rows)

    print("\n=== Figure 3: two-tone signal sampled at 890/800/600 Hz ===")
    print(format_table(rows))

    by_panel = {row["panel"]: row for row in rows}
    # Panel (b): sampled above Nyquist -> peaks at 400/440 Hz, near-perfect recovery.
    assert by_panel["3b_above_nyquist"]["peak1_hz"] == 400.0
    assert by_panel["3b_above_nyquist"]["peak2_hz"] == 440.0
    assert by_panel["3b_above_nyquist"]["reconstruction_nrmse"] < 0.01
    # Panels (c)/(d): aliasing moves the peaks and distorts the reconstruction.
    assert by_panel["3c_slightly_below"]["reconstruction_nrmse"] > 0.1
    assert by_panel["3d_far_below"]["reconstruction_nrmse"] > 0.1
    assert by_panel["3d_far_below"]["peak2_hz"] < 400.0
