"""Section 6 "Beyond Nyquist": ergodicity and canary sizing.

The paper asks whether fleet metrics are ergodic -- whether one device
observed long enough looks like the whole fleet observed at an instant --
because canarying implicitly assumes so.  This bench builds a CPU-utilisation
fleet, measures the ergodicity gap as a function of the observation period,
and estimates the minimum canary size for a 5% tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.ergodicity import ergodicity_report, minimum_canary_size
from repro.telemetry.fleet import build_fleet
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import draw_metric_parameters

FLEET_SIZE = 32
FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def build_cpu_fleet(seed: int = 77):
    spec = METRIC_CATALOG["5-pct CPU util"]
    traces = []
    for profile in build_fleet(FLEET_SIZE, seed=seed):
        params = draw_metric_parameters(spec, profile, 86400.0, broadband_fraction=0.0,
                                        rng=np.random.default_rng(profile.seed))
        traces.append(generate_trace(spec, params, 86400.0,
                                     rng=np.random.default_rng(profile.seed)))
    return traces


def analyse(traces):
    report = ergodicity_report(traces, device_index=0, fractions=FRACTIONS)
    canary = minimum_canary_size(traces, tolerance=0.05, rng=np.random.default_rng(1))
    return report, canary


def test_ergodicity_and_canary(benchmark, output_dir):
    traces = build_cpu_fleet()
    report, canary = benchmark.pedantic(analyse, args=(traces,), rounds=1, iterations=1)

    rows = [{"observation_hours": duration / 3600.0, "relative_gap": gap}
            for duration, gap in zip(report.durations, report.gaps)]
    rows.append({"observation_hours": float("nan"), "relative_gap": float("nan")})
    write_csv(output_dir / "ergodicity_gap.csv", rows[:-1])
    write_csv(output_dir / "ergodicity_canary.csv",
              [{"fleet_size": FLEET_SIZE, "tolerance": 0.05, "min_canary_size": canary}])

    print("\n=== Section 6: ergodicity gap vs observation period ===")
    print(format_table(rows[:-1]))
    print(f"minimum canary size for 5% tolerance: {canary} of {FLEET_SIZE} devices")

    # A single device's time average lands within ~35% of the fleet mean at
    # some observation period for this workload -- but not necessarily
    # monotonically (its own diurnal cycle pulls the full-day average away
    # from the instant the fleet snapshot was taken, which is itself a
    # caveat for naive canarying that the paper's questions anticipate).
    assert min(report.gaps) < 0.35
    assert report.gaps[-1] < 0.5
    # Canarying a strict subset suffices, but a single device does not.
    assert 1 < canary <= FLEET_SIZE
