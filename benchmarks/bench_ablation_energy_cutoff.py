"""Ablation of the 99% energy cut-off (and the DC-handling choice).

Section 3.2: "Our choice of the 99% cut-off on total energy is a workaround
to compensate for measurement noise.  Using a higher parameter value such
as 99.99% would increase our estimate of the Nyquist rate and reduce
performance gains but, in our experience, does not necessarily lead to a
lower reconstruction error since the delta that is being captured is often
just the noise."

This bench sweeps the cut-off (and the include-DC switch called out in
DESIGN.md) over a set of noisy temperature/link-utilisation traces and
reports, for each setting, the median estimated rate, the median achievable
reduction and the reconstruction error after a Nyquist round trip --
verifying the paper's argument that the extra rate bought by a stricter
cut-off does not buy lower error.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, write_csv
from repro.core.nyquist import NyquistEstimator
from repro.core.reconstruction import nyquist_round_trip
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters

ENERGY_FRACTIONS = [0.95, 0.99, 0.999, 0.9999]
TRACES_PER_METRIC = 4


def build_traces(seed: int = 41):
    traces = []
    for metric_name in ("Temperature", "Link util"):
        spec = METRIC_CATALOG[metric_name]
        for index in range(TRACES_PER_METRIC):
            device = DeviceProfile(f"ablate-{metric_name}-{index}", DeviceRole.TOR_SWITCH,
                                   seed=seed + index)
            params = draw_metric_parameters(spec, device, 86400.0, broadband_fraction=0.0,
                                            rng=np.random.default_rng(seed + index))
            traces.append(generate_trace(spec, params, 86400.0,
                                         rng=np.random.default_rng(seed + index)))
    return traces


def sweep(traces):
    rows = []
    for include_dc in (False, True):
        for fraction in ENERGY_FRACTIONS:
            estimator = NyquistEstimator(energy_fraction=fraction, include_dc=include_dc)
            rates, ratios, errors = [], [], []
            for trace in traces:
                estimate = estimator.estimate(trace)
                if not estimate.reliable:
                    continue
                result = nyquist_round_trip(trace, estimator=estimator, headroom=1.5)
                rates.append(estimate.nyquist_rate)
                ratios.append(estimate.reduction_ratio)
                errors.append(result.error.nrmse)
            rows.append({
                "include_dc": include_dc,
                "energy_fraction": fraction,
                "reliable_traces": len(rates),
                "median_nyquist_hz": float(np.median(rates)) if rates else float("nan"),
                "median_reduction": float(np.median(ratios)) if ratios else float("nan"),
                "median_nrmse": float(np.median(errors)) if errors else float("nan"),
            })
    return rows


def test_ablation_energy_cutoff(benchmark, output_dir):
    traces = build_traces()
    rows = benchmark.pedantic(sweep, args=(traces,), rounds=1, iterations=1)
    write_csv(output_dir / "ablation_energy_cutoff.csv", rows)

    print("\n=== Ablation: energy cut-off (and DC handling) ===")
    print(format_table(rows))

    no_dc = {row["energy_fraction"]: row for row in rows if not row["include_dc"]}
    # A stricter cut-off estimates a rate at least as high and therefore
    # saves less (paper's point 1)...
    assert no_dc[0.9999]["median_nyquist_hz"] >= no_dc[0.99]["median_nyquist_hz"] - 1e-12
    assert no_dc[0.9999]["median_reduction"] <= no_dc[0.99]["median_reduction"] + 1e-9
    assert no_dc[0.9999]["median_reduction"] <= 0.6 * no_dc[0.99]["median_reduction"]
    # ...while the 99% setting is already accurate enough that the extra
    # fidelity is not needed (the paper's point 2: the delta bought by a
    # stricter threshold is largely noise/quantisation detail).
    assert no_dc[0.99]["median_nrmse"] < 0.06
    # Including the DC bin makes the cut-off collapse towards the lowest
    # frequencies (the DESIGN.md rationale for excluding it).
    with_dc = {row["energy_fraction"]: row for row in rows if row["include_dc"]}
    assert with_dc[0.99]["median_nyquist_hz"] <= no_dc[0.99]["median_nyquist_hz"] + 1e-12
