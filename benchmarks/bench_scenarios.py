"""Scenario matrix: where the paper's cost ordering holds, and where it inverts.

The headline table claims fixed > nyquist-static > adaptive-dual-rate
total cost at bounded error.  This bench maps that claim across the
(scenario x fabric) grid from :mod:`repro.scenarios.presets` -- regime
shifts, calibration storms, flapping churn, counter pathologies and
blackouts, each hop-priced on leaf-spine, fat-tree and WAN-ring fabrics
-- and records every cell's verdict in ``BENCH_scenarios.json`` (uploaded
by CI alongside the other trajectory files):

* **cells** -- per-cell ordering verdict, relative/total costs,
  mean/worst nrmse, and for shifted scenarios the adaptive controller's
  *measured* re-probe/re-settle latency plus its rate trajectory;
* **summary** -- matrix shape, which cells inverted, and matrix
  throughput in cells/second.

The bench asserts the matrix's two load-bearing rows: the stationary
leaf-spine cell must reproduce the paper ordering, and every flap-churn
cell must invert the adaptive leg (direction asserted, not magnitude).

Size via ``REPRO_BENCH_SCENARIO_SMOKE=1`` (CI: the reduced 2x2
stationary/flap-churn x leaf-spine/wan-ring grid) and
``REPRO_BENCH_SCENARIO_HOURS`` (trace length; default 12).
"""

from __future__ import annotations

import os
import time

from repro.analysis.reporting import format_table, write_csv
from repro.scenarios import run_matrix
from repro.scenarios.matrix import ADAPTIVE, NYQUIST_STATIC
from repro.scenarios.presets import (default_fabrics, default_scenarios, paper_suite,
                                     smoke_fabrics, smoke_scenarios)

from conftest import BENCH_SCENARIOS_JSON, update_bench_json

#: CI smoke switch: the reduced 2x2 grid instead of the full matrix.
SCENARIO_SMOKE = os.environ.get("REPRO_BENCH_SCENARIO_SMOKE", "0") == "1"

#: Reference trace length in hours.
SCENARIO_HOURS = float(os.environ.get("REPRO_BENCH_SCENARIO_HOURS", "12"))


def test_scenario_matrix(output_dir):
    """Every (scenario x fabric) cell surveyed, verdicts recorded and pinned."""
    if SCENARIO_SMOKE:
        scenarios = smoke_scenarios()
        fabrics = smoke_fabrics(hours=SCENARIO_HOURS)
    else:
        scenarios = default_scenarios()
        fabrics = default_fabrics(hours=SCENARIO_HOURS)
    suite = paper_suite()

    start = time.perf_counter()
    result = run_matrix(scenarios, fabrics, suite)
    seconds = time.perf_counter() - start

    rows = []
    for cell in result.cells:
        rows.append({
            "scenario": cell.scenario,
            "fabric": cell.fabric,
            "points": cell.points,
            "holds": cell.holds_paper_ordering,
            "nyquist_vs_fixed": cell.relative_costs[NYQUIST_STATIC],
            "adaptive_vs_fixed": cell.relative_costs[ADAPTIVE],
            "reprobe_latency_s": cell.reprobe_latency_s,
            "verdict": cell.verdict,
        })
    write_csv(output_dir / "scenario_matrix.csv", rows)
    print(f"\n=== Scenario matrix ({len(scenarios)} scenarios x "
          f"{len(fabrics)} fabrics, {seconds:.1f}s) ===")
    print(format_table(rows))

    # The two rows the matrix exists to separate.  Stationary leaf-spine
    # is the paper's own operating point: the ordering must hold.
    stationary = result.cell("stationary", "leaf-spine")
    assert stationary.holds_paper_ordering, stationary.verdict
    assert stationary.relative_costs[NYQUIST_STATIC] < 1.0
    assert stationary.relative_costs[ADAPTIVE] < stationary.relative_costs[NYQUIST_STATIC]
    # Flap-churn is the documented inversion: recurring regime churn from
    # inside the controller's first window defeats adaptive settling on
    # every fabric.  Direction is asserted, never magnitude.
    for fabric_name in fabrics:
        churn = result.cell("flap-churn", fabric_name)
        assert not churn.holds_paper_ordering, churn.verdict
        assert churn.relative_costs[ADAPTIVE] >= churn.relative_costs[NYQUIST_STATIC]
    # Every shifted scenario records a measured (or explicitly
    # unmeasurable) reaction; the full matrix's incident row must
    # actually measure one.
    if not SCENARIO_SMOKE:
        incident = result.cell("incident", "leaf-spine")
        assert incident.shift_time_s is not None
        assert incident.reprobe_latency_s is not None
        assert incident.reprobe_latency_s > 0.0

    update_bench_json("cells", result.to_payload(), path=BENCH_SCENARIOS_JSON)
    update_bench_json("summary", {
        "scenarios": [scenario.name for scenario in scenarios],
        "fabrics": list(fabrics),
        "cells": len(result.cells),
        "inversions": [cell.key for cell in result.inversions()],
        "seconds": seconds,
        "cells_per_second": len(result.cells) / seconds,
        "smoke": SCENARIO_SMOKE,
    }, path=BENCH_SCENARIOS_JSON)
