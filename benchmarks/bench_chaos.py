"""Seeded chaos drill: quarantine survival across the fault matrix.

Every run injects a :class:`~repro.faults.FaultPlan` into the survey and
ingest pipelines and measures what ``on_error="quarantine"`` salvages:

* **survey fault matrix** -- one quarantined fleet survey per fault kind
  (corrupt/truncated trace files raise and are quarantined; counter
  wraps, device reboots and blackouts degrade data but must not cost a
  record).  Asserts every injected fault is accounted for exactly once
  and every healthy pair's record is bit-identical to the clean run.
* **transient IO errors** -- ``io-error`` pairs fail their first open;
  the bounded retry must recover all of them (zero quarantined).
* **worker crash** -- a pool worker hard-exits on a chosen batch slice;
  the rebuilt pool must finish with records byte-identical to a clean
  multi-worker run (no loss, no duplicates).
* **malformed dump lines** -- every Nth line of a gNMI export is
  mangled; quarantined ingest must drop exactly those lines and record
  their provenance.

Sizes via ``REPRO_BENCH_CHAOS_PAIRS`` (default 196 pairs),
``REPRO_BENCH_CHAOS_FRACTION`` (default 0.05, the paper-scale ~5% fault
rate) and ``REPRO_BENCH_CHAOS_SEED``; the CI smoke job shrinks the fleet
to stay inside its time budget.  Numbers land in
``benchmarks/output/BENCH_chaos.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.survey import run_survey
from repro.faults import (DATA_FAULT_KINDS, FaultInjectingTraceSource, FaultPlan,
                          corrupt_dump_lines)
from repro.records import MemoryRecordSink
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import export_gnmi_dump, ingest_dump

from conftest import BENCH_CHAOS_JSON, update_bench_json

#: Fleet size of the chaos drills (kept below the survey bench's default:
#: each fault kind re-runs the whole survey).
CHAOS_PAIRS = int(os.environ.get("REPRO_BENCH_CHAOS_PAIRS", "196"))

#: Fraction of pairs afflicted -- the acceptance scenario is ~5%.
CHAOS_FRACTION = float(os.environ.get("REPRO_BENCH_CHAOS_FRACTION", "0.05"))

#: Master seed of every fault plan in the matrix.
CHAOS_SEED = int(os.environ.get("REPRO_BENCH_CHAOS_SEED", "7"))

#: Survey batch size; small enough that crash/retry drills span slices.
CHAOS_CHUNK = int(os.environ.get("REPRO_BENCH_CHAOS_CHUNK", "8"))


def _fleet() -> FleetDataset:
    return FleetDataset(DatasetConfig(pair_count=CHAOS_PAIRS, seed=CHAOS_SEED))


def _clean_records(dataset) -> dict:
    return {(r.metric_name, r.device_id): r
            for r in run_survey(dataset, chunk_size=CHAOS_CHUNK).records}


def _assert_healthy_records_identical(records, clean, faulty_keys) -> None:
    for record in records:
        key = (record.metric_name, record.device_id)
        if key in faulty_keys:
            continue
        twin = clean[key]
        assert record.category is twin.category
        for field in ("current_rate", "nyquist_rate", "reduction_ratio",
                      "true_nyquist_rate"):
            assert np.array_equal(getattr(record, field), getattr(twin, field),
                                  equal_nan=True), (key, field)


def test_survey_quarantine_fault_matrix(output_dir):
    dataset = _fleet()
    clean = _clean_records(dataset)
    matrix = {}
    for kind in ("corrupt-trace", "truncated-trace") + DATA_FAULT_KINDS:
        plan = FaultPlan(seed=CHAOS_SEED, fraction=CHAOS_FRACTION, kinds=(kind,))
        faulty_keys = {pair.key for pair in dataset.pairs()
                       if plan.affects(*pair.key)}
        assert faulty_keys, f"seeded plan injected no {kind} faults; enlarge fleet"
        chaotic = FaultInjectingTraceSource(dataset, plan)
        start = time.perf_counter()
        result = run_survey(chaotic, chunk_size=CHAOS_CHUNK,
                            on_error="quarantine")
        seconds = time.perf_counter() - start
        raising = kind in ("corrupt-trace", "truncated-trace")
        expected_quarantined = len(faulty_keys) if raising else 0
        # Every fault accounted for exactly once; data faults cost nothing.
        assert result.quarantined_count == expected_quarantined, kind
        assert len(result) == len(clean) - expected_quarantined, kind
        if raising:
            assert {(f.metric_name, f.device_id)
                    for f in result.quarantined} == faulty_keys, kind
        _assert_healthy_records_identical(result.records, clean, faulty_keys)
        matrix[kind] = {
            "faulty_pairs": len(faulty_keys),
            "quarantined_pairs": result.quarantined_count,
            "surviving_records": len(result),
            "survey_seconds": seconds,
        }
    update_bench_json("survey_fault_matrix", {
        "pairs": CHAOS_PAIRS, "fraction": CHAOS_FRACTION, "seed": CHAOS_SEED,
        "kinds": matrix,
    }, path=BENCH_CHAOS_JSON)
    print(f"\n=== survey fault matrix ({CHAOS_PAIRS} pairs, "
          f"{CHAOS_FRACTION:.0%} faulty) ===")
    print(format_table([{"kind": kind, **stats}
                        for kind, stats in matrix.items()]))


def test_transient_io_errors_recovered_by_retry(output_dir, tmp_path):
    dataset = _fleet()
    clean = _clean_records(dataset)
    plan = FaultPlan(seed=CHAOS_SEED, fraction=CHAOS_FRACTION,
                     kinds=("io-error",), io_error_opens=1,
                     state_dir=str(tmp_path / "state"))
    faulty = sum(plan.affects(*pair.key) for pair in dataset.pairs())
    assert faulty, "seeded plan injected no io-error faults; enlarge fleet"
    chaotic = FaultInjectingTraceSource(dataset, plan)
    start = time.perf_counter()
    result = run_survey(chaotic, chunk_size=CHAOS_CHUNK, on_error="quarantine",
                        retry_sleep=lambda delay: None)
    seconds = time.perf_counter() - start
    # One transient failure per pair, all inside the retry budget.
    assert result.quarantined_count == 0
    assert len(result) == len(clean)
    _assert_healthy_records_identical(result.records, clean, set())
    update_bench_json("transient_io_retry", {
        "pairs": CHAOS_PAIRS, "faulty_pairs": faulty,
        "quarantined_pairs": 0, "survey_seconds": seconds,
    }, path=BENCH_CHAOS_JSON)
    print(f"\n=== transient io-error retry: {faulty} faulty pairs, "
          f"all recovered in {seconds:.2f}s ===")


def test_worker_crash_recovery(output_dir, tmp_path):
    dataset = _fleet()
    metric = dataset.metric_names()[0]
    plan = FaultPlan(seed=CHAOS_SEED, fraction=0.0,
                     crash_slices=((metric, 0),),
                     state_dir=str(tmp_path / "state"))
    chaotic = FaultInjectingTraceSource(dataset, plan)
    start = time.perf_counter()
    crashed = run_survey(chaotic, chunk_size=CHAOS_CHUNK, workers=2,
                         on_error="quarantine", retry_sleep=lambda delay: None)
    seconds = time.perf_counter() - start
    clean = run_survey(dataset, chunk_size=CHAOS_CHUNK, workers=2)
    assert crashed.quarantined_count == 0
    assert len(crashed) == len(clean)
    # No loss, no duplicates: block streams byte-identical.
    for mine, theirs in zip(crashed.iter_blocks(), clean.iter_blocks()):
        assert mine.metric_name == theirs.metric_name
        assert np.array_equal(mine.device_ids, theirs.device_ids)
        assert np.array_equal(mine.nyquist_rate, theirs.nyquist_rate,
                              equal_nan=True)
    update_bench_json("worker_crash", {
        "pairs": CHAOS_PAIRS, "crash_slices": 1,
        "quarantined_pairs": 0, "survey_seconds": seconds,
    }, path=BENCH_CHAOS_JSON)
    print(f"\n=== worker crash drill: pool rebuilt, run completed in "
          f"{seconds:.2f}s ===")


def test_ingest_quarantines_malformed_lines(output_dir, tmp_path):
    fleet = FleetDataset(DatasetConfig(
        pair_count=min(CHAOS_PAIRS, 56), seed=CHAOS_SEED,
        trace_duration=7200.0))
    dump = export_gnmi_dump(fleet, tmp_path / "fleet.jsonl")
    dirty = tmp_path / "dirty.jsonl"
    plan = FaultPlan(seed=CHAOS_SEED, malformed_line_every=101)
    mangled = corrupt_dump_lines(dump, dirty, plan)
    assert mangled, "dump too small to mangle; enlarge fleet"
    sink = MemoryRecordSink()
    start = time.perf_counter()
    ingest_dump(dirty, tmp_path / "ingested", on_error="quarantine",
                failure_sink=sink)
    seconds = time.perf_counter() - start
    failures = [f for block in sink.blocks() for f in block.failures()]
    assert [int(f.provenance.rsplit(":", 1)[1]) for f in failures] == mangled
    with dirty.open() as handle:
        lines = sum(1 for _ in handle)
    update_bench_json("ingest_malformed_lines", {
        "dump_lines": lines, "mangled_lines": len(mangled),
        "quarantined_lines": len(failures), "ingest_seconds": seconds,
    }, path=BENCH_CHAOS_JSON)
    print(f"\n=== quarantined ingest: {len(mangled)}/{lines} lines dropped "
          f"in {seconds:.2f}s ===")
