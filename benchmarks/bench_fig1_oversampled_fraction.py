"""Figure 1: fraction of devices per metric currently sampled above the Nyquist rate.

The paper's Figure 1 is a bar chart with one bar per monitoring system
(metric family); each bar is the fraction of that system's measurement
points whose deployed sampling rate exceeds the estimated Nyquist rate.
Paper result: the vast majority of points for every metric are
over-sampled.  This bench regenerates those bars from the synthetic fleet
and times the per-metric aggregation.
"""

from __future__ import annotations

from repro.analysis.reporting import ascii_bar_chart, format_table, write_csv


def test_fig1_oversampled_fraction(benchmark, survey_result, output_dir):
    fractions = benchmark(survey_result.oversampled_fraction_by_metric)

    rows = [{"metric": metric, "oversampled_fraction": fraction}
            for metric, fraction in fractions.items()]
    write_csv(output_dir / "fig1_oversampled_fraction.csv", rows)

    print("\n=== Figure 1: fraction of devices sampled above the Nyquist rate ===")
    print(ascii_bar_chart(fractions, maximum=1.0))
    print(format_table(rows))

    # Shape check (paper: "a vast majority of measurement points" for every
    # metric, 89% overall): most metrics should be predominantly over-sampled.
    high = sum(1 for fraction in fractions.values() if fraction >= 0.6)
    assert high >= len(fractions) * 0.7
