"""Section 3.2 headline statistics: the numbers quoted in the paper's text.

Paper claims being reproduced:

* "In total, we studied 1613 metric and device pairs (14 distinct metrics)."
* "Of these, 89% were sampling at higher than their Nyquist rate."
* "the existing sampling rate is below the Nyquist rate ... in about 11% of
  the metric-device pairs."
* "in 20% of the examples the sampling rate can be reduced by a factor of 1000x."
* "for the temperature signal, the Nyquist rate ranges from 7.99e-7 Hz to 0.003 Hz."

The default bench surveys a smaller fleet (set REPRO_BENCH_PAIRS=1613 for
the full paper-scale run); the shape -- not the absolute trace count -- is
the reproduction target, and EXPERIMENTS.md records both.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, write_csv
from repro.analysis.survey import run_survey


def test_headline_statistics(benchmark, survey_dataset, output_dir):
    result = benchmark.pedantic(run_survey, args=(survey_dataset,), rounds=1, iterations=1)
    headline = result.headline()
    accuracy = result.estimation_accuracy()

    rows = [{"statistic": key, "measured": value} for key, value in headline.items()]
    rows += [{"statistic": f"estimator_accuracy_{key}", "measured": value}
             for key, value in accuracy.items()]
    write_csv(output_dir / "headline_stats.csv", rows)

    print("\n=== Section 3.2 headline statistics ===")
    print(format_table(rows))

    # Qualitative reproduction of the paper's claims.
    assert headline["metrics"] == 14
    assert 0.75 <= headline["oversampled_fraction"] <= 0.97          # paper: 0.89
    assert 0.03 <= headline["undersampled_or_suspect_fraction"] <= 0.25  # paper: 0.11
    # The needs-inspection population splits into at-the-band-edge marginal
    # pairs and outright-refused estimates; together they are the legacy key.
    assert abs(headline["undersampled_or_suspect_fraction"]
               - headline["marginal_fraction"]
               - headline["aliased_suspect_fraction"]) < 1e-12
    assert headline["reducible_10x_fraction"] > 0.5
    assert headline["reducible_100x_fraction"] > 0.2
    assert headline["reducible_1000x_fraction"] > 0.03               # paper: 0.20 (see EXPERIMENTS.md)
    # Temperature Nyquist rates span orders of magnitude up to ~3e-3 Hz.
    assert headline["temperature_nyquist_max_hz"] <= 4e-3
    assert headline["temperature_nyquist_max_hz"] / headline["temperature_nyquist_min_hz"] > 30
