"""Record-store correctness: hits equal recomputation, misses on any change.

The :class:`~repro.records.RecordStore` contract is byte-equivalence:
a fingerprint hit must serve exactly the blocks a fresh run would
produce, at any worker count, and anything that can change those bytes
-- estimator parameters, trace contents, the slice address -- must
change the fingerprint and force a miss.  Failed (quarantined) slices
must never be cached, because a salvaged block is not the answer a
healthy rerun would give.

These tests drive both fan-outs (``run_survey`` and
``run_policy_survey``) against stores on disk, plus the spill-sink
ordering regression (numeric file ordering past ten blocks) the store's
scratch files rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.policy_survey import run_policy_survey
from repro.analysis.survey import run_survey
from repro.core.nyquist import NyquistEstimator
from repro.faults import FaultInjectingTraceSource, FaultPlan
from repro.pipeline.policies import PolicySuite
from repro.records import (PairFingerprint, RecordStore, SpillingRecordSink,
                           fingerprint_slice)
from repro.telemetry.dataset import DatasetConfig, FleetDataset

CONFIG = DatasetConfig(pair_count=56, seed=5)


def block_payloads(blocks) -> list:
    """Every (scalar values, column bytes) of a block stream, in order."""
    payloads = []
    for block in blocks:
        schema = type(block)._SCHEMA
        payloads.append((
            type(block).__name__,
            tuple(getattr(block, spec.name) for spec in schema.scalars),
            tuple(np.asarray(getattr(block, spec.name)).tobytes()
                  for spec in schema.columns),
        ))
    return payloads


@pytest.fixture()
def dataset() -> FleetDataset:
    return FleetDataset(CONFIG)


@pytest.fixture()
def store(tmp_path) -> RecordStore:
    return RecordStore(tmp_path / "store")


# ----------------------------------------------------------------------
class TestRecordStoreDirectory:
    def test_reopening_a_store_is_fine(self, tmp_path):
        RecordStore(tmp_path / "store")
        RecordStore(tmp_path / "store")

    def test_foreign_format_marker_raises(self, tmp_path):
        directory = tmp_path / "store"
        RecordStore(directory)
        (directory / "store.json").write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="something-else"):
            RecordStore(directory)

    def test_corrupt_marker_raises_naming_path(self, tmp_path):
        directory = tmp_path / "store"
        RecordStore(directory)
        (directory / "store.json").write_text("{not json")
        with pytest.raises(ValueError, match="store.json"):
            RecordStore(directory)

    def test_put_is_idempotent_and_get_round_trips(self, dataset, store):
        result = run_survey(dataset, limit_per_metric=4, chunk_size=4)
        blocks = list(result.iter_blocks())[:1]
        fingerprint = fingerprint_slice("survey", dataset, blocks[0].metric_name,
                                        0, 4, 4, "params")
        assert store.get(fingerprint) is None
        assert fingerprint not in store
        store.put(fingerprint, blocks)
        store.put(fingerprint, blocks)  # second publish is a no-op
        assert fingerprint in store
        loaded = store.get(fingerprint)
        assert block_payloads(loaded) == block_payloads(blocks)
        assert store.rows == len(blocks[0])

    def test_fingerprint_digest_is_stable_and_sensitive(self):
        base = dict(kind="survey", metric_name="Temperature", offset=0, limit=4,
                    chunk_size=4, params_token="p", content_digest="c")
        digest = PairFingerprint(**base).digest
        assert PairFingerprint(**base).digest == digest
        for field, value in [("params_token", "q"), ("content_digest", "d"),
                             ("offset", 4), ("kind", "policy")]:
            assert PairFingerprint(**{**base, field: value}).digest != digest

    def test_unfingerprintable_source_raises(self):
        class Opaque:
            def pairs_for_metric(self, name):
                return []
        with pytest.raises(ValueError, match="pair_content_token"):
            fingerprint_slice("survey", Opaque(), "Temperature", 0, 4, 4, "p")


# ----------------------------------------------------------------------
class TestSurveyStoreEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_warm_run_is_all_hits_and_byte_identical(self, dataset, store,
                                                     workers):
        cold = run_survey(dataset, store=store, chunk_size=4, workers=workers)
        assert (cold.cache_hits, cold.cache_misses) == (0, len(dataset.pairs()))
        warm = run_survey(FleetDataset(CONFIG), store=store, chunk_size=4,
                          workers=workers)
        assert (warm.cache_hits, warm.cache_misses) == (len(dataset.pairs()), 0)
        assert block_payloads(warm.iter_blocks()) == block_payloads(cold.iter_blocks())

    def test_hits_cross_worker_counts(self, dataset, store):
        cold = run_survey(dataset, store=store, chunk_size=4, workers=2)
        warm = run_survey(dataset, store=store, chunk_size=4, workers=1)
        assert warm.cache_misses == 0
        assert block_payloads(warm.iter_blocks()) == block_payloads(cold.iter_blocks())

    def test_store_matches_storeless_run(self, dataset, store):
        plain = run_survey(FleetDataset(CONFIG), chunk_size=4)
        stored = run_survey(dataset, store=store, chunk_size=4)
        rerun = run_survey(dataset, store=store, chunk_size=4)
        assert block_payloads(stored.iter_blocks()) == block_payloads(plain.iter_blocks())
        assert block_payloads(rerun.iter_blocks()) == block_payloads(plain.iter_blocks())

    def test_warm_run_performs_zero_estimator_calls(self, dataset, store,
                                                    monkeypatch):
        run_survey(dataset, store=store, chunk_size=4)

        def explode(*args, **kwargs):
            raise AssertionError("estimator called on a fully cached run")

        monkeypatch.setattr(NyquistEstimator, "estimate_batch", explode)
        monkeypatch.setattr(NyquistEstimator, "estimate", explode)
        warm = run_survey(FleetDataset(CONFIG), store=store, chunk_size=4)
        assert warm.cache_misses == 0
        assert len(warm) == len(dataset.pairs())

    def test_estimator_parameter_change_invalidates(self, dataset, store):
        run_survey(dataset, store=store, chunk_size=4,
                   estimator=NyquistEstimator(energy_fraction=0.99))
        changed = run_survey(dataset, store=store, chunk_size=4,
                             estimator=NyquistEstimator(energy_fraction=0.95))
        assert changed.cache_hits == 0
        assert changed.cache_misses == len(dataset.pairs())

    def test_oversample_threshold_change_invalidates(self, dataset, store):
        run_survey(dataset, store=store, chunk_size=4)
        changed = run_survey(dataset, store=store, chunk_size=4,
                             oversample_threshold=2.0)
        assert changed.cache_hits == 0

    def test_chunk_size_change_invalidates(self, dataset, store):
        run_survey(dataset, store=store, chunk_size=4)
        changed = run_survey(dataset, store=store, chunk_size=8)
        assert changed.cache_hits == 0

    def test_dataset_change_invalidates(self, store):
        run_survey(FleetDataset(CONFIG), store=store, chunk_size=4)
        other = FleetDataset(DatasetConfig(pair_count=56, seed=6))
        changed = run_survey(other, store=store, chunk_size=4)
        assert changed.cache_hits == 0

    def test_store_requires_batched_backend(self, dataset, store):
        with pytest.raises(ValueError, match="batched"):
            run_survey(dataset, store=store, backend="scalar")


# ----------------------------------------------------------------------
class TestMeasuredFleetContentInvalidation:
    def test_rewritten_trace_file_invalidates_its_slice(self, tmp_path):
        fleet = FleetDataset(DatasetConfig(pair_count=14, seed=5,
                                           metrics=("Temperature", "Link util")))
        measured = fleet.export(tmp_path / "fleet")
        store = RecordStore(tmp_path / "store")
        cold = run_survey(measured, store=store, chunk_size=4)
        assert cold.cache_misses == 14

        # Re-record one Temperature trace with different contents (another
        # device's trace of the same metric keeps the manifest valid).
        pairs = measured.pairs_for_metric("Temperature")
        victim, donor = pairs[0], pairs[1]
        victim_path = measured.directory / victim.file
        donor_path = measured.directory / donor.file
        assert victim_path.read_bytes() != donor_path.read_bytes()
        victim_path.write_bytes(donor_path.read_bytes())

        warm = run_survey(measured, store=store, chunk_size=4)
        # Only the slice holding the rewritten file misses; everything
        # else is served from the store.
        assert 0 < warm.cache_misses <= 4
        assert warm.cache_hits == 14 - warm.cache_misses
        # And the recomputed records reflect the new trace bytes.
        fresh = run_survey(measured, chunk_size=4)
        assert block_payloads(warm.iter_blocks()) == block_payloads(fresh.iter_blocks())


# ----------------------------------------------------------------------
class TestQuarantinedSlicesNeverCached:
    PLAN = FaultPlan(seed=3, fraction=0.15,
                     kinds=("corrupt-trace", "truncated-trace"))

    @pytest.fixture()
    def chaotic(self, dataset):
        return FaultInjectingTraceSource(dataset, self.PLAN)

    @pytest.fixture()
    def faulty_count(self, dataset):
        return sum(1 for pair in dataset.pairs() if self.PLAN.affects(*pair.key))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_faulty_slices_miss_again_healthy_slices_hit(self, chaotic, store,
                                                         faulty_count, workers):
        assert faulty_count > 0
        cold = run_survey(chaotic, store=store, chunk_size=4,
                          on_error="quarantine", workers=workers)
        assert cold.quarantined_count == faulty_count
        warm = run_survey(chaotic, store=store, chunk_size=4,
                          on_error="quarantine", workers=workers)
        # Quarantined slices were not cached: they recompute (and
        # re-quarantine) on every run, while healthy slices hit.
        assert warm.cache_misses > 0
        assert warm.cache_hits > 0
        assert warm.cache_hits + warm.cache_misses == len(chaotic.pairs())
        assert warm.quarantined_count == faulty_count
        assert block_payloads(warm.iter_blocks()) == block_payloads(cold.iter_blocks())

    def test_no_store_entry_covers_a_faulty_pair(self, chaotic, store, dataset):
        run_survey(chaotic, store=store, chunk_size=4, on_error="quarantine")
        cached_rows = store.rows
        total = len(dataset.pairs())
        faulty = sum(1 for pair in dataset.pairs() if self.PLAN.affects(*pair.key))
        # Every slice containing a faulty pair stayed out of the store,
        # so the cached row count excludes at least the faulty pairs.
        assert cached_rows <= total - faulty


# ----------------------------------------------------------------------
class TestPolicySurveyStore:
    SUITE = PolicySuite(production_oversample=1.0, adaptive_window=2 * 3600.0)
    FLEET = DatasetConfig(pair_count=28, seed=5, trace_duration=21600.0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_warm_run_is_all_hits_and_byte_identical(self, tmp_path, workers):
        source = FleetDataset(self.FLEET)
        store = RecordStore(tmp_path / "store")
        cold = run_policy_survey(source, self.SUITE, store=store, chunk_size=8,
                                 workers=workers)
        assert (cold.cache_hits, cold.cache_misses) == (0, 28)
        warm = run_policy_survey(FleetDataset(self.FLEET), self.SUITE,
                                 store=store, chunk_size=8, workers=workers)
        assert (warm.cache_hits, warm.cache_misses) == (28, 0)
        assert block_payloads(warm.iter_blocks()) == block_payloads(cold.iter_blocks())

    def test_suite_parameter_change_invalidates(self, tmp_path):
        source = FleetDataset(self.FLEET)
        store = RecordStore(tmp_path / "store")
        run_policy_survey(source, self.SUITE, store=store, chunk_size=8)
        changed = run_policy_survey(
            source, PolicySuite(production_oversample=1.0,
                                adaptive_window=3 * 3600.0),
            store=store, chunk_size=8)
        assert changed.cache_hits == 0

    def test_accountant_change_invalidates(self, tmp_path):
        from repro.network.cost import TelemetryCostAccountant
        source = FleetDataset(self.FLEET)
        store = RecordStore(tmp_path / "store")
        run_policy_survey(source, self.SUITE, store=store, chunk_size=8)
        changed = run_policy_survey(
            source, self.SUITE, store=store, chunk_size=8,
            accountant=TelemetryCostAccountant(default_hops=7))
        assert changed.cache_hits == 0

    def test_tokenless_suite_is_rejected(self, tmp_path):
        class HomegrownSuite:
            def build(self, interval):
                return []
        source = FleetDataset(self.FLEET)
        store = RecordStore(tmp_path / "store")
        with pytest.raises(ValueError, match="cache_token"):
            run_policy_survey(source, HomegrownSuite(), store=store, chunk_size=8)


# ----------------------------------------------------------------------
class TestWorkerSpillPath:
    """Workers hand back .rcb refs, not pickled arrays, when spilling."""

    def test_spilling_sink_multiworker_matches_sequential(self, dataset, tmp_path):
        plain = run_survey(FleetDataset(CONFIG), chunk_size=4)
        sink = SpillingRecordSink(tmp_path / "spool")
        pooled = run_survey(dataset, chunk_size=4, workers=2, sink=sink)
        assert block_payloads(pooled.iter_blocks()) == block_payloads(plain.iter_blocks())
        # The scratch directory is cleaned up after the run and the spool
        # holds only the sink's own spill files.
        assert not (tmp_path / "spool" / ".scratch").exists()
        assert all(path.name.startswith("records-") for path in sink.files)

    def test_store_scratch_directory_is_cleaned_up(self, dataset, tmp_path):
        store = RecordStore(tmp_path / "store")
        run_survey(dataset, store=store, chunk_size=4, workers=2)
        assert not (tmp_path / "store" / ".scratch").exists()


# ----------------------------------------------------------------------
class TestSpillFileOrdering:
    """records-10 must sort after records-9: numeric, not lexicographic."""

    def test_more_than_nine_blocks_keep_append_order(self, dataset, tmp_path):
        sink = SpillingRecordSink(tmp_path / "spool")
        result = run_survey(dataset, chunk_size=4, sink=sink)
        assert len(sink.files) > 10
        reopened = SpillingRecordSink(tmp_path / "spool")
        assert [p.name for p in reopened.files] == [p.name for p in sink.files]
        assert block_payloads(reopened.blocks()) == block_payloads(result.iter_blocks())

    def test_unpadded_indices_sort_numerically(self, tmp_path):
        from repro.analysis.survey import RecordBlock
        directory = tmp_path / "spool"
        directory.mkdir()
        order = []
        for index in range(12):
            block = RecordBlock(
                metric_name=f"metric-{index}",
                device_ids=np.array([f"dev-{index}"], dtype=np.str_),
                current_rate=np.array([1.0]),
                nyquist_rate=np.array([0.1]),
                reduction_ratio=np.array([10.0]),
                category=np.array([0]),
                reliable=np.array([True]),
                true_nyquist_rate=np.array([np.nan]),
                trace_duration=np.array([86400.0]),
            )
            # Legacy writers did not zero-pad the index.
            block.save_npz(directory / f"records-{index}.npz")
            order.append(f"metric-{index}")
        sink = SpillingRecordSink(directory)
        assert [block.metric_name for block in sink.blocks()] == order
        # Appending continues past the highest index instead of clobbering.
        extra = RecordBlock(
            metric_name="metric-12",
            device_ids=np.array(["dev-12"], dtype=np.str_),
            current_rate=np.array([1.0]),
            nyquist_rate=np.array([0.1]),
            reduction_ratio=np.array([10.0]),
            category=np.array([0]),
            reliable=np.array([True]),
            true_nyquist_rate=np.array([np.nan]),
            trace_duration=np.array([86400.0]),
        )
        sink.append(extra)
        assert sink.files[-1].name == "records-00012.npz"
        assert [block.metric_name for block in sink.blocks()] == order + ["metric-12"]

    def test_format_auto_detection(self, tmp_path):
        from repro.analysis.survey import RecordBlock
        sink = SpillingRecordSink(tmp_path / "spool", fmt="rcb")
        sink.append(RecordBlock(
            metric_name="Temperature",
            device_ids=np.array(["tor-1"], dtype=np.str_),
            current_rate=np.array([1.0]),
            nyquist_rate=np.array([0.1]),
            reduction_ratio=np.array([10.0]),
            category=np.array([0]),
            reliable=np.array([True]),
            true_nyquist_rate=np.array([np.nan]),
            trace_duration=np.array([86400.0]),
        ))
        reopened = SpillingRecordSink(tmp_path / "spool", fmt=None)
        assert reopened.fmt == "rcb"
        assert reopened.rows == 1


# ----------------------------------------------------------------------
class TestStoreVerify:
    """``store.verify()`` / ``repro-monitor store verify``: the bit-rot audit.

    Every ``put`` records a sha256 per published block file; verify
    re-hashes the lot and reports anything the disk changed since
    publication.  Entries from before digests were recorded are
    reported as unverified, not as failures.
    """

    @pytest.fixture()
    def populated(self, dataset, store):
        run_survey(dataset, store=store, chunk_size=4)
        return store

    def test_clean_store_verifies_ok(self, populated):
        report = populated.verify()
        assert report.ok
        assert report.entries > 0 and report.blocks >= report.entries
        assert report.problems == () and report.unverified == ()

    def test_bit_flip_is_reported_with_the_block_path(self, populated):
        victim = next(next(iter(populated.entries())).glob("block-*.rcb"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        report = populated.verify()
        assert not report.ok
        assert len(report.problems) == 1
        assert str(victim) in report.problems[0]
        assert "bit rot" in report.problems[0]

    def test_missing_block_file_is_a_count_mismatch(self, populated):
        entry = next(iter(populated.entries()))
        next(entry.glob("block-*.rcb")).unlink()
        report = populated.verify()
        assert not report.ok
        assert any("declares" in problem and str(entry) in problem
                   for problem in report.problems)

    def test_predigest_entries_are_unverified_not_failed(self, populated):
        import json as _json
        entry = next(iter(populated.entries()))
        meta_path = entry / "meta.json"
        meta = _json.loads(meta_path.read_text())
        del meta["block_digests"]
        meta_path.write_text(_json.dumps(meta))
        report = populated.verify()
        assert report.ok  # legacy entries are a warning, not bit rot
        assert len(report.unverified) == 1
        assert str(entry) in report.unverified[0]

    def test_cli_store_verify_round_trip(self, populated, capsys):
        from repro.cli import main
        assert main(["store", "verify", str(populated.directory)]) == 0
        out = capsys.readouterr().out
        assert "match their recorded digests" in out
        victim = next(next(iter(populated.entries())).glob("block-*.rcb"))
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert main(["store", "verify", str(populated.directory)]) == 1
        captured = capsys.readouterr()
        assert "BIT ROT" in captured.err

    def test_cli_store_verify_rejects_non_store(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "not-a-store").mkdir()
        (tmp_path / "not-a-store" / "store.json").write_text("{}")
        assert main(["store", "verify", str(tmp_path / "not-a-store")]) == 1
        assert capsys.readouterr().err
