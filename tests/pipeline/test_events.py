"""Unit tests for event injection and detection scoring."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.adaptive import ControllerMode
from repro.core.resampling import resample_to_rate
from repro.pipeline.events import (EventKind, ModeTransition, ThresholdDetector,
                                   inject_event, reprobe_latency, resettle_latency,
                                   score_detection)
from repro.pipeline.policies import AdaptiveDualRatePolicy
from repro.scenarios import RegimeShift
from repro.signals.generators import sine
from repro.signals.timeseries import TimeSeries
from repro.signals.noise import add_white_noise


@pytest.fixture
def baseline_trace(rng):
    trace = sine(1.0 / 3600.0, duration=21600.0, sampling_rate=1.0 / 30.0,
                 amplitude=2.0, offset=20.0)
    return add_white_noise(trace, 0.05, rng=rng)


class TestInjectEvent:
    def test_step_persists_to_end(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=10.0)
        assert event.kind is EventKind.STEP
        assert modified.values[-1] > baseline_trace.values[-1] + 5.0
        assert modified.values[0] == pytest.approx(baseline_trace.values[0])

    def test_spike_is_short(self, baseline_trace):
        modified, _ = inject_event(baseline_trace, EventKind.SPIKE, 10000.0, magnitude=50.0)
        changed = np.count_nonzero(np.abs(modified.values - baseline_trace.values) > 1.0)
        assert 1 <= changed <= 3

    def test_burst_affects_a_window(self, baseline_trace, rng):
        modified, event = inject_event(baseline_trace, EventKind.BURST, 10000.0,
                                       magnitude=30.0, duration=3000.0, rng=rng)
        changed = np.abs(modified.values - baseline_trace.values) > 1.0
        times = baseline_trace.times()
        assert not np.any(changed[times < 10000.0])
        assert np.any(changed[(times >= 10000.0) & (times < 13000.0)])
        assert event.end_time == pytest.approx(13000.0)

    def test_rejects_event_outside_trace(self, baseline_trace):
        with pytest.raises(ValueError):
            inject_event(baseline_trace, EventKind.STEP, 10 ** 9, magnitude=1.0)

    def test_rejects_empty_trace(self):
        from repro.signals.timeseries import TimeSeries
        with pytest.raises(ValueError):
            inject_event(TimeSeries(np.empty(0), 1.0), EventKind.STEP, 0.0, 1.0)


class TestDetection:
    def test_full_rate_stream_detects_step_quickly(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        outcome = score_detection("full", modified, event)
        assert outcome.detected
        assert outcome.latency <= 60.0

    def test_downsampled_stream_detects_later(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        slow = resample_to_rate(modified, 1.0 / 1800.0, anti_alias=False)
        fast_outcome = score_detection("fast", modified, event)
        slow_outcome = score_detection("slow", slow, event)
        assert slow_outcome.detected
        assert slow_outcome.latency >= fast_outcome.latency

    def test_spike_can_be_missed_by_slow_sampling(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.SPIKE, 10001.0, magnitude=40.0)
        slow = resample_to_rate(modified, 1.0 / 3600.0, anti_alias=False)
        outcome = score_detection("slow", slow, event)
        # A one-sample spike between two slow polls is invisible.
        if not outcome.detected:
            assert math.isinf(outcome.latency)
            assert outcome.missed

    def test_empty_stream_misses(self, baseline_trace):
        from repro.signals.timeseries import TimeSeries
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        outcome = score_detection("none", TimeSeries(np.empty(0), 1.0), event)
        assert not outcome.detected

    def test_detector_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdDetector(sigma_multiplier=0.0)

    def test_detection_time_none_when_event_below_threshold(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=0.01)
        detector = ThresholdDetector(sigma_multiplier=10.0, min_threshold=5.0)
        assert detector.detection_time(modified, event) is None


class TestModeTransitionScoring:
    """reprobe/resettle latency from the controller's transition stream."""

    @staticmethod
    def _transition(time, kind):
        frm, to = ((ControllerMode.STEADY, ControllerMode.PROBE)
                   if kind == "re-probe"
                   else (ControllerMode.PROBE, ControllerMode.STEADY))
        return ModeTransition(time=time, from_mode=frm, to_mode=to,
                              window_start=time - 100.0, window_end=time)

    def test_kind_property(self):
        assert self._transition(100.0, "re-probe").kind == "re-probe"
        assert self._transition(100.0, "settle").kind == "settle"

    def test_reprobe_latency_first_transition_at_or_after_shift(self):
        transitions = [self._transition(100.0, "settle"),
                       self._transition(400.0, "re-probe"),
                       self._transition(900.0, "re-probe")]
        assert reprobe_latency(transitions, 250.0) == pytest.approx(150.0)
        # A transition exactly at the shift counts: latency zero.
        assert reprobe_latency(transitions, 400.0) == pytest.approx(0.0)

    def test_reprobe_latency_none_when_never_noticed(self):
        transitions = [self._transition(100.0, "settle")]
        assert reprobe_latency(transitions, 250.0) is None
        assert reprobe_latency([], 250.0) is None
        # Pre-shift re-probes do not count.
        assert reprobe_latency([self._transition(100.0, "re-probe")], 250.0) is None

    def test_resettle_latency_measures_the_full_disruption_window(self):
        transitions = [self._transition(300.0, "settle"),
                       self._transition(500.0, "re-probe"),
                       self._transition(800.0, "settle")]
        assert resettle_latency(transitions, 250.0) == pytest.approx(550.0)

    def test_resettle_latency_none_without_reprobe_or_resettle(self):
        assert resettle_latency([self._transition(300.0, "settle")], 250.0) is None
        assert resettle_latency([self._transition(500.0, "re-probe")], 250.0) is None

    def test_controller_emits_reprobe_on_a_real_regime_shift(self):
        """End to end: a settled controller meets a mid-trace regime shift
        and the transition stream records a measurable re-probe."""
        quiet = sine(1.0 / 1800.0, duration=4 * 3600.0, sampling_rate=0.5,
                     amplitude=5.0, offset=20.0)
        shifted = RegimeShift(shift_fraction=0.5, frequency_fraction=0.8,
                              amplitude=4.0, seed=1)
        values = shifted.apply(quiet.values, quiet.interval, "Link util", "leaf-0")
        trace = TimeSeries(values, quiet.interval, name="Link util")
        policy = AdaptiveDualRatePolicy(window_duration=1800.0)
        run = policy.run_controller(trace)
        assert run.transitions, "controller never changed mode"
        shift_time = 0.5 * trace.duration
        latency = reprobe_latency(run.transitions, shift_time)
        assert latency is not None
        assert 0.0 <= latency <= trace.duration / 2
        # The same stream is exposed on the run record.
        assert run.reprobe_transitions() == [t for t in run.transitions
                                             if t.kind == "re-probe"]
