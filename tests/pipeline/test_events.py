"""Unit tests for event injection and detection scoring."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.resampling import resample_to_rate
from repro.pipeline.events import (EventKind, ThresholdDetector, inject_event, score_detection)
from repro.signals.generators import sine
from repro.signals.noise import add_white_noise


@pytest.fixture
def baseline_trace(rng):
    trace = sine(1.0 / 3600.0, duration=21600.0, sampling_rate=1.0 / 30.0,
                 amplitude=2.0, offset=20.0)
    return add_white_noise(trace, 0.05, rng=rng)


class TestInjectEvent:
    def test_step_persists_to_end(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=10.0)
        assert event.kind is EventKind.STEP
        assert modified.values[-1] > baseline_trace.values[-1] + 5.0
        assert modified.values[0] == pytest.approx(baseline_trace.values[0])

    def test_spike_is_short(self, baseline_trace):
        modified, _ = inject_event(baseline_trace, EventKind.SPIKE, 10000.0, magnitude=50.0)
        changed = np.count_nonzero(np.abs(modified.values - baseline_trace.values) > 1.0)
        assert 1 <= changed <= 3

    def test_burst_affects_a_window(self, baseline_trace, rng):
        modified, event = inject_event(baseline_trace, EventKind.BURST, 10000.0,
                                       magnitude=30.0, duration=3000.0, rng=rng)
        changed = np.abs(modified.values - baseline_trace.values) > 1.0
        times = baseline_trace.times()
        assert not np.any(changed[times < 10000.0])
        assert np.any(changed[(times >= 10000.0) & (times < 13000.0)])
        assert event.end_time == pytest.approx(13000.0)

    def test_rejects_event_outside_trace(self, baseline_trace):
        with pytest.raises(ValueError):
            inject_event(baseline_trace, EventKind.STEP, 10 ** 9, magnitude=1.0)

    def test_rejects_empty_trace(self):
        from repro.signals.timeseries import TimeSeries
        with pytest.raises(ValueError):
            inject_event(TimeSeries(np.empty(0), 1.0), EventKind.STEP, 0.0, 1.0)


class TestDetection:
    def test_full_rate_stream_detects_step_quickly(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        outcome = score_detection("full", modified, event)
        assert outcome.detected
        assert outcome.latency <= 60.0

    def test_downsampled_stream_detects_later(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        slow = resample_to_rate(modified, 1.0 / 1800.0, anti_alias=False)
        fast_outcome = score_detection("fast", modified, event)
        slow_outcome = score_detection("slow", slow, event)
        assert slow_outcome.detected
        assert slow_outcome.latency >= fast_outcome.latency

    def test_spike_can_be_missed_by_slow_sampling(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.SPIKE, 10001.0, magnitude=40.0)
        slow = resample_to_rate(modified, 1.0 / 3600.0, anti_alias=False)
        outcome = score_detection("slow", slow, event)
        # A one-sample spike between two slow polls is invisible.
        if not outcome.detected:
            assert math.isinf(outcome.latency)
            assert outcome.missed

    def test_empty_stream_misses(self, baseline_trace):
        from repro.signals.timeseries import TimeSeries
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=15.0)
        outcome = score_detection("none", TimeSeries(np.empty(0), 1.0), event)
        assert not outcome.detected

    def test_detector_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdDetector(sigma_multiplier=0.0)

    def test_detection_time_none_when_event_below_threshold(self, baseline_trace):
        modified, event = inject_event(baseline_trace, EventKind.STEP, 10000.0, magnitude=0.01)
        detector = ThresholdDetector(sigma_multiplier=10.0, min_threshold=5.0)
        assert detector.detection_time(modified, event) is None
