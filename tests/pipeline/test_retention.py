"""Unit tests for a-posteriori storage reduction (the §4 'store less' use case)."""

from __future__ import annotations

import pytest

from repro.core.nyquist import NyquistEstimator
from repro.pipeline.retention import AposterioriRetention
from repro.signals.generators import multi_tone, sine
from repro.signals.noise import white_noise


@pytest.fixture
def slow_traces():
    """Heavily over-sampled, band-limited traces (large savings expected)."""
    return [
        multi_tone([1.0 / 7200.0], duration=86400.0, sampling_rate=1.0 / 30.0,
                   amplitudes=[5.0], offset=40.0, name="slow-a"),
        sine(1.0 / 3600.0, duration=86400.0, sampling_rate=1.0 / 30.0,
             amplitude=3.0, offset=10.0, name="slow-b"),
    ]


class TestConfiguration:
    def test_rejects_bad_headroom(self):
        with pytest.raises(ValueError):
            AposterioriRetention(headroom=0.9)

    def test_rejects_bad_quality_guard(self):
        with pytest.raises(ValueError):
            AposterioriRetention(max_nrmse=0.0)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            AposterioriRetention().process([])


class TestRetention:
    def test_oversampled_traces_shrink_a_lot(self, slow_traces):
        report = AposterioriRetention().process(slow_traces)
        assert report.storage_saving > 10
        assert report.total_retained < report.total_collected
        assert report.worst_nrmse < 0.1

    def test_quality_guard_keeps_risky_traces_at_full_rate(self, rng):
        noisy = white_noise(3600.0, 1.0, std=1.0, rng=rng)
        retention = AposterioriRetention(
            estimator=NyquistEstimator(aliased_band_fraction=0.9), max_nrmse=0.05)
        decision, retained = retention.process_trace(noisy)
        assert decision.kept_full_rate
        assert decision.samples_retained == len(noisy)
        assert decision.storage_saving == pytest.approx(1.0)

    def test_decisions_report_consistent_counts(self, slow_traces):
        report = AposterioriRetention().process(slow_traces)
        for decision in report.decisions:
            assert decision.samples_retained <= decision.samples_collected
            assert decision.retained_fraction <= 1.0
        assert report.bytes_saved > 0

    def test_as_rows_structure(self, slow_traces):
        rows = AposterioriRetention().process(slow_traces).as_rows()
        assert len(rows) == 2
        assert {"trace", "collected", "retained", "saving", "nrmse"} <= set(rows[0])

    def test_retained_series_is_usable_for_reconstruction(self, slow_traces):
        from repro.core.errors import compare
        from repro.core.reconstruction import reconstruct
        retention = AposterioriRetention()
        trace = slow_traces[0]
        decision, retained = retention.process_trace(trace)
        assert not decision.kept_full_rate
        reconstructed = reconstruct(retained, trace.sampling_rate)
        assert compare(trace, reconstructed).nrmse < 0.1
