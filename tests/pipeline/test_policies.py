"""Unit tests for the sampling policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import compare
from repro.pipeline.policies import (AdaptiveDualRatePolicy, FixedRatePolicy,
                                     NyquistStaticPolicy, PolicySuite, SamplingPolicy,
                                     StaticPolicySuite)
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise
from repro.signals.timeseries import TimeSeries


@pytest.fixture(scope="module")
def reference():
    """12 h of a slow metric-like signal at a 7.5 s reference interval."""
    rng = np.random.default_rng(7)
    trace = multi_tone([1.0 / 7200.0, 1.0 / 2400.0], duration=43200.0,
                       sampling_rate=1.0 / 7.5, amplitudes=[8.0, 2.0], offset=40.0)
    return add_white_noise(trace, 0.05, rng=rng)


class TestFixedRatePolicy:
    def test_collects_at_requested_rate(self, reference):
        result = FixedRatePolicy(30.0).collect(reference)
        assert result.samples_collected == pytest.approx(43200.0 / 30.0, rel=0.01)
        assert result.mean_sampling_rate == pytest.approx(1.0 / 30.0, rel=0.01)

    def test_reconstruction_quality_good_when_oversampled(self, reference):
        result = FixedRatePolicy(30.0).collect(reference)
        assert compare(reference, result.reconstructed).nrmse < 0.05

    def test_rate_capped_at_reference_rate(self, reference):
        result = FixedRatePolicy(1.0).collect(reference)
        assert result.samples_collected <= len(reference)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FixedRatePolicy(0.0)

    def test_name_defaults_to_interval(self):
        assert FixedRatePolicy(30.0).name == "fixed@30s"


class TestNyquistStaticPolicy:
    def test_cheaper_than_baseline(self, reference):
        baseline = FixedRatePolicy(30.0).collect(reference)
        static = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert static.samples_collected < baseline.samples_collected

    def test_reconstruction_still_reasonable(self, reference):
        static = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert compare(reference, static.reconstructed).nrmse < 0.25

    def test_detail_fields(self, reference):
        result = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert result.detail["calibration_samples"] > 0
        assert result.detail["target_rate_hz"] > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=0.0)
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=30.0, calibration_fraction=0.0)
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=30.0, headroom=0.9)


class TestFinishGuard:
    def test_policy_collecting_under_two_samples_raises(self):
        """Satellite fix: a policy that collects 0 or 1 samples used to
        silently reconstruct a constant (0.0 for an empty stream),
        producing a bogus nrmse; it must now fail loudly."""
        short = TimeSeries(np.arange(20, dtype=float), interval=1.0, name="short")
        with pytest.raises(ValueError, match="collected only 1 sample"):
            FixedRatePolicy(100.0).collect(short)

    def test_batch_path_raises_too(self):
        values = np.arange(40, dtype=float).reshape(2, 20)
        with pytest.raises(ValueError, match="collected only 1 sample"):
            FixedRatePolicy(100.0).evaluate_batch(values, 1.0)


class TestBatchEvaluation:
    """evaluate_batch (vectorised) must reproduce the scalar collect path."""

    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(21)
        rows = []
        for k in range(5):
            trace = multi_tone([1.0 / (3600.0 * (k + 1)), 1.0 / 1800.0],
                               duration=43200.0, sampling_rate=1.0 / 7.5,
                               amplitudes=[8.0, 2.0], offset=40.0)
            rows.append(add_white_noise(trace, 0.05, rng=rng).values)
        return np.vstack(rows), 7.5

    @pytest.mark.parametrize("make_policy", [
        lambda: FixedRatePolicy(30.0),
        lambda: NyquistStaticPolicy(production_interval=30.0),
        lambda: AdaptiveDualRatePolicy(window_duration=2 * 3600.0),
    ])
    def test_matches_scalar_reference(self, batch, make_policy):
        values, interval = batch
        policy = make_policy()
        vectorised = policy.evaluate_batch(values, interval)
        # The base-class default runs collect() row by row -- the scalar
        # reference the vectorised overrides must reproduce.
        reference = SamplingPolicy.evaluate_batch(policy, values, interval)
        assert np.array_equal(vectorised.samples_collected, reference.samples_collected)
        assert np.allclose(vectorised.mean_sampling_rate, reference.mean_sampling_rate,
                           rtol=1e-12)
        assert np.allclose(vectorised.nrmse, reference.nrmse, rtol=1e-9, equal_nan=True)
        assert np.allclose(vectorised.max_abs_error, reference.max_abs_error,
                           rtol=1e-9, equal_nan=True)

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError, match="matrix"):
            FixedRatePolicy(30.0).evaluate_batch(np.arange(10.0), 1.0)
        with pytest.raises(ValueError, match="matrix"):
            NyquistStaticPolicy(production_interval=30.0).evaluate_batch(
                np.arange(10.0), 1.0)


class TestPolicySuite:
    def test_builds_the_three_paper_policies(self):
        suite = PolicySuite(production_oversample=4.0)
        policies = suite.build(reference_interval=7.5)
        assert [policy.name for policy in policies] == \
            ["fixed", "nyquist-static", "adaptive-dual-rate"]
        fixed, static, adaptive = policies
        assert fixed.interval == pytest.approx(30.0)
        assert static.production_interval == pytest.approx(30.0)
        # The controller starts backed off from the production rate.
        assert adaptive.config.initial_rate == pytest.approx((1.0 / 30.0) / 8.0)

    def test_measured_fleet_default_is_production_rate(self):
        policies = PolicySuite().build(reference_interval=30.0)
        assert policies[0].interval == pytest.approx(30.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            PolicySuite(production_oversample=0.5)
        with pytest.raises(ValueError):
            PolicySuite(adaptive_window=0.0)
        with pytest.raises(ValueError):
            PolicySuite().build(reference_interval=0.0)

    def test_static_suite_serves_fixed_policies(self):
        policies = (FixedRatePolicy(30.0, name="a"), FixedRatePolicy(60.0, name="b"))
        suite = StaticPolicySuite(policies)
        assert suite.build(7.5) == list(policies)
        assert suite.build(300.0) == list(policies)

    def test_static_suite_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            StaticPolicySuite(())
        with pytest.raises(ValueError):
            StaticPolicySuite((FixedRatePolicy(30.0, name="x"),
                               FixedRatePolicy(60.0, name="x")))


class TestAdaptivePolicy:
    def test_runs_and_reports_windows(self, reference):
        policy = AdaptiveDualRatePolicy(window_duration=2 * 3600.0)
        result = policy.collect(reference)
        assert result.detail["windows"] == 6
        assert result.samples_collected > 0

    def test_cheaper_than_baseline_on_slow_signal(self, reference):
        baseline = FixedRatePolicy(30.0).collect(reference)
        adaptive = AdaptiveDualRatePolicy(window_duration=2 * 3600.0).collect(reference)
        assert adaptive.samples_collected < baseline.samples_collected

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdaptiveDualRatePolicy(window_duration=0.0)

    def test_samples_per_hour_property(self, reference):
        result = FixedRatePolicy(60.0).collect(reference)
        assert result.samples_per_hour == pytest.approx(60.0, rel=0.05)
