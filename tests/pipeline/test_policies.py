"""Unit tests for the sampling policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import compare
from repro.pipeline.policies import (AdaptiveDualRatePolicy, FixedRatePolicy,
                                     NyquistStaticPolicy)
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise


@pytest.fixture(scope="module")
def reference():
    """12 h of a slow metric-like signal at a 7.5 s reference interval."""
    rng = np.random.default_rng(7)
    trace = multi_tone([1.0 / 7200.0, 1.0 / 2400.0], duration=43200.0,
                       sampling_rate=1.0 / 7.5, amplitudes=[8.0, 2.0], offset=40.0)
    return add_white_noise(trace, 0.05, rng=rng)


class TestFixedRatePolicy:
    def test_collects_at_requested_rate(self, reference):
        result = FixedRatePolicy(30.0).collect(reference)
        assert result.samples_collected == pytest.approx(43200.0 / 30.0, rel=0.01)
        assert result.mean_sampling_rate == pytest.approx(1.0 / 30.0, rel=0.01)

    def test_reconstruction_quality_good_when_oversampled(self, reference):
        result = FixedRatePolicy(30.0).collect(reference)
        assert compare(reference, result.reconstructed).nrmse < 0.05

    def test_rate_capped_at_reference_rate(self, reference):
        result = FixedRatePolicy(1.0).collect(reference)
        assert result.samples_collected <= len(reference)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FixedRatePolicy(0.0)

    def test_name_defaults_to_interval(self):
        assert FixedRatePolicy(30.0).name == "fixed@30s"


class TestNyquistStaticPolicy:
    def test_cheaper_than_baseline(self, reference):
        baseline = FixedRatePolicy(30.0).collect(reference)
        static = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert static.samples_collected < baseline.samples_collected

    def test_reconstruction_still_reasonable(self, reference):
        static = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert compare(reference, static.reconstructed).nrmse < 0.25

    def test_detail_fields(self, reference):
        result = NyquistStaticPolicy(production_interval=30.0).collect(reference)
        assert result.detail["calibration_samples"] > 0
        assert result.detail["target_rate_hz"] > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=0.0)
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=30.0, calibration_fraction=0.0)
        with pytest.raises(ValueError):
            NyquistStaticPolicy(production_interval=30.0, headroom=0.9)


class TestAdaptivePolicy:
    def test_runs_and_reports_windows(self, reference):
        policy = AdaptiveDualRatePolicy(window_duration=2 * 3600.0)
        result = policy.collect(reference)
        assert result.detail["windows"] == 6
        assert result.samples_collected > 0

    def test_cheaper_than_baseline_on_slow_signal(self, reference):
        baseline = FixedRatePolicy(30.0).collect(reference)
        adaptive = AdaptiveDualRatePolicy(window_duration=2 * 3600.0).collect(reference)
        assert adaptive.samples_collected < baseline.samples_collected

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdaptiveDualRatePolicy(window_duration=0.0)

    def test_samples_per_hour_property(self, reference):
        result = FixedRatePolicy(60.0).collect(reference)
        assert result.samples_per_hour == pytest.approx(60.0, rel=0.05)
