"""Unit tests for the cost-vs-quality evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.cost import TelemetryCostAccountant
from repro.pipeline.evaluation import CostQualityEvaluator
from repro.pipeline.events import EventKind, inject_event
from repro.pipeline.policies import FixedRatePolicy, NyquistStaticPolicy
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise


@pytest.fixture
def reference(rng):
    trace = multi_tone([1.0 / 7200.0], duration=21600.0, sampling_rate=1.0 / 7.5,
                       amplitudes=[8.0], offset=40.0)
    return add_white_noise(trace, 0.05, rng=rng)


def make_evaluator():
    policies = [FixedRatePolicy(30.0, name="baseline"),
                NyquistStaticPolicy(production_interval=30.0)]
    return CostQualityEvaluator(policies, accountant=TelemetryCostAccountant())


class TestEvaluator:
    def test_requires_policies(self):
        with pytest.raises(ValueError):
            CostQualityEvaluator([])

    def test_requires_unique_names(self):
        with pytest.raises(ValueError):
            CostQualityEvaluator([FixedRatePolicy(30.0, name="x"),
                                  FixedRatePolicy(60.0, name="x")])

    def test_evaluate_point_produces_one_result_per_policy(self, reference):
        evaluator = make_evaluator()
        results = evaluator.evaluate_point("dev-1", "Link util", reference)
        assert len(results) == 2
        assert {r.policy_name for r in results} == {"baseline", "nyquist-static"}

    def test_rows_aggregate_over_points(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        evaluator.evaluate_point("dev-2", "Link util", reference)
        rows = evaluator.rows()
        assert len(rows) == 2
        assert all(row["points"] == 2.0 for row in rows)

    def test_nyquist_static_cheaper_than_baseline(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        relative = evaluator.relative_costs("baseline")
        assert relative["baseline"] == pytest.approx(1.0)
        assert relative["nyquist-static"] < 1.0

    def test_relative_costs_unknown_baseline(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        with pytest.raises(KeyError):
            evaluator.relative_costs("nope")

    def test_event_detection_scored(self, reference):
        evaluator = make_evaluator()
        modified, event = inject_event(reference, EventKind.STEP,
                                       reference.start_time + 0.7 * reference.duration,
                                       magnitude=30.0)
        results = evaluator.evaluate_point("dev-1", "Link util", modified, event)
        assert all(result.detection is not None for result in results)
        summary = evaluator.summaries["baseline"]
        assert summary.detection_rate == 1.0
        assert summary.mean_detection_latency >= 0.0

    def test_summary_quality_fields(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        row = evaluator.rows()[0]
        assert 0.0 <= row["mean_nrmse"] < 1.0
        assert row["samples"] > 0
        assert row["total_cost"] > 0
